//! Kernel conformance: the blocked and packed f32 GEMM kernels must be
//! bit-identical to the scalar reference across arbitrary (including
//! degenerate and non-tile-multiple) shapes, the int8 quantizer must honor
//! its recorded per-layer error bound, and a search run entirely on int8
//! inference must produce memory-feasible plans whose *f32-evaluated* cost
//! stays within a recorded band of the exact-search plan.

use proptest::prelude::*;

use neuroshard::core::{NeuroShard, NeuroShardConfig, ShardingAlgorithm};
use neuroshard::cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::nn::gemm::{gemm_into, gemm_ref_into, PackedGemm};
use neuroshard::nn::{Dense, QuantizedDense, QuantizedMlp};

/// Recorded conformance band: the f32-evaluated cost of the plan found by
/// the int8-driven search may exceed the exact search's plan cost by at
/// most this factor. Measured headroom on the smoke workload is well under
/// half the band.
const INT8_COST_BAND: f64 = 1.10;

fn matrix_entries(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, len..=len)
}

proptest! {
    /// Blocked GEMM is bitwise identical to the scalar reference for any
    /// shape, including 1x1, tall/skinny and non-multiples of the 4x8 tile.
    #[test]
    fn blocked_gemm_matches_reference_bitwise(
        m in 1usize..17,
        k in 1usize..33,
        n in 1usize..41,
        seed in any::<u64>(),
    ) {
        let mut rng_state = seed | 1;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();

        let mut reference = vec![0.0f32; m * n];
        gemm_ref_into(&a, &b, m, k, n, &mut reference);

        let mut blocked = vec![0.0f32; m * n];
        gemm_into(&a, &b, m, k, n, &mut blocked);
        for (r, x) in reference.iter().zip(&blocked) {
            prop_assert_eq!(r.to_bits(), x.to_bits());
        }

        let packed = PackedGemm::pack(&b, k, n);
        let mut via_panels = vec![0.0f32; m * n];
        packed.gemm_into(&a, m, &mut via_panels);
        for (r, x) in reference.iter().zip(&via_panels) {
            prop_assert_eq!(r.to_bits(), x.to_bits());
        }
    }

    /// Quantize→dequantize error never exceeds the recorded per-layer
    /// bound (half an int8 step at the layer's scale).
    #[test]
    fn int8_round_trip_stays_within_recorded_bound(
        rows in 1usize..9,
        cols in 1usize..17,
        seed in any::<u64>(),
    ) {
        let dense = Dense::new(rows, cols, seed);
        let quant = QuantizedDense::quantize(&dense);
        let bound = quant.error_bound();
        prop_assert!(bound >= 0.0);
        for r in 0..rows {
            for c in 0..cols {
                let err = (dense.weights().get(r, c) - quant.dequantized_weight(r, c)).abs();
                prop_assert!(
                    err <= bound + 1e-7,
                    "weight ({}, {}) error {} exceeds bound {}", r, c, err, bound
                );
            }
        }
    }
}

proptest! {
    /// Same bitwise conformance at larger, cache-blocking-relevant shapes.
    #[test]
    fn blocked_gemm_matches_reference_at_layer_shapes(
        a in matrix_entries(64 * 128),
        b in matrix_entries(128 * 64),
    ) {
        let (m, k, n) = (64usize, 128usize, 64usize);
        let mut reference = vec![0.0f32; m * n];
        gemm_ref_into(&a, &b, m, k, n, &mut reference);
        let mut blocked = vec![0.0f32; m * n];
        gemm_into(&a, &b, m, k, n, &mut blocked);
        for (r, x) in reference.iter().zip(&blocked) {
            prop_assert_eq!(r.to_bits(), x.to_bits());
        }
    }
}

/// Every layer of a quantized MLP reports a bound no smaller than its own
/// max round-trip error, and the MLP-level bound dominates all layers.
#[test]
fn mlp_error_bound_dominates_layers() {
    let mlp = neuroshard::nn::Mlp::new(8, &[32, 16], 1, 11);
    let quant = QuantizedMlp::from_mlp(&mlp);
    let top = quant.error_bound();
    for layer in quant.layers() {
        assert!(layer.error_bound() <= top);
    }
}

/// A deterministic per-seed workload that comfortably fits the default
/// per-device memory budget (so both searches are feasible by
/// construction).
fn conformance_task(devices: usize, seed: u64) -> ShardingTask {
    let tables: Vec<TableConfig> = (0..12u32)
        .map(|i| {
            let dim = [64, 32, 16, 8][((u64::from(i) + seed) % 4) as usize];
            TableConfig::new(TableId(i), dim, 1 << 18, 6.0 + f64::from(i % 5), 1.0)
        })
        .collect();
    ShardingTask::new(tables, devices, neuroshard::sim::DEFAULT_MEM_BYTES, 65_536)
}

/// The int8-driven search must return memory-feasible plans whose cost —
/// re-evaluated under the exact f32 simulator — is within
/// [`INT8_COST_BAND`] of the f32 search's plan.
#[test]
fn int8_search_stays_in_cost_band_and_feasible() {
    let pool = TablePool::synthetic_dlrm(60, 5);
    let bundle = CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        13,
    );

    let f32_sharder = NeuroShard::new(bundle.clone(), NeuroShardConfig::smoke());
    let int8_sharder = NeuroShard::new(
        bundle.clone(),
        NeuroShardConfig {
            use_int8: true,
            ..NeuroShardConfig::smoke()
        },
    );
    let eval_sim = CostSimulator::new(bundle);

    for seed in 0..3u64 {
        let task = conformance_task(2, seed);
        let f32_plan = f32_sharder.shard(&task).expect("f32 search is feasible");
        let int8_plan = int8_sharder.shard(&task).expect("int8 search is feasible");

        int8_plan
            .validate(&task)
            .expect("int8 plan must be memory-feasible");

        let f32_cost = eval_sim
            .estimate_plan(&f32_plan.device_profiles(task.batch_size()))
            .total_ms();
        let int8_cost = eval_sim
            .estimate_plan(&int8_plan.device_profiles(task.batch_size()))
            .total_ms();
        assert!(
            int8_cost <= f32_cost * INT8_COST_BAND,
            "task seed {seed}: int8 plan cost {int8_cost} ms exceeds \
             {INT8_COST_BAND}x band of f32 plan cost {f32_cost} ms"
        );
    }
}
