//! Event-driven serving core tests: incremental-parser conformance under
//! arbitrary byte fragmentation (proptest), pipelining and keep-alive
//! over real TCP, malformed-request handling (400/431), slow-loris
//! timeout semantics driven by a manual clock (zero sleeps), and
//! blocking-vs-event cross-mode byte identity.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::serve::http::read_request;
use neuroshard::serve::net::{
    ConnConfig, ConnState, ParseStep, RequestParser, TimeoutKind, TimerWheel, MAX_HEADER_BYTES,
};
use neuroshard::serve::{
    http_call, HttpRequest, HttpResponse, IoMode, KeepAliveClient, ServeConfig, Server, Service,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Parser conformance: fragmentation must not change the parse
// ---------------------------------------------------------------------------

/// Parses a full byte stream in one `feed`, collecting every request.
fn parse_one_shot(raw: &[u8]) -> Vec<HttpRequest> {
    let mut parser = RequestParser::new();
    parser.feed(raw);
    let mut requests = Vec::new();
    while let ParseStep::Request(parsed) = parser.step() {
        requests.push(parsed.request);
    }
    requests
}

/// Parses the same stream fragmented at `splits` (sorted byte offsets).
fn parse_fragmented(raw: &[u8], splits: &[usize]) -> Vec<HttpRequest> {
    let mut parser = RequestParser::new();
    let mut requests = Vec::new();
    let mut start = 0usize;
    let mut boundaries: Vec<usize> = splits.iter().map(|&s| s % (raw.len() + 1)).collect();
    boundaries.sort_unstable();
    boundaries.push(raw.len());
    for end in boundaries {
        if end <= start {
            continue;
        }
        parser.feed(&raw[start..end]);
        while let ParseStep::Request(parsed) = parser.step() {
            requests.push(parsed.request);
        }
        start = end;
    }
    requests
}

fn request_bytes(method: &str, path: &str, body: &[u8], extra_header: &str) -> Vec<u8> {
    let mut raw = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    if !extra_header.is_empty() {
        raw.extend_from_slice(format!("{extra_header}\r\n").as_bytes());
    }
    raw.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
    raw.extend_from_slice(body);
    raw
}

proptest! {
    /// Any fragmentation of a request stream — including one byte at a
    /// time — parses to exactly the one-shot result.
    #[test]
    fn fragmented_parse_equals_one_shot(
        body in proptest::collection::vec(any::<u8>(), 0..200),
        path_salt in 0u32..1000,
        splits in proptest::collection::vec(0usize..4096, 0..40),
    ) {
        let raw = request_bytes("POST", &format!("/v1/plan/{path_salt}"), &body, "X-Trace: abc");
        let one_shot = parse_one_shot(&raw);
        prop_assert_eq!(one_shot.len(), 1);
        let fragmented = parse_fragmented(&raw, &splits);
        prop_assert_eq!(one_shot, fragmented);
    }

    /// Pipelined request pairs survive arbitrary fragmentation too — the
    /// boundary between two back-to-back requests is found identically
    /// no matter how the bytes arrive.
    #[test]
    fn pipelined_pairs_parse_identically_under_fragmentation(
        body_a in proptest::collection::vec(any::<u8>(), 0..64),
        body_b in proptest::collection::vec(any::<u8>(), 0..64),
        splits in proptest::collection::vec(0usize..4096, 0..40),
    ) {
        let mut raw = request_bytes("POST", "/v1/plan", &body_a, "");
        raw.extend_from_slice(&request_bytes("GET", "/health", &body_b, "Connection: keep-alive"));
        let one_shot = parse_one_shot(&raw);
        prop_assert_eq!(one_shot.len(), 2);
        prop_assert_eq!(&one_shot[0].body, &body_a);
        prop_assert_eq!(&one_shot[1].body, &body_b);
        let fragmented = parse_fragmented(&raw, &splits);
        prop_assert_eq!(one_shot, fragmented);
    }
}

/// Byte-at-a-time is the worst case the proptest samples around; pin it
/// exhaustively for one canonical request.
#[test]
fn every_single_byte_boundary_parses_identically() {
    let raw = request_bytes(
        "POST",
        "/v1/replan",
        b"{\"deadline_ms\":5}",
        "Host: localhost",
    );
    let one_shot = parse_one_shot(&raw);
    assert_eq!(one_shot.len(), 1);
    for split in 1..raw.len() {
        let fragmented = parse_fragmented(&raw, &[split]);
        assert_eq!(one_shot, fragmented, "split at byte {split}");
    }
    // Fully byte-at-a-time.
    let all: Vec<usize> = (1..raw.len()).collect();
    assert_eq!(one_shot, parse_fragmented(&raw, &all));
}

/// The incremental parser and the blocking `read_request` reference agree
/// on what a request *means*: same method, path, and body over a real
/// socket for a spread of canonical requests (CRLF, bare LF, empty body,
/// binary body).
#[test]
fn incremental_parser_agrees_with_the_blocking_reference() {
    let cases: Vec<Vec<u8>> = vec![
        b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
        b"get /metrics HTTP/1.1\r\n\r\n".to_vec(),
        b"POST /v1/plan HTTP/1.1\nContent-Length: 2\n\nok".to_vec(),
        request_bytes("POST", "/v1/replan", &[0u8, 255, 7, 10, 13], "X-Bin: yes"),
        request_bytes("PUT", "/nope", b"", ""),
    ];
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    for raw in cases {
        let expected = {
            let mut parser = RequestParser::new();
            parser.feed(&raw);
            let ParseStep::Request(parsed) = parser.step() else {
                panic!("canonical case must parse");
            };
            parsed.request
        };
        let raw_clone = raw.clone();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw_clone).unwrap();
            // Keep the connection open until the server has parsed.
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = stream.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let blocking = read_request(&mut stream).expect("blocking parser accepts");
        drop(stream);
        client.join().unwrap();
        assert_eq!(
            (blocking.method, blocking.path, blocking.body),
            (expected.method, expected.path, expected.body),
            "parsers disagree on {:?}",
            String::from_utf8_lossy(&raw)
        );
    }
}

// ---------------------------------------------------------------------------
// Malformed requests over the live event loop
// ---------------------------------------------------------------------------

fn quick_bundle(seed: u64) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(40, 3);
    CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

fn task_json() -> String {
    let tables: Vec<TableConfig> = (0..8)
        .map(|i| TableConfig::new(TableId(i), 16 + 16 * (i % 2), 1 << 14, 8.0, 1.05))
        .collect();
    let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
    serde_json::to_string(&task).expect("tasks serialize")
}

fn plan_body() -> String {
    format!("{{\"task\":{}}}", task_json())
}

fn start_server(io_mode: IoMode) -> (Server, String) {
    let config = ServeConfig {
        io_mode,
        ..ServeConfig::smoke()
    };
    let service = Arc::new(Service::new(quick_bundle(7), config).expect("service boots"));
    let server = Server::start(service, "127.0.0.1:0").expect("server binds");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Sends raw bytes and reads the whole response (the server closes on
/// faults).
fn raw_roundtrip(addr: &str, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    stream.flush().unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn malformed_request_line_gets_400_and_close() {
    let (server, addr) = start_server(IoMode::Event);
    let response = raw_roundtrip(&addr, b"\r\n\r\n");
    assert!(
        response.starts_with("HTTP/1.1 400 Bad Request\r\n"),
        "got: {response}"
    );
    assert!(response.contains("Connection: close"));
    assert!(response.contains("bad_request"));
    server.shutdown();
}

#[test]
fn oversized_headers_get_431_and_close() {
    let (server, addr) = start_server(IoMode::Event);
    let mut raw = b"GET /health HTTP/1.1\r\nX-Fill: ".to_vec();
    raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 64));
    raw.extend_from_slice(b"\r\n\r\n");
    let response = raw_roundtrip(&addr, &raw);
    assert!(
        response.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"),
        "got: {response}"
    );
    assert!(response.contains("headers_too_large"));
    server.shutdown();
}

#[test]
fn oversized_declared_body_gets_413_and_close() {
    let (server, addr) = start_server(IoMode::Event);
    let raw = format!(
        "POST /v1/plan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        (8 << 20) + 1
    );
    let response = raw_roundtrip(&addr, raw.as_bytes());
    assert!(
        response.starts_with("HTTP/1.1 413 Payload Too Large\r\n"),
        "got: {response}"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Keep-alive and pipelining over the live event loop
// ---------------------------------------------------------------------------

#[test]
fn keepalive_connection_serves_many_requests_and_counts_reuse() {
    let (server, addr) = start_server(IoMode::Event);
    let mut client = KeepAliveClient::new(addr.clone());
    for _ in 0..5 {
        let (status, body) = client.call("GET", "/health", b"").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
    }
    let (status, body) = client
        .call("POST", "/v1/plan", plan_body().as_bytes())
        .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"degraded\":false"));
    assert_eq!(client.reconnects(), 0, "one connection served everything");

    let (_, metrics) = client.call("GET", "/metrics", b"").unwrap();
    assert!(
        metrics.contains("nshard_net_keepalive_reuse_total 6"),
        "5 health reuses + 1 plan + this metrics call counted after: {}",
        metrics
            .lines()
            .filter(|l| l.starts_with("nshard_net"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(metrics.contains("nshard_net_open_connections 1"));
    assert!(metrics.contains("nshard_net_accepted_total 1"));
    assert!(metrics.contains("nshard_net_request_lifecycle_ms_count"));
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_socket() {
    let (server, addr) = start_server(IoMode::Event);
    let mut stream = TcpStream::connect(&addr).unwrap();
    // Three pipelined GETs, the last one closing.
    let raw = b"GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\nGET /health HTTP/1.1\r\nConnection: close\r\n\r\n";
    stream.write_all(raw).unwrap();
    stream.flush().unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let text = String::from_utf8_lossy(&out);
    let statuses: Vec<usize> = text
        .match_indices("HTTP/1.1 200 OK")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(statuses.len(), 3, "three responses on one socket: {text}");
    let health = text.find("\"status\":\"ok\"").unwrap();
    let metrics = text.find("nshard_serve_requests_total").unwrap();
    assert!(
        health < metrics,
        "responses in request order (health before metrics)"
    );
    // The pipelining counter saw the back-to-back requests.
    assert!(text.contains("nshard_net_pipelined_requests_total"));
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Slow-loris and idle timeouts — manual clock, zero sleeps
// ---------------------------------------------------------------------------

/// A partial request that stalls past the read timeout answers `408` and
/// closes; driven entirely at the state-machine + wheel level with a
/// manual clock.
#[test]
fn slow_loris_expires_with_408_after_the_read_timeout() {
    let cfg = ConnConfig::default();
    let mut wheel = TimerWheel::new();
    let mut conn = ConnState::new(0);

    // One byte of a request arrives, then nothing.
    conn.on_bytes(b"P", &cfg, 0);
    let (deadline, kind) = conn.deadline(&cfg);
    assert_eq!(kind, TimeoutKind::Read);
    assert_eq!(deadline, cfg.read_timeout_ms);
    wheel.arm(1, conn.timer_generation, deadline);

    // Just before the deadline: nothing fires.
    assert!(wheel.pop_due(deadline - 1).is_empty());

    // At the deadline the entry fires and is still current.
    let due = wheel.pop_due(deadline);
    assert_eq!(due.len(), 1);
    assert_eq!(due[0].generation, conn.timer_generation);
    let (actual, kind) = conn.deadline(&cfg);
    assert!(actual <= deadline, "deadline did not move: really due");
    assert_eq!(kind, TimeoutKind::Read);

    // The expiry action: 408 + close.
    conn.timeout_request();
    let text = String::from_utf8_lossy(conn.writable()).to_string();
    assert!(text.starts_with("HTTP/1.1 408 Request Timeout\r\n"));
    assert!(text.contains("request_timeout"));
    let n = conn.writable().len();
    conn.advance_write(n, deadline);
    assert!(conn.should_close());
}

/// A slow-loris that trickles a byte just before each deadline keeps
/// moving the deadline — the lazy wheel drops the stale entry and
/// re-arms — until it finally stalls and expires.
#[test]
fn trickling_bytes_push_the_deadline_until_the_stall() {
    let cfg = ConnConfig::default();
    let mut wheel = TimerWheel::new();
    let mut conn = ConnState::new(0);

    conn.on_bytes(b"G", &cfg, 0);
    wheel.arm(1, conn.timer_generation, conn.deadline(&cfg).0);

    // Trickle: one byte at 9s — one ms before the 10s read deadline.
    let t1 = cfg.read_timeout_ms - 1_000;
    conn.on_bytes(b"E", &cfg, t1);

    // The old entry fires at 10s but is stale (generation moved).
    let due = wheel.pop_due(cfg.read_timeout_ms);
    assert_eq!(due.len(), 1);
    assert_ne!(
        due[0].generation, conn.timer_generation,
        "trickled progress invalidated the armed entry"
    );
    // Reactor behaviour: re-check the live deadline and re-arm.
    let (deadline, kind) = conn.deadline(&cfg);
    assert_eq!(kind, TimeoutKind::Read);
    assert_eq!(deadline, t1 + cfg.read_timeout_ms);
    wheel.arm(1, conn.timer_generation, deadline);

    // No more progress: the re-armed entry is genuinely due.
    let due = wheel.pop_due(deadline);
    assert_eq!(due.len(), 1);
    assert_eq!(due[0].generation, conn.timer_generation);
}

/// An idle keep-alive connection (no request in progress) expires on the
/// idle timeout, silently.
#[test]
fn idle_keepalive_connection_expires_on_the_idle_timeout() {
    let cfg = ConnConfig::default();
    let mut conn = ConnState::new(100);
    // Serve one full request so the connection is idle, not fresh.
    conn.on_bytes(b"GET /health HTTP/1.1\r\n\r\n", &cfg, 100);
    conn.complete(0, HttpResponse::text(200, "ok".into()));
    let n = conn.writable().len();
    conn.advance_write(n, 200);

    let (deadline, kind) = conn.deadline(&cfg);
    assert_eq!(kind, TimeoutKind::Idle);
    assert_eq!(deadline, 200 + cfg.idle_timeout_ms);
    assert!(!conn.should_close(), "not closed until the reactor acts");
}

// ---------------------------------------------------------------------------
// Cross-mode conformance: blocking reference vs event loop
// ---------------------------------------------------------------------------

/// The same requests against a blocking-mode and an event-mode daemon
/// (same seed) produce byte-identical status lines and bodies — the
/// reactor changed the I/O edge, not one byte of semantics.
#[test]
fn blocking_and_event_modes_answer_byte_identically() {
    let (blocking_server, blocking_addr) = start_server(IoMode::Blocking);
    let (event_server, event_addr) = start_server(IoMode::Event);

    let plan = plan_body();
    let replan = format!("{{\"task\":{},\"adopt\":false}}", task_json());
    let calls: Vec<(&str, &str, &[u8])> = vec![
        ("GET", "/health", b""),
        ("POST", "/v1/plan", plan.as_bytes()),
        ("POST", "/v1/replan", replan.as_bytes()),
        ("GET", "/nope", b""),
        ("DELETE", "/health", b""),
        ("GET", "/v1/repl/status", b""),
        ("GET", "/v1/plans/missing", b""),
    ];
    for (method, path, body) in calls {
        let via_blocking = http_call(&blocking_addr, method, path, body).unwrap();
        let via_event = http_call(&event_addr, method, path, body).unwrap();
        assert_eq!(
            via_blocking, via_event,
            "cross-mode mismatch on {method} {path}"
        );
    }
    blocking_server.shutdown();
    event_server.shutdown();
}
