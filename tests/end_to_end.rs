//! Cross-crate integration tests: the full pre-train → search → evaluate
//! pipeline, exercised end-to-end at reduced scale.

use neuroshard::baselines::{DimGreedy, ShardingAlgorithm, SizeLookupGreedy, TorchRecLikePlanner};
use neuroshard::core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::sim::GpuSpec;

fn quick_bundle(pool: &TablePool, gpus: usize, seed: u64) -> CostModelBundle {
    CostModelBundle::pretrain(
        pool,
        gpus,
        &CollectConfig {
            compute_samples: 1200,
            comm_samples: 800,
            ..CollectConfig::default()
        },
        &TrainSettings {
            epochs: 15,
            ..TrainSettings::default()
        },
        seed,
    )
}

#[test]
fn neuroshard_beats_heuristics_on_average() {
    let pool = TablePool::synthetic_dlrm(200, 5);
    let spec = GpuSpec::rtx_2080_ti();
    let bundle = quick_bundle(&pool, 4, 1);
    let neuroshard = NeuroShard::new(bundle, NeuroShardConfig::default());

    // Moderate dimensions so every compared method stays memory-feasible
    // (the paper's protocol compares means only where methods scale).
    let tasks: Vec<ShardingTask> = (0..4)
        .map(|i| ShardingTask::sample(&pool, 4, 15..=40, 32, 700 + i))
        .collect();

    let mean = |algo: &dyn ShardingAlgorithm| -> f64 {
        let costs: Vec<f64> = tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                algo.shard(t)
                    .ok()
                    .and_then(|p| evaluate_plan(t, &p, &spec, i as u64).ok())
                    .map(|c| c.max_total_ms())
            })
            .collect();
        assert_eq!(costs.len(), tasks.len(), "{} failed a task", algo.name());
        costs.iter().sum::<f64>() / costs.len() as f64
    };

    let ns = mean(&neuroshard);
    let dim = mean(&DimGreedy);
    let slu = mean(&SizeLookupGreedy);
    // NeuroShard should be at least competitive with (in practice better
    // than) the best heuristic; allow a small tolerance for the reduced
    // pre-training budget of this test.
    let best = dim.min(slu);
    assert!(
        ns <= best * 1.03,
        "neuroshard {ns:.2} ms vs best heuristic {best:.2} ms"
    );
}

#[test]
fn neuroshard_survives_big_table_tasks_where_greedy_oom() {
    let pool = TablePool::synthetic_dlrm(200, 5);
    let spec = GpuSpec::rtx_2080_ti();
    let bundle = quick_bundle(&pool, 4, 2);
    let neuroshard = NeuroShard::new(bundle, NeuroShardConfig::default());

    // Hunt for a max-dim-128 task where at least one greedy baseline
    // overflows memory; NeuroShard must still solve it.
    let mut exercised = 0;
    for seed in 0..40u64 {
        let task = ShardingTask::sample(&pool, 4, 20..=60, 128, 9_000 + seed);
        let greedy_fails = DimGreedy
            .shard(&task)
            .ok()
            .and_then(|p| evaluate_plan(&task, &p, &spec, seed).ok())
            .is_none();
        if !greedy_fails {
            continue;
        }
        exercised += 1;
        let outcome = neuroshard
            .shard_with_stats(&task)
            .expect("NeuroShard must handle big-table tasks via column-wise sharding");
        assert!(outcome.plan.validate(&task).is_ok());
        assert!(evaluate_plan(&task, &outcome.plan, &spec, seed).is_ok());
        if exercised >= 2 {
            break;
        }
    }
    assert!(
        exercised > 0,
        "no greedy-OOM task found in 40 draws; pool calibration changed?"
    );
}

#[test]
fn planner_scales_but_neuroshard_estimates_lower_cost() {
    let pool = TablePool::synthetic_dlrm(200, 5);
    let spec = GpuSpec::rtx_2080_ti();
    let bundle = quick_bundle(&pool, 2, 3);
    let neuroshard = NeuroShard::new(bundle, NeuroShardConfig::default());
    let planner = TorchRecLikePlanner::default();

    let mut ns_total = 0.0;
    let mut planner_total = 0.0;
    for seed in 0..3u64 {
        let task = ShardingTask::sample(&pool, 2, 10..=25, 128, 3_000 + seed);
        let ns_plan = neuroshard.shard(&task).expect("feasible");
        let pl_plan = planner.shard(&task).expect("planner scales to 128");
        ns_total += evaluate_plan(&task, &ns_plan, &spec, seed)
            .expect("valid")
            .max_total_ms();
        planner_total += evaluate_plan(&task, &pl_plan, &spec, seed)
            .expect("valid")
            .max_total_ms();
    }
    assert!(
        ns_total <= planner_total * 1.05,
        "neuroshard {ns_total:.2} vs planner {planner_total:.2}"
    );
}

#[test]
fn sharding_is_deterministic_given_the_same_bundle() {
    let pool = TablePool::synthetic_dlrm(100, 8);
    let bundle = quick_bundle(&pool, 2, 4);
    let task = ShardingTask::sample(&pool, 2, 8..=16, 32, 77);
    let a = NeuroShard::new(bundle.clone(), NeuroShardConfig::smoke())
        .shard(&task)
        .unwrap();
    let b = NeuroShard::new(bundle, NeuroShardConfig::smoke())
        .shard(&task)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn pretraining_is_deterministic() {
    let pool = TablePool::synthetic_dlrm(60, 9);
    let cfg = CollectConfig {
        compute_samples: 300,
        comm_samples: 200,
        ..CollectConfig::default()
    };
    let settings = TrainSettings {
        epochs: 4,
        ..TrainSettings::default()
    };
    let a = CostModelBundle::pretrain(&pool, 2, &cfg, &settings, 11);
    let b = CostModelBundle::pretrain(&pool, 2, &cfg, &settings, 11);
    assert_eq!(a, b);
}

/// Failure injection: a bundle whose models are effectively untrained
/// (random initialization) must still yield *valid* plans — the search's
/// memory constraints are enforced structurally, not learned.
#[test]
fn garbage_cost_models_still_produce_valid_plans() {
    let pool = TablePool::synthetic_dlrm(100, 13);
    let bundle = CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig {
            compute_samples: 20,
            comm_samples: 20,
            ..CollectConfig::default()
        },
        &TrainSettings {
            epochs: 0, // no training at all: random-initialized models
            ..TrainSettings::default()
        },
        3,
    );
    let sharder = NeuroShard::new(bundle, NeuroShardConfig::smoke());
    for seed in 0..3u64 {
        let task = ShardingTask::sample(&pool, 2, 8..=16, 64, 5_000 + seed);
        let plan = sharder.shard(&task).expect("feasible task");
        assert!(plan.validate(&task).is_ok(), "seed {seed}");
    }
}

/// The full pipeline tolerates degenerate tasks: a single table on a
/// single device.
#[test]
fn single_table_single_device() {
    use neuroshard::data::{TableConfig, TableId};
    let pool = TablePool::synthetic_dlrm(30, 14);
    let bundle = quick_bundle(&pool, 1, 5);
    let sharder = NeuroShard::new(bundle, NeuroShardConfig::smoke());
    let table = TableConfig::new(TableId(0), 32, 1 << 18, 8.0, 1.0);
    let task = ShardingTask::new(vec![table], 1, neuroshard::sim::DEFAULT_MEM_BYTES, 65_536);
    let outcome = sharder.shard_with_stats(&task).unwrap();
    assert_eq!(outcome.plan.device_of(), &[0]);
    let costs = evaluate_plan(&task, &outcome.plan, &GpuSpec::rtx_2080_ti(), 0).unwrap();
    assert!(costs.max_total_ms() > 0.0);
}
