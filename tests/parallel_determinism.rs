//! Determinism of the parallel search runtime: the selected plan, its
//! estimated cost (bit-for-bit), and the number of evaluated plans must
//! not depend on the worker-thread count or on whether MLP inference is
//! batched.
//!
//! CI runs this suite twice — once unconstrained and once with
//! `NSHARD_THREADS=8` — so the `threads: 0` (auto) path is exercised at a
//! thread count above the container's CPU count.

use neuroshard::core::{NeuroShard, NeuroShardConfig, ShardOutcome};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};

fn quick_bundle(pool: &TablePool, gpus: usize, seed: u64) -> CostModelBundle {
    CostModelBundle::pretrain(
        pool,
        gpus,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

fn search_config() -> NeuroShardConfig {
    // Larger than smoke so the beam runs several levels and the grid has a
    // real threshold sweep, but small enough for CI.
    NeuroShardConfig {
        n: 4,
        k: 2,
        l: 3,
        m: 5,
        ..NeuroShardConfig::default()
    }
}

fn shard_all(
    bundle: &CostModelBundle,
    config: NeuroShardConfig,
    tasks: &[ShardingTask],
) -> Vec<ShardOutcome> {
    let sharder = NeuroShard::new(bundle.clone(), config);
    tasks
        .iter()
        .map(|t| sharder.shard_with_stats(t).expect("task is feasible"))
        .collect()
}

fn assert_identical(reference: &[ShardOutcome], other: &[ShardOutcome], label: &str) {
    assert_eq!(reference.len(), other.len());
    for (i, (a, b)) in reference.iter().zip(other).enumerate() {
        assert_eq!(a.plan, b.plan, "{label}: plan differs on task {i}");
        assert_eq!(
            a.estimated_cost_ms.to_bits(),
            b.estimated_cost_ms.to_bits(),
            "{label}: cost differs on task {i}"
        );
        assert_eq!(
            a.evaluated_plans, b.evaluated_plans,
            "{label}: evaluated_plans differs on task {i}"
        );
    }
}

#[test]
fn plans_are_identical_across_thread_counts_and_seeds() {
    let pool = TablePool::synthetic_dlrm(80, 11);
    for seed in [3u64, 41] {
        let bundle = quick_bundle(&pool, 4, seed);
        let tasks: Vec<ShardingTask> = (0..3)
            .map(|i| ShardingTask::sample(&pool, 4, 12..=24, 64, seed ^ i))
            .collect();
        let serial = shard_all(&bundle, search_config(), &tasks);
        for threads in [2usize, 8] {
            let parallel = shard_all(
                &bundle,
                NeuroShardConfig {
                    threads,
                    ..search_config()
                },
                &tasks,
            );
            assert_identical(
                &serial,
                &parallel,
                &format!("seed {seed}, {threads} threads"),
            );
        }
    }
}

#[test]
fn auto_thread_count_matches_serial() {
    // threads: 0 resolves via NSHARD_THREADS (CI sets 8) or the host's
    // available parallelism — either way the plan must match serial.
    let pool = TablePool::synthetic_dlrm(60, 7);
    let bundle = quick_bundle(&pool, 4, 5);
    let tasks: Vec<ShardingTask> = (0..2)
        .map(|i| ShardingTask::sample(&pool, 4, 10..=20, 64, 19 + i))
        .collect();
    let serial = shard_all(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            ..search_config()
        },
        &tasks,
    );
    let auto = shard_all(
        &bundle,
        NeuroShardConfig {
            threads: 0,
            ..search_config()
        },
        &tasks,
    );
    assert_identical(&serial, &auto, "auto threads");
}

#[test]
fn batched_inference_matches_unbatched() {
    let pool = TablePool::synthetic_dlrm(60, 13);
    let bundle = quick_bundle(&pool, 4, 9);
    let tasks: Vec<ShardingTask> = (0..2)
        .map(|i| ShardingTask::sample(&pool, 4, 10..=20, 64, 23 + i))
        .collect();
    // Plans and costs are batching-independent at any thread count
    // (search_config() resolves threads via NSHARD_THREADS in CI).
    let batched = shard_all(&bundle, search_config(), &tasks);
    let unbatched = shard_all(
        &bundle,
        NeuroShardConfig {
            use_batch: false,
            ..search_config()
        },
        &tasks,
    );
    assert_identical(&batched, &unbatched, "unbatched inference");

    // Cache *statistics* are only exactly serial-equivalent at one
    // thread — concurrent batches overlapping on the same missing key may
    // shift a few hit/miss counts (never the cached values) — so the
    // hit-rate equality check pins threads to 1.
    let batched_1 = shard_all(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            ..search_config()
        },
        &tasks,
    );
    let unbatched_1 = shard_all(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            use_batch: false,
            ..search_config()
        },
        &tasks,
    );
    assert_identical(&batched_1, &unbatched_1, "unbatched inference, serial");
    for (a, b) in batched_1.iter().zip(&unbatched_1) {
        assert!((a.cache_hit_rate - b.cache_hit_rate).abs() < 1e-12);
    }
}
