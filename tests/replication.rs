//! Replicated-control-plane integration tests: byte-identical replica
//! convergence under arbitrary delivery order/duplication (proptest),
//! follower tailing through seeded partitions with recorded backoff,
//! snapshot catch-up past log compaction, and the leader-kill-mid-stream
//! chaos scenario ending in a warm follower promotion. Zero sleeps —
//! manual clocks and synchronous queue draining throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::serve::http::HttpRequest;
use neuroshard::serve::kv::{LogFetch, MatchSeq, PlanKv};
use neuroshard::serve::repl::{PollOutcome, ReplError, ReplTransport, Replicator, Role};
use neuroshard::serve::server::Routed;
use neuroshard::serve::{KvSnapshot, ManualClock, ReplicaConfig, ServeConfig, Service};
use neuroshard::sim::{Fault, FaultPlan};

fn quick_bundle(seed: u64) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(40, 3);
    CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

/// A planning task; distinct `salt` values (0..=3) yield distinct tasks,
/// hence distinct content-addressed plan ids.
fn task_json(salt: u32) -> String {
    let tables: Vec<TableConfig> = (0..8)
        .map(|i| TableConfig::new(TableId(i), 16 + 16 * ((i + salt) % 4), 1 << 14, 8.0, 1.05))
        .collect();
    let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
    serde_json::to_string(&task).expect("tasks serialize")
}

fn leader_service(seed: u64) -> Arc<Service> {
    let mut config = ServeConfig::smoke();
    config.seed = seed;
    Arc::new(
        Service::with_clock(quick_bundle(seed), config, Arc::new(ManualClock::new()))
            .expect("leader boots"),
    )
}

fn follower_service(seed: u64, threshold: u32) -> Arc<Service> {
    let mut config = ServeConfig::smoke();
    config.seed = seed;
    config.replica = ReplicaConfig {
        node: "node-1".into(),
        follower: true,
        failure_threshold: threshold,
        ..ReplicaConfig::default()
    };
    Arc::new(
        Service::with_clock(quick_bundle(seed), config, Arc::new(ManualClock::new()))
            .expect("follower boots"),
    )
}

/// Posts a planning request and synchronously drains it (zero sleeps).
fn post_drained(service: &Service, path: &str, body: String) -> (u16, String) {
    let routed = service.route(&HttpRequest {
        method: "POST".into(),
        path: path.into(),
        body: body.into_bytes(),
    });
    match routed {
        Routed::Inline(r) => (r.status, String::from_utf8_lossy(&r.body).to_string()),
        Routed::Queued(slot) => {
            assert!(service.drain_one(), "a job was queued");
            let r = slot.wait();
            (r.status, String::from_utf8_lossy(&r.body).to_string())
        }
    }
}

fn get_inline(service: &Service, path: &str) -> (u16, String, Vec<(String, String)>) {
    let Routed::Inline(r) = service.route(&HttpRequest {
        method: "GET".into(),
        path: path.into(),
        body: Vec::new(),
    }) else {
        panic!("GET {path} answers inline")
    };
    (
        r.status,
        String::from_utf8_lossy(&r.body).to_string(),
        r.headers.clone(),
    )
}

/// An in-process transport wired through a seeded [`FaultPlan`]:
/// partitions and crashes gate delivery, and `drop_head` models a stream
/// losing its oldest undelivered op mid-flight (the "leader dies
/// mid-stream" shape — later ops were observed, earlier ones never
/// arrive).
struct ChaosTransport {
    leader: Arc<Service>,
    faults: Arc<Mutex<FaultPlan>>,
    leader_node: usize,
    follower_node: usize,
    drop_head: Arc<AtomicBool>,
}

impl ChaosTransport {
    fn reachable(&self) -> Result<(), ReplError> {
        let faults = self.faults.lock().expect("faults poisoned");
        if faults.is_crashed(self.leader_node) {
            return Err(ReplError::Unreachable("leader crashed".into()));
        }
        if faults.is_partitioned(self.leader_node, self.follower_node) {
            return Err(ReplError::Unreachable("link partitioned".into()));
        }
        Ok(())
    }
}

impl ReplTransport for ChaosTransport {
    fn fetch_log(&self, from_seq: u64) -> Result<LogFetch, ReplError> {
        self.reachable()?;
        let mut fetch = self.leader.kv().log_since(from_seq);
        if self.drop_head.load(Ordering::SeqCst) {
            if let LogFetch::Ops(ops) = &mut fetch {
                if !ops.is_empty() {
                    ops.remove(0);
                }
            }
        }
        Ok(fetch)
    }

    fn fetch_snapshot(&self) -> Result<KvSnapshot, ReplError> {
        self.reachable()?;
        Ok(self.leader.kv().snapshot())
    }
}

proptest! {
    /// Any interleaving + duplication + reordering of the same sequenced
    /// ops leaves two replicas **byte-identical** to the leader — the
    /// determinism headline of the control plane.
    #[test]
    fn replicas_converge_byte_identically_under_any_delivery(
        writes in proptest::collection::vec((0u8..6, 0u16..1000), 1..40),
        order_a in proptest::collection::vec(0usize..4096, 0..120),
        order_b in proptest::collection::vec(0usize..4096, 0..120),
    ) {
        let leader = PlanKv::new(256);
        for (k, v) in &writes {
            leader.upsert(&format!("plans/k{k}"), format!("v{v}"), MatchSeq::Any).unwrap();
        }
        let LogFetch::Ops(ops) = leader.log_since(0) else { panic!("log retained") };

        // Each replica sees the ops in its own order with duplicates,
        // then one final in-order pass (the stream eventually delivers).
        for order in [&order_a, &order_b] {
            let replica = PlanKv::new(256);
            for idx in order {
                replica.apply(ops[idx % ops.len()].clone());
            }
            for op in &ops {
                replica.apply(op.clone());
            }
            prop_assert_eq!(replica.dump(), leader.dump());
            prop_assert_eq!(replica.digest(), leader.digest());
            prop_assert_eq!(replica.pending_len(), 0);
        }
    }

    /// Conditional create-only upserts are idempotent: replaying any
    /// subset of them can never fork the store — duplicates conflict
    /// instead of double-writing.
    #[test]
    fn conditional_upserts_never_double_write(
        keys in proptest::collection::vec(0u8..5, 1..30),
    ) {
        let kv = PlanKv::new(64);
        let mut created = 0u64;
        for k in &keys {
            match kv.upsert(&format!("plans/{k}"), "once", MatchSeq::Exact(0)) {
                Ok(_) => created += 1,
                Err(e) => prop_assert!(e.to_string().contains("sequence conflict")),
            }
        }
        prop_assert_eq!(created as usize, kv.len());
        // Sequence numbers advanced only for the writes that landed.
        prop_assert_eq!(kv.applied_seq(), created);
    }
}

/// A follower tails the leader through a partition: recorded (never
/// slept) seeded backoff during the outage, converged byte-identical
/// stores after the heal.
#[test]
fn follower_tails_through_partition_and_heals() {
    let leader = leader_service(7);
    let follower = follower_service(7, 10);
    let faults = Arc::new(Mutex::new(FaultPlan::new(5)));
    let mut repl = Replicator::new(
        Arc::clone(&follower),
        Box::new(ChaosTransport {
            leader: Arc::clone(&leader),
            faults: Arc::clone(&faults),
            leader_node: 0,
            follower_node: 1,
            drop_head: Arc::new(AtomicBool::new(false)),
        }),
    );

    let (status, body) = post_drained(
        &leader,
        "/v1/plan",
        format!("{{\"task\":{}}}", task_json(0)),
    );
    assert_eq!(status, 200, "leader plans: {body}");
    assert_eq!(leader.plans().len(), 1);

    // First poll replicates the adoption.
    assert_eq!(repl.poll_once(), PollOutcome::Applied(1));
    assert_eq!(follower.plans().len(), 1);
    assert_eq!(follower.kv().dump(), leader.kv().dump());
    assert_eq!(repl.poll_once(), PollOutcome::UpToDate);

    // Partition the link: polls fail with recorded, bounded backoff.
    *faults.lock().unwrap() = FaultPlan::new(5).with_fault(Fault::Partition { a: 0, b: 1 });
    let rc = ReplicaConfig::default();
    for want in 1..=3u32 {
        match repl.poll_once() {
            PollOutcome::TransportError {
                consecutive,
                backoff_ms,
            } => {
                assert_eq!(consecutive, want);
                assert!(
                    (rc.backoff_base_ms..=rc.backoff_cap_ms).contains(&backoff_ms),
                    "backoff {backoff_ms} outside [{}, {}]",
                    rc.backoff_base_ms,
                    rc.backoff_cap_ms
                );
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }
    assert_eq!(
        follower.role().role(),
        Role::Candidate,
        "failures below threshold leave the node a candidate, not a leader"
    );

    // Meanwhile the leader keeps adopting.
    let (status, _) = post_drained(
        &leader,
        "/v1/plan",
        format!("{{\"task\":{}}}", task_json(1)),
    );
    assert_eq!(status, 200);
    assert_eq!(leader.plans().len(), 2);

    // Heal: the follower catches up and drops back to follower.
    *faults.lock().unwrap() = FaultPlan::new(5);
    assert_eq!(repl.poll_once(), PollOutcome::Applied(1));
    assert_eq!(follower.role().role(), Role::Follower);
    assert_eq!(follower.kv().dump(), leader.kv().dump());
    assert_eq!(follower.kv().digest(), leader.kv().digest());
    assert_eq!(follower.plans().len(), leader.plans().len());

    // Both replicas answer the same stored-plan bytes.
    for id in leader.plans().ids() {
        let l = leader.plans().get(&id).expect("leader holds its plan");
        let f = follower.plans().get(&id).expect("follower replicated it");
        assert_eq!(
            serde_json::to_string(&l).unwrap(),
            serde_json::to_string(&f).unwrap(),
            "replicated records are byte-identical"
        );
    }
}

/// A replica whose position predates the leader's retained (compacted)
/// log catches up by full snapshot, visible in the catch-up counter, and
/// keeps tailing normally afterwards.
#[test]
fn lagging_replica_catches_up_by_snapshot() {
    // Tiny retained window: a brand-new follower is already beyond it.
    let leader_kv = PlanKv::new(2);
    for i in 0..6 {
        leader_kv
            .upsert(&format!("plans/warm{i}"), "{}", MatchSeq::Any)
            .unwrap();
    }
    assert_eq!(
        leader_kv.log_since(0),
        LogFetch::NeedSnapshot { earliest: 5 },
        "seqs 1..=4 were compacted away"
    );

    struct SnapshotOnly(PlanKv);
    impl ReplTransport for SnapshotOnly {
        fn fetch_log(&self, from_seq: u64) -> Result<LogFetch, ReplError> {
            Ok(self.0.log_since(from_seq))
        }
        fn fetch_snapshot(&self) -> Result<KvSnapshot, ReplError> {
            Ok(self.0.snapshot())
        }
    }

    let follower = follower_service(9, 10);
    let mut repl = Replicator::new(Arc::clone(&follower), Box::new(SnapshotOnly(leader_kv)));
    match repl.poll_once() {
        PollOutcome::SnapshotRestored { applied_seq } => assert_eq!(applied_seq, 6),
        other => panic!("expected snapshot catch-up, got {other:?}"),
    }
    assert_eq!(follower.kv().applied_seq(), 6);
    assert_eq!(repl.poll_once(), PollOutcome::UpToDate);
    let metrics = follower.render_metrics();
    assert!(
        metrics.contains("nshard_serve_snapshot_catchup_total 1"),
        "got:\n{metrics}"
    );
}

/// The acceptance-criterion chaos scenario: the leader dies mid-stream
/// (an op it sequenced is never delivered), the follower exhausts its
/// failure threshold, promotes itself **warm**, keeps serving the
/// incumbent plans it replicated, flags stale reads, and answers
/// `/v1/replan` as the new leader with failover-attributed provenance.
/// Run twice to prove the whole scenario is bit-deterministic.
#[test]
fn leader_kill_mid_stream_promotes_a_warm_follower() {
    let transcript = run_leader_kill_scenario();
    let again = run_leader_kill_scenario();
    assert_eq!(
        transcript, again,
        "the chaos scenario is bit-deterministic end to end"
    );
}

fn run_leader_kill_scenario() -> Vec<String> {
    let mut transcript = Vec::new();
    let leader = leader_service(11);
    let follower = follower_service(11, 3);
    let faults = Arc::new(Mutex::new(FaultPlan::new(11)));
    let drop_head = Arc::new(AtomicBool::new(false));
    let mut repl = Replicator::new(
        Arc::clone(&follower),
        Box::new(ChaosTransport {
            leader: Arc::clone(&leader),
            faults: Arc::clone(&faults),
            leader_node: 0,
            follower_node: 1,
            drop_head: Arc::clone(&drop_head),
        }),
    );

    // The leader adopts a plan; the follower replicates it.
    let (status, body) = post_drained(
        &leader,
        "/v1/plan",
        format!("{{\"task\":{}}}", task_json(0)),
    );
    assert_eq!(status, 200, "leader plans: {body}");
    let incumbent_id = leader.plans().ids()[0].clone();
    transcript.push(format!("replicated:{:?}", repl.poll_once()));

    // Mid-stream: the leader adopts two more plans, but the stream loses
    // the older one (seq 2) permanently — the follower *observes* seq 3
    // exists yet can never apply it (contiguity gate).
    for salt in [1, 2] {
        let (status, _) = post_drained(
            &leader,
            "/v1/plan",
            format!("{{\"task\":{}}}", task_json(salt)),
        );
        assert_eq!(status, 200);
    }
    assert_eq!(leader.kv().applied_seq(), 3);
    drop_head.store(true, Ordering::SeqCst);
    transcript.push(format!("gapped:{:?}", repl.poll_once()));
    assert_eq!(
        follower.kv().applied_seq(),
        1,
        "the gapped op cannot apply without its predecessor"
    );
    assert_eq!(
        follower.kv().pending_len(),
        1,
        "seq 3 is buffered, seq 2 lost"
    );
    assert_eq!(
        repl.last_leader_seq(),
        3,
        "the staleness watermark saw seq 3"
    );

    // The leader dies. Three consecutive failures reach the threshold.
    *faults.lock().unwrap() = FaultPlan::new(11).with_fault(Fault::NodeCrash { node: 0 });
    let mut promoted = None;
    for _ in 0..3 {
        let outcome = repl.poll_once();
        transcript.push(format!("outage:{outcome:?}"));
        if let PollOutcome::Promoted { at_seq, stale } = outcome {
            promoted = Some((at_seq, stale));
        }
    }
    let (at_seq, stale) = promoted.expect("threshold 3 promotes on the third failure");
    assert_eq!(at_seq, 1, "promoted with the one op it had applied");
    assert!(stale, "the dead leader was known to be ahead");
    assert!(follower.role().is_leader());
    assert_eq!(repl.poll_once(), PollOutcome::AlreadyLeader);

    // Warm reads: the incumbent plan it replicated still serves, marked
    // as a degraded-mode (stale) read.
    let (status, body, headers) = get_inline(&follower, &format!("/v1/plans/{incumbent_id}"));
    assert_eq!(status, 200, "incumbent plan survives the failover: {body}");
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "X-Nshard-Stale" && v == "true"),
        "degraded-mode reads are flagged: {headers:?}"
    );
    transcript.push(format!("warm_read:{status}"));

    // Warm writes: the survivor answers /v1/replan as the new leader,
    // attributing the failover in provenance.
    let (status, body) = post_drained(
        &follower,
        "/v1/replan",
        format!(
            "{{\"task\":{},\"incumbent_id\":\"{incumbent_id}\"}}",
            task_json(3)
        ),
    );
    assert_eq!(status, 200, "the survivor replans: {body}");
    assert!(
        body.contains("\"failover\":{\"node\":\"node-1\",\"at_seq\":1,\"stale\":true}"),
        "provenance records who took over and how caught-up it was: {body}"
    );
    transcript.push(format!("warm_replan:{status}"));

    // Observability: role gauge at leader, the observed lag recorded, and
    // the status endpoint reporting stale leadership.
    let metrics = follower.render_metrics();
    assert!(metrics.contains("nshard_serve_replica_role 2"), "{metrics}");
    assert!(
        metrics.contains("nshard_serve_replication_lag 2"),
        "{metrics}"
    );
    let (status, status_body, _) = get_inline(&follower, "/v1/repl/status");
    assert_eq!(status, 200);
    assert!(status_body.contains("\"role\":\"leader\""), "{status_body}");
    assert!(status_body.contains("\"stale\":true"), "{status_body}");
    transcript.push(format!("status:{status_body}"));
    transcript
}

/// Followers refuse planning writes with a typed `not_leader` rejection
/// instead of forking the store.
#[test]
fn followers_reject_writes_with_not_leader() {
    let follower = follower_service(13, 3);
    let (status, body) = post_drained(
        &follower,
        "/v1/plan",
        format!("{{\"task\":{}}}", task_json(0)),
    );
    assert_eq!(status, 503);
    assert!(body.contains("not_leader"), "{body}");
    let metrics = follower.render_metrics();
    assert!(
        metrics.contains("nshard_serve_rejected_total{reason=\"not_leader\"} 1"),
        "got:\n{metrics}"
    );
}

/// The replication metrics contract: every new series is present with its
/// HELP/TYPE header from boot, role gauges disagree across roles, and the
/// health body carries the role label.
#[test]
fn replication_metrics_contract() {
    let leader = leader_service(17);
    let follower = follower_service(17, 3);
    for (service, role_value) in [(&leader, "2"), (&follower, "0")] {
        let text = service.render_metrics();
        for series in [
            "nshard_serve_replica_role",
            "nshard_serve_replication_lag",
            "nshard_serve_snapshot_catchup_total",
            "nshard_serve_seq_conflict_total",
        ] {
            assert!(
                text.contains(&format!("# HELP {series}")),
                "missing {series}"
            );
            assert!(
                text.contains(&format!("# TYPE {series}")),
                "missing {series}"
            );
        }
        assert!(
            text.contains(&format!("nshard_serve_replica_role {role_value}")),
            "role gauge wrong:\n{text}"
        );
    }
    let (status, health, _) = get_inline(&leader, "/health");
    assert_eq!(status, 200);
    assert!(health.contains("\"role\":\"leader\""), "{health}");
    let (_, health, _) = get_inline(&follower, "/health");
    assert!(health.contains("\"role\":\"follower\""), "{health}");
}
