//! Determinism of the parallel pre-training pipeline: collected datasets,
//! trained weights, and training reports must be bit-identical at any
//! worker-thread count.
//!
//! Collection owes this to per-sample seeding (`sample_seed(seed, i)` gives
//! every sample its own RNG, so results do not depend on which worker ran
//! it), and training owes it to the fixed shard decomposition plus the
//! fixed-order tree reduction of per-shard gradients. This suite sweeps
//! explicit thread counts {1, 2, 8}; CI additionally runs it under
//! `NSHARD_THREADS=8` so the `threads: 0` (auto) paths resolve to an
//! oversubscribed worker count.

use neuroshard::cost::{
    collect_comm_data, collect_compute_data, CollectConfig, CommCostModel, ComputeCostModel,
    CostModelBundle, TrainSettings,
};
use neuroshard::data::TablePool;
use neuroshard::nn::{Mlp, TrainConfig, Trainer, GRAD_SHARD_ROWS};
use neuroshard::sim::{CommParams, KernelParams};

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn pool() -> TablePool {
    TablePool::synthetic_dlrm(60, 0xD17E)
}

fn collect_config(threads: usize) -> CollectConfig {
    CollectConfig {
        compute_samples: 200,
        comm_samples: 200,
        threads,
        ..CollectConfig::smoke()
    }
}

#[test]
fn collectors_are_bit_identical_across_thread_counts() {
    let pool = pool();
    let kernel = KernelParams::rtx_2080_ti();
    let comm = CommParams::pcie_server();

    let compute_ref = collect_compute_data(&pool, &kernel, &collect_config(1), 7);
    let comm_ref = collect_comm_data(&pool, &comm, 4, &collect_config(1), 9);
    for threads in THREAD_SWEEP {
        let cfg = collect_config(threads);
        assert_eq!(
            collect_compute_data(&pool, &kernel, &cfg, 7),
            compute_ref,
            "compute dataset diverged at {threads} threads"
        );
        let comm_data = collect_comm_data(&pool, &comm, 4, &cfg, 9);
        assert_eq!(
            comm_data.forward, comm_ref.forward,
            "forward comm dataset diverged at {threads} threads"
        );
        assert_eq!(
            comm_data.backward, comm_ref.backward,
            "backward comm dataset diverged at {threads} threads"
        );
    }
}

#[test]
fn trainer_is_bit_identical_across_thread_counts() {
    // 200 training rows at batch 160 = shards of 64/64/32 per batch: the
    // sharded gradient path genuinely fans out.
    let xs: Vec<Vec<f32>> = (0..250)
        .map(|i| vec![(i % 23) as f32 / 23.0, (i % 7) as f32 / 7.0])
        .collect();
    let ys: Vec<Vec<f32>> = xs.iter().map(|r| vec![2.0 * r[0] - r[1] + 0.25]).collect();
    let data = neuroshard::nn::Dataset::new(
        neuroshard::nn::Matrix::from_rows(&xs),
        neuroshard::nn::Matrix::from_rows(&ys),
    )
    .unwrap();
    assert!(data.len() > 2 * GRAD_SHARD_ROWS, "batches must multi-shard");

    let config = |threads: usize| TrainConfig {
        epochs: 12,
        batch_size: 160,
        learning_rate: 1e-3,
        threads,
    };
    let mut reference = Trainer::new(config(1));
    let report_ref = reference.fit(Mlp::new(2, &[16, 8], 1, 3), &data, 17);
    let model_ref = reference.into_best_model().unwrap();

    for threads in THREAD_SWEEP {
        let mut trainer = Trainer::new(config(threads));
        let report = trainer.fit(Mlp::new(2, &[16, 8], 1, 3), &data, 17);
        assert_eq!(
            report, report_ref,
            "train report diverged at {threads} threads"
        );
        assert_eq!(
            trainer.into_best_model().unwrap(),
            model_ref,
            "trained weights diverged at {threads} threads"
        );
    }
}

#[test]
fn cost_model_training_is_bit_identical_across_thread_counts() {
    let pool = pool();
    let compute_data =
        collect_compute_data(&pool, &KernelParams::rtx_2080_ti(), &collect_config(0), 21);
    let comm_data = collect_comm_data(&pool, &CommParams::pcie_server(), 4, &collect_config(0), 23);

    let settings = |threads: usize| TrainSettings {
        epochs: 4,
        batch_size: 128,
        learning_rate: 1e-3,
        threads,
    };
    let mut compute_ref = ComputeCostModel::new(5);
    let compute_report_ref = compute_ref.train(&compute_data, &settings(1), 31);
    let mut comm_ref = CommCostModel::new(4, 6);
    let comm_report_ref = comm_ref.train(&comm_data.forward, &settings(1), 33);

    for threads in THREAD_SWEEP {
        let mut compute = ComputeCostModel::new(5);
        let report = compute.train(&compute_data, &settings(threads), 31);
        assert_eq!(
            report, compute_report_ref,
            "compute train report diverged at {threads} threads"
        );
        assert_eq!(
            compute, compute_ref,
            "compute model weights diverged at {threads} threads"
        );

        let mut comm = CommCostModel::new(4, 6);
        let report = comm.train(&comm_data.forward, &settings(threads), 33);
        assert_eq!(
            report, comm_report_ref,
            "comm train report diverged at {threads} threads"
        );
        assert_eq!(
            comm, comm_ref,
            "comm model weights diverged at {threads} threads"
        );
    }
}

#[test]
fn pretrained_bundle_is_bit_identical_across_thread_counts() {
    // End to end: collect + train all three models through the public
    // pre-training entry point, sweeping the thread knob on both stages.
    let pool = pool();
    let bundle = |threads: usize| {
        CostModelBundle::pretrain(
            &pool,
            2,
            &collect_config(threads),
            &TrainSettings {
                epochs: 3,
                threads,
                ..TrainSettings::smoke()
            },
            41,
        )
    };
    let reference = bundle(1);
    for threads in THREAD_SWEEP {
        assert_eq!(
            bundle(threads),
            reference,
            "pre-trained bundle diverged at {threads} threads"
        );
    }
}
