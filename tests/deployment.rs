//! Deployment-lifecycle integration tests: checkpoint round-trips,
//! version control, re-training on distribution shift, and the row-wise
//! extension — the concerns of the paper's §3.2 "Deployment" discussion.

use neuroshard::core::{NeuroShard, NeuroShardConfig, PlanError};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::nn::serialize::{Checkpoint, CheckpointError};
use neuroshard::nn::Mlp;

fn quick_bundle(pool: &TablePool, gpus: usize, seed: u64) -> CostModelBundle {
    CostModelBundle::pretrain(
        pool,
        gpus,
        &CollectConfig {
            compute_samples: 800,
            comm_samples: 600,
            ..CollectConfig::default()
        },
        &TrainSettings {
            epochs: 10,
            ..TrainSettings::default()
        },
        seed,
    )
}

/// A serialized bundle, reloaded, must make the *same sharding decisions* —
/// the paper's requirement that a training job resumes with a consistent
/// plan (§3.2, strict version control).
#[test]
fn reloaded_bundle_reproduces_the_same_plan() {
    let pool = TablePool::synthetic_dlrm(80, 3);
    let bundle = quick_bundle(&pool, 2, 1);
    let json = serde_json::to_string(&bundle).expect("bundles serialize");
    let reloaded: CostModelBundle = serde_json::from_str(&json).expect("bundles deserialize");

    let task = ShardingTask::sample(&pool, 2, 8..=16, 64, 9);
    let plan_a = NeuroShard::new(bundle, NeuroShardConfig::smoke())
        .shard_with_stats(&task)
        .unwrap()
        .plan;
    let plan_b = NeuroShard::new(reloaded, NeuroShardConfig::smoke())
        .shard_with_stats(&task)
        .unwrap()
        .plan;
    assert_eq!(plan_a, plan_b);
}

/// Versioned NN checkpoints reject future formats with a typed error
/// instead of silently loading garbage, and still load the supported
/// prior version by migrating it forward.
#[test]
fn checkpoint_version_control() {
    use neuroshard::nn::serialize::CHECKPOINT_VERSION;

    let ckpt = Checkpoint::new("compute_cost", Mlp::new(4, &[8], 1, 0));
    let json = ckpt.to_json();
    assert!(Checkpoint::from_json(&json).is_ok());

    let tampered = json.replace(
        &format!("\"version\":{CHECKPOINT_VERSION}"),
        "\"version\":7",
    );
    assert!(matches!(
        Checkpoint::from_json(&tampered),
        Err(CheckpointError::UnsupportedVersion { found: 7, .. })
    ));

    // A version-1 document (predating `created_by`) still loads warm.
    let legacy = json
        .replace(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            "\"version\":1",
        )
        .replace(",\"created_by\":\"\"", "");
    let migrated = Checkpoint::from_json(&legacy).expect("prior version migrates");
    assert_eq!(migrated.version, CHECKPOINT_VERSION);
}

/// Re-training on shifted data (different pooling factors ≈ shifted index
/// distributions) changes the models — the drift the paper's periodic
/// re-training interval exists to absorb.
#[test]
fn retraining_absorbs_distribution_shift() {
    let pool_v1 = TablePool::synthetic_dlrm(60, 10);
    // A "shifted" pool: same seed family, different workload statistics.
    let pool_v2 = TablePool::from_tables(
        pool_v1
            .iter()
            .map(|t| {
                TableConfig::new(
                    t.id(),
                    t.dim(),
                    t.hash_size(),
                    t.pooling_factor() * 3.0,
                    t.zipf_alpha(),
                )
            })
            .collect(),
    );
    let b1 = quick_bundle(&pool_v1, 2, 4);
    let b2 = quick_bundle(&pool_v2, 2, 4);
    assert_ne!(b1, b2, "re-training on shifted data must change the models");
}

/// The row-wise extension rescues tasks the paper's column-only search
/// cannot solve, end to end through the public API.
#[test]
fn row_wise_extension_rescues_tall_tables_end_to_end() {
    let pool = TablePool::synthetic_dlrm(60, 11);
    let bundle = quick_bundle(&pool, 2, 5);

    // dim-4 (column-unsplittable) table of 300 M rows = 5 GB > 4 GB budget.
    let tall = TableConfig::new(TableId(999), 4, 300 << 20, 16.0, 1.0);
    let small = TableConfig::new(TableId(1000), 16, 1 << 18, 8.0, 1.0);
    let task = ShardingTask::new(
        vec![tall, small],
        2,
        neuroshard::sim::DEFAULT_MEM_BYTES,
        65_536,
    );

    let column_only = NeuroShard::new(bundle.clone(), NeuroShardConfig::default());
    assert!(matches!(
        column_only.shard_with_stats(&task),
        Err(PlanError::Infeasible { .. })
    ));

    let extended = NeuroShard::new(
        bundle,
        NeuroShardConfig {
            use_row_wise: true,
            ..NeuroShardConfig::default()
        },
    );
    let outcome = extended.shard_with_stats(&task).expect("row-wise rescues");
    assert!(outcome.plan.num_row_splits() >= 1);
    assert!(outcome.plan.validate(&task).is_ok());
}

/// The prediction cache is shared safely across threads (production
/// sharding services run concurrent queries).
#[test]
fn cost_simulator_is_thread_safe() {
    use neuroshard::cost::CostSimulator;
    use neuroshard::sim::TableProfile;
    use std::sync::Arc;

    let pool = TablePool::synthetic_dlrm(40, 12);
    let sim = Arc::new(CostSimulator::new(quick_bundle(&pool, 2, 6)));
    let handles: Vec<_> = (0..4)
        .map(|k| {
            let sim = Arc::clone(&sim);
            std::thread::spawn(move || {
                let t = TableProfile::new(32 << (k % 2), 1 << 20, 10.0, 0.4, 1.0);
                (0..200)
                    .map(|_| sim.device_compute_cost(&[t]))
                    .fold(0.0f64, f64::max)
            })
        })
        .collect();
    let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.iter().all(|c| c.is_finite()));
    // Heavy reuse ⇒ high hit rate even under concurrency.
    assert!(sim.cache().hit_rate() > 0.9);
}
