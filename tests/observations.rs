//! Integration tests pinning the paper's three cost observations (§2) at
//! the public-API level — the properties the whole search design rests on.

use neuroshard::data::{augment_pool, PlacementGenerator, TablePool, PAPER_DIMS};
use neuroshard::sim::{CommParams, KernelParams, TableProfile};

const BATCH: u32 = 65_536;

/// Observation 1: partitioning a table column-wise produces halves that
/// each cost more than half the original — for every table in the pool at
/// every splittable dimension.
#[test]
fn observation_1_column_split_penalty_over_the_pool() {
    let pool = TablePool::synthetic_dlrm(64, 3);
    let kernel = KernelParams::rtx_2080_ti();
    for table in &pool {
        for dim in [8u32, 16, 32, 64, 128] {
            let t = table.with_dim(dim).profile(BATCH);
            let full = kernel.multi_cost_ms(&[t], BATCH);
            let (half, _) = t.split_columns().expect("dims >= 8 split");
            let half_cost = kernel.multi_cost_ms(&[half], BATCH);
            assert!(
                half_cost > full / 2.0 && half_cost < full,
                "table {} dim {dim}: half {half_cost} vs full {full}",
                table.id()
            );
        }
    }
}

/// Observation 2: the fused multi-table cost is below the sum of
/// single-table costs, non-linearly (the gap grows with the table count).
#[test]
fn observation_2_fusion_gap_grows_with_table_count() {
    let pool = TablePool::synthetic_dlrm(64, 5);
    let kernel = KernelParams::rtx_2080_ti();
    let profiles: Vec<TableProfile> = pool.iter().map(|t| t.profile(BATCH)).collect();
    let mut prev_ratio = 1.0;
    for t in [2usize, 4, 8, 16, 32] {
        let subset = &profiles[..t];
        let fused = kernel.multi_cost_ms(subset, BATCH);
        let sum: f64 = subset
            .iter()
            .map(|p| kernel.multi_cost_ms(std::slice::from_ref(p), BATCH))
            .sum();
        let ratio = fused / sum;
        assert!(ratio < 1.0, "T={t}: fused {fused} >= sum {sum}");
        assert!(
            ratio < prev_ratio + 0.02,
            "T={t}: fusion benefit should not shrink noticeably ({prev_ratio} -> {ratio})"
        );
        prev_ratio = ratio;
    }
}

/// Observation 3: across random placements, the max communication cost is
/// strongly positively correlated with the max device dimension.
#[test]
fn observation_3_comm_tracks_max_device_dim() {
    let pool = augment_pool(&TablePool::synthetic_dlrm(120, 7), &PAPER_DIMS);
    let comm = CommParams::pcie_server();
    for d in [4usize, 8] {
        let generator =
            PlacementGenerator::new(pool.clone(), d, 10 * d, 10 * d).with_max_start_ms(0.0);
        let placements = generator.generate(40, 11);
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for p in &placements {
            let dims = p.device_dims();
            let costs = comm.forward_costs_ms(&dims, &p.start_ts_ms, BATCH);
            xs.push(p.max_device_dim());
            ys.push(costs.iter().cloned().fold(0.0, f64::max));
        }
        // Pearson correlation by hand.
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let r = cov / (vx * vy).sqrt();
        assert!(r > 0.9, "{d} GPUs: correlation {r} too weak");
    }
}

/// The trace simulator reproduces Figure 1's accumulation effect: with an
/// imbalanced placement, delays build up and all GPUs accrue idle time.
#[test]
fn figure_1_imbalance_accumulates_idle_time() {
    use neuroshard::sim::{Cluster, GpuSpec, NoiseModel, TraceSimulator};
    let t = |d| TableProfile::new(d, 1 << 20, 12.0, 0.3, 1.0);
    let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 3, BATCH).with_noise(NoiseModel::disabled());
    let sim = TraceSimulator::new(cluster, 8.0);

    let balanced = vec![vec![t(64); 2]; 3];
    let skewed = vec![vec![t(64); 6], vec![t(64)], vec![t(64)]];
    let b = sim.simulate(&balanced, 30).unwrap();
    let s = sim.simulate(&skewed, 30).unwrap();
    assert!(s.mean_idle_ms > b.mean_idle_ms * 2.0);
    assert!(s.iteration_ms > b.iteration_ms);
}
