//! End-to-end properties of the online re-sharding loop:
//!
//! * a [`PlanDelta`] replayed against the incumbent reproduces the
//!   incremental planner's output exactly (the delta is the full story),
//! * the incremental plan is never worse than the incumbent under the
//!   drifted workload (in predicted cost),
//! * the whole controller loop is bit-deterministic per seed — CI runs
//!   this suite again with `NSHARD_THREADS=8` to pin thread-count
//!   invariance on oversubscribed hosts.

use neuroshard::cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::online::{
    IncrementalPlanner, OnlineConfig, OnlineController, ReplanStrategy, WorkloadDrift,
};
use neuroshard::prelude::*;
use proptest::prelude::*;

fn quick_bundle(pool: &TablePool, gpus: usize, seed: u64) -> CostModelBundle {
    CostModelBundle::pretrain(
        pool,
        gpus,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

fn small_search() -> NeuroShardConfig {
    NeuroShardConfig {
        n: 2,
        k: 2,
        l: 3,
        m: 3,
        ..NeuroShardConfig::default()
    }
}

/// An incumbent plan for the base task, via the full search.
fn deploy(bundle: &CostModelBundle, task: &ShardingTask) -> ShardingPlan {
    NeuroShard::new(bundle.clone(), small_search())
        .shard(task)
        .expect("benchmark tasks are feasible")
}

#[test]
fn delta_replay_reproduces_the_incremental_plan() {
    let pool = TablePool::synthetic_dlrm(40, 1);
    let bundle = quick_bundle(&pool, 2, 7);
    let sim = CostSimulator::new(bundle.clone());
    let base_task = ShardingTask::sample(&pool, 2, 12..=12, 64, 3);
    let incumbent = deploy(&bundle, &base_task);
    let drift = WorkloadDrift::standard(base_task, 42);

    // Replay the delta at several drift epochs, including the spike.
    for epoch in [1u64, 5, 10, 11] {
        let task = drift.task_at(epoch);
        let out = IncrementalPlanner::default()
            .replan(&sim, &task, &incumbent)
            .expect("rebase is legal on this trace");
        let rebased = incumbent.rebase(&task).unwrap();
        let replayed = out.delta.apply(&rebased).expect("delta replays");
        assert_eq!(
            replayed, out.plan,
            "delta at epoch {epoch} must reproduce the planner's output"
        );
    }
}

#[test]
fn incremental_plan_is_never_worse_than_the_incumbent() {
    let pool = TablePool::synthetic_dlrm(40, 1);
    let bundle = quick_bundle(&pool, 2, 7);
    let sim = CostSimulator::new(bundle.clone());
    let base_task = ShardingTask::sample(&pool, 2, 12..=12, 64, 3);
    let incumbent = deploy(&bundle, &base_task);
    let drift = WorkloadDrift::standard(base_task, 42);

    for epoch in 1..16u64 {
        let task = drift.task_at(epoch);
        let out = IncrementalPlanner::default()
            .replan(&sim, &task, &incumbent)
            .expect("rebase is legal on this trace");
        let rebased = incumbent.rebase(&task).unwrap();
        let incumbent_ms = sim
            .estimate_plan(&rebased.device_profiles(task.batch_size()))
            .total_ms();
        assert!(
            out.estimated.total_ms() <= incumbent_ms + 1e-12,
            "epoch {epoch}: incremental {:.4} ms worse than incumbent {incumbent_ms:.4} ms",
            out.estimated.total_ms()
        );
    }
}

#[test]
fn controller_history_is_bit_deterministic_per_seed() {
    let pool = TablePool::synthetic_dlrm(40, 1);
    let base_task = ShardingTask::sample(&pool, 2, 12..=12, 64, 3);
    let config = OnlineConfig {
        epochs: 12,
        strategy: ReplanStrategy::Incremental,
        search: small_search(),
        seed: 9,
        ..OnlineConfig::default()
    };
    let run = || {
        let bundle = quick_bundle(&pool, 2, 7);
        let drift = WorkloadDrift::standard(base_task.clone(), 42);
        OnlineController::new(bundle, drift, config)
            .run()
            .expect("initial deployment is feasible")
    };
    let a = run();
    let b = run();
    // Full structural equality: every report, trigger, action, delta,
    // predicted and ground-truth cost — bit for bit (PartialEq on f64).
    assert_eq!(a, b);

    // An explicit thread-count sweep on top of the NSHARD_THREADS CI run.
    for threads in [1usize, 4] {
        let c = {
            let bundle = quick_bundle(&pool, 2, 7);
            let drift = WorkloadDrift::standard(base_task.clone(), 42);
            OnlineController::new(bundle, drift, OnlineConfig { threads, ..config })
                .run()
                .expect("initial deployment is feasible")
        };
        assert_eq!(a, c, "history must not depend on threads ({threads})");
    }
}

#[test]
fn drift_generator_is_pure_per_seed() {
    let pool = TablePool::synthetic_dlrm(40, 1);
    let base = ShardingTask::sample(&pool, 2, 12..=12, 64, 3);
    let drift = WorkloadDrift::standard(base.clone(), 42);
    // Querying epochs out of order, repeatedly, never changes an answer.
    let forward: Vec<ShardingTask> = (0..8).map(|e| drift.task_at(e)).collect();
    for e in (0..8u64).rev() {
        assert_eq!(drift.task_at(e), forward[e as usize]);
    }
    // A different seed produces a different trace.
    let other = WorkloadDrift::standard(base, 43);
    assert_ne!(other.task_at(3), forward[3]);
}

/// Shared fixture for the property test: pre-training once, not per case.
fn fixture() -> &'static (CostSimulator, ShardingTask, ShardingPlan) {
    static FIXTURE: std::sync::OnceLock<(CostSimulator, ShardingTask, ShardingPlan)> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = quick_bundle(&pool, 2, 7);
        let base_task = ShardingTask::sample(&pool, 2, 8..=8, 32, 3);
        let incumbent = deploy(&bundle, &base_task);
        (CostSimulator::new(bundle), base_task, incumbent)
    })
}

proptest! {
    /// Replaying the delta against the rebased incumbent reproduces the
    /// planner's plan for arbitrary (seed, epoch) drift points.
    #[test]
    fn delta_replay_holds_across_drift_space(seed in 0u64..1000, epoch in 0u64..40) {
        let (sim, base_task, incumbent) = fixture();
        let task = WorkloadDrift::standard(base_task.clone(), seed).task_at(epoch);
        if let Ok(out) = IncrementalPlanner::default().replan(sim, &task, incumbent) {
            let rebased = incumbent.rebase(&task).unwrap();
            prop_assert_eq!(out.delta.apply(&rebased).expect("delta replays"), out.plan);
            prop_assert_eq!(
                out.delta.migration_bytes,
                neuroshard::core::migration_bytes(&rebased, &out.plan)
            );
        }
    }
}
