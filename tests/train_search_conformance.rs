//! Train→search conformance: a freshly pre-trained checkpoint must steer
//! the search to plans as good as the committed one.
//!
//! The committed fixtures pin one full pre-train run: a cost-model bundle
//! (`tests/fixtures/conformance_bundle.json`, stored in the versioned
//! checkpoint envelope the serving daemon uses) and the ground-truth cost
//! of the plan [`BeamSearch`] finds with it
//! (`tests/fixtures/conformance_band.json`). The suite then retrains the
//! models from scratch — same [`CollectConfig::smoke`] recipe, a
//! *different* seed — searches with the fresh checkpoint, and asserts the
//! resulting plan is memory-feasible and lands within a fixed band of the
//! committed plan's ground-truth cost. A regression anywhere in the
//! collect → train → search pipeline (bad labels, a broken trainer, a
//! model/search interface drift) shows up here as a cost-band violation.
//!
//! To regenerate after an intentional pipeline change:
//!
//! ```text
//! NSHARD_WRITE_FIXTURES=1 cargo test --test train_search_conformance
//! ```

use std::path::PathBuf;

use neuroshard::core::{evaluate_plan_exact, BeamSearch, ShardingPlan};
use neuroshard::cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::nn::{envelope_from_json, envelope_to_json, Envelope};
use neuroshard::sim::GpuSpec;

/// Seed behind the committed fixture bundle.
const COMMITTED_SEED: u64 = 0xC0DE;
/// Seed of the from-scratch retrain — deliberately different, so the test
/// checks pipeline conformance rather than bit-equality.
const FRESH_SEED: u64 = 0xF00D;
/// Allowed ground-truth cost ratio between the fresh-checkpoint plan and
/// the committed-checkpoint plan, in either direction.
const COST_BAND: f64 = 1.5;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn regenerating() -> bool {
    std::env::var("NSHARD_WRITE_FIXTURES").as_deref() == Ok("1")
}

fn pool() -> TablePool {
    TablePool::synthetic_dlrm(80, 0xA11CE)
}

fn task() -> ShardingTask {
    ShardingTask::sample(&pool(), 4, 20..=20, 128, 0x7A5C)
}

fn pretrain(seed: u64) -> CostModelBundle {
    CostModelBundle::pretrain(
        &pool(),
        4,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

/// Searches with a bundle and returns the plan plus its *ground-truth*
/// (noise-free simulator) cost — the committed and fresh runs are compared
/// on the oracle, not on their own models' estimates.
fn search_and_measure(bundle: CostModelBundle, task: &ShardingTask) -> (ShardingPlan, f64) {
    let sim = CostSimulator::new(bundle);
    let result = BeamSearch::new(&sim)
        .search(task)
        .expect("smoke task is feasible");
    let truth = evaluate_plan_exact(task, &result.plan, &GpuSpec::rtx_2080_ti())
        .expect("plan fits in memory");
    (result.plan, truth.max_total_ms())
}

#[test]
fn fresh_checkpoint_plans_within_committed_cost_band() {
    let task = task();

    if regenerating() {
        let bundle = pretrain(COMMITTED_SEED);
        let (_, cost) = search_and_measure(bundle.clone(), &task);
        std::fs::write(
            fixture_path("conformance_bundle.json"),
            envelope_to_json("conformance_bundle", "fixture_writer", &bundle),
        )
        .expect("fixture write");
        std::fs::write(
            fixture_path("conformance_band.json"),
            envelope_to_json("conformance_band", "fixture_writer", &cost),
        )
        .expect("fixture write");
        return;
    }

    // The committed checkpoint still loads and still produces a
    // memory-feasible plan at its recorded ground-truth cost.
    let bundle_json = std::fs::read_to_string(fixture_path("conformance_bundle.json"))
        .expect("missing committed conformance bundle fixture");
    let committed: Envelope<CostModelBundle> =
        envelope_from_json(&bundle_json).expect("committed bundle envelope loads");
    let band_json = std::fs::read_to_string(fixture_path("conformance_band.json"))
        .expect("missing committed conformance band fixture");
    let recorded: Envelope<f64> = envelope_from_json(&band_json).expect("band envelope loads");

    let (committed_plan, committed_cost) = search_and_measure(committed.payload, &task);
    committed_plan
        .validate(&task)
        .expect("committed-model plan is memory-feasible");
    assert!(
        (committed_cost - recorded.payload).abs() <= 1e-9 * recorded.payload.abs(),
        "committed-model plan cost drifted: recorded {} ms, got {committed_cost} ms \
         (the search or simulator changed; regenerate with NSHARD_WRITE_FIXTURES=1 \
         if intentional)",
        recorded.payload
    );

    // Retrain from scratch with a different seed and search with the fresh
    // checkpoint: the plan must be feasible and competitive.
    let (fresh_plan, fresh_cost) = search_and_measure(pretrain(FRESH_SEED), &task);
    fresh_plan
        .validate(&task)
        .expect("fresh-model plan is memory-feasible");
    let ratio = fresh_cost / recorded.payload;
    assert!(
        (1.0 / COST_BAND..=COST_BAND).contains(&ratio),
        "fresh checkpoint's plan costs {fresh_cost} ms vs committed {} ms \
         (ratio {ratio:.3}, band {COST_BAND})",
        recorded.payload
    );
}
