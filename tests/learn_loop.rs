//! Continual-learning loop integration tests: the observation buffer is
//! a **pure function of `(seed, insert sequence)`** (proptest), the
//! hooked epoch loop produces byte-identical buffers and identical
//! promotion decisions at every worker thread count, and an end-to-end
//! drift run against a stale incumbent promotes at least one fine-tuned
//! candidate through the shadow evaluation.
//!
//! The thread-count sweep is the learning loop's entry in the workspace
//! determinism contract: CI runs this file under `NSHARD_THREADS=8` as
//! well, and nothing here may depend on the ambient thread count.

use proptest::prelude::*;

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TablePool};
use neuroshard::learn::{
    BufferConfig, ContinualConfig, ContinualLearner, FineTuneSettings, Observation,
    ObservationBuffer, ObservationKind,
};
use neuroshard::online::{
    DriftThresholds, OnlineConfig, OnlineController, ReplanStrategy, WorkloadDrift,
};

/// Self-removing scratch directory for checkpoint stores.
struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("nshard_learn_loop_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn observation(kind_tag: u8, feature: f32, error: f64) -> Observation {
    let kind = match kind_tag % 3 {
        0 => ObservationKind::Compute,
        1 => ObservationKind::CommForward,
        _ => ObservationKind::CommBackward,
    };
    Observation {
        kind,
        features: vec![vec![feature; 4]],
        predicted_ms: 1.0,
        observed_ms: 1.0 + error,
    }
}

proptest! {
    /// Replaying the same insert sequence into a fresh buffer with the
    /// same seed reproduces the serialized buffer **byte for byte** —
    /// eviction is a pure function of `(seed, insert sequence)`, with no
    /// hidden dependence on time, allocation order or thread count.
    #[test]
    fn buffer_eviction_is_a_pure_function_of_seed_and_sequence(
        seed in any::<u64>(),
        inserts in proptest::collection::vec(
            (0u8..3, -4.0f32..4.0, -8.0f64..8.0),
            1..200,
        ),
    ) {
        let config = BufferConfig {
            capacity: 32,
            validation_capacity: 8,
            validation_stride: 4,
            seed,
        };
        let build = || {
            let mut buffer = ObservationBuffer::new(config);
            for (kind, feature, error) in &inserts {
                buffer.insert(observation(*kind, *feature, *error));
            }
            buffer
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.to_bytes(), b.to_bytes());

        // Bounded reservoirs, full accounting, disjoint slices.
        prop_assert!(a.len() <= config.capacity);
        prop_assert!(a.validation_len() <= config.validation_capacity);
        prop_assert_eq!(a.inserted(), inserts.len() as u64);
        let kept = a.len() + a.validation_len();
        prop_assert!(kept <= inserts.len());
    }

    /// The high-|predicted − observed| half of a stream must dominate a
    /// reservoir that cannot hold everything: active sampling keeps what
    /// the models get wrong.
    #[test]
    fn high_error_samples_dominate_after_eviction(seed in any::<u64>()) {
        let config = BufferConfig {
            capacity: 20,
            validation_capacity: 4,
            validation_stride: u64::MAX,
            seed,
        };
        let mut buffer = ObservationBuffer::new(config);
        for i in 0..200u32 {
            // Even inserts: tiny error; odd inserts: large error.
            let error = if i % 2 == 0 { 1e-3 } else { 5.0 };
            buffer.insert(observation(0, i as f32, error));
        }
        let high = buffer
            .training_observations()
            .iter()
            .filter(|o| o.weight() > 1.0)
            .count();
        prop_assert!(
            high >= buffer.len() * 3 / 4,
            "only {high}/{} retained samples are high-error",
            buffer.len()
        );
    }
}

fn stale_setup() -> (CostModelBundle, ShardingTask, TablePool) {
    let pool = TablePool::synthetic_dlrm(96, 17);
    // Pre-train on a stale snapshot (pooling factors scaled down), so
    // serving-time features sit outside the pre-training distribution
    // and the fine-tuner has a real gap to close.
    let stale: Vec<TableConfig> = pool
        .tables()
        .iter()
        .map(|t| t.with_pooling_factor((t.pooling_factor() * 0.35).max(1.0)))
        .collect();
    let stale_pool = TablePool::from_tables(stale);
    let bundle = CostModelBundle::pretrain(
        &stale_pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        17,
    );
    let base = ShardingTask::sample(&pool, 2, 10..=14, 64, 17);
    (bundle, base, pool)
}

fn hooked_run(
    bundle: &CostModelBundle,
    base: &ShardingTask,
    threads: usize,
    tag: &str,
) -> (Vec<u8>, Vec<neuroshard::learn::PromotionRecord>, u64) {
    let dir = TempDir::new(tag);
    let drift = WorkloadDrift::standard(base.clone(), 29);
    let config = OnlineConfig {
        epochs: 10,
        strategy: ReplanStrategy::Full,
        threads,
        seed: 29,
        ..OnlineConfig::default()
    };
    let learn_config = ContinualConfig {
        settings: FineTuneSettings {
            threads,
            ..FineTuneSettings::smoke()
        },
        seed: 29,
        ..ContinualConfig::smoke()
    };
    let mut learner =
        ContinualLearner::new(bundle.clone(), dir.path(), learn_config).expect("store opens");
    let history = OnlineController::new(bundle.clone(), drift, config)
        .run_hooked(&mut learner)
        .expect("the deployment is feasible");
    (
        learner.buffer().to_bytes(),
        learner.records().to_vec(),
        history.epochs.len() as u64,
    )
}

/// The whole hooked loop — observation stream, reservoir eviction,
/// fine-tuning and every promotion decision — is bit-identical at 1, 2
/// and 8 worker threads.
#[test]
fn hooked_loop_is_bit_identical_across_thread_counts() {
    let (bundle, base, _pool) = stale_setup();
    let (bytes_1, records_1, epochs_1) = hooked_run(&bundle, &base, 1, "threads_1");
    let (bytes_2, records_2, epochs_2) = hooked_run(&bundle, &base, 2, "threads_2");
    let (bytes_8, records_8, epochs_8) = hooked_run(&bundle, &base, 8, "threads_8");
    assert_eq!(epochs_1, epochs_2);
    assert_eq!(epochs_1, epochs_8);
    assert_eq!(
        bytes_1, bytes_2,
        "observation buffers must be byte-identical at 1 vs 2 threads"
    );
    assert_eq!(
        bytes_1, bytes_8,
        "observation buffers must be byte-identical at 1 vs 8 threads"
    );
    assert_eq!(
        records_1, records_2,
        "promotion decisions must not depend on threads"
    );
    assert_eq!(
        records_1, records_8,
        "promotion decisions must not depend on threads"
    );
    assert!(!bytes_1.is_empty());
}

/// End-to-end: a drift trace against a stale incumbent accumulates
/// observations, fires the detector, and promotes at least one
/// fine-tuned candidate whose probe plan stayed inside the conformance
/// band — the learner's incumbent is no longer the pre-trained bundle.
#[test]
fn drift_run_promotes_a_finetuned_candidate() {
    let (bundle, base, _pool) = stale_setup();
    let dir = TempDir::new("promote");
    let drift = WorkloadDrift::standard(base, 29);
    let config = OnlineConfig {
        epochs: 12,
        strategy: ReplanStrategy::Full,
        seed: 29,
        // A twitchy detector: the point here is the promote path, not
        // trigger calibration, so make sure the trace fires it.
        thresholds: DriftThresholds {
            max_cost_regression: 0.02,
            imbalance_ratio: 1.05,
        },
        ..OnlineConfig::default()
    };
    let learn_config = ContinualConfig {
        // Enough optimization to actually close a stale incumbent's gap
        // — the smoke settings only nudge (see the thread-count test).
        settings: FineTuneSettings {
            epochs: 30,
            learning_rate: 1e-3,
            min_samples: 12,
            ..FineTuneSettings::default()
        },
        ..ContinualConfig::smoke()
    };
    let mut learner =
        ContinualLearner::new(bundle.clone(), dir.path(), learn_config).expect("store opens");
    OnlineController::new(bundle.clone(), drift, config)
        .run_hooked(&mut learner)
        .expect("the deployment is feasible");
    let promoted: Vec<_> = learner.records().iter().filter(|r| r.promoted).collect();
    assert!(
        !promoted.is_empty(),
        "expected at least one promotion; records: {:?}",
        learner.records()
    );
    for record in &promoted {
        assert!(record.feasible, "promoted probe plans are memory-feasible");
        assert!(
            record.conformance_ratio <= 1.5,
            "promoted candidates stay inside the conformance band: {record:?}"
        );
    }
    assert_ne!(
        learner.incumbent(),
        &bundle,
        "promotion installs the fine-tuned bundle as the new incumbent"
    );
    assert_eq!(
        learner.lifecycle().version(),
        1 + promoted.len() as u64,
        "every promotion bumps the checkpoint version exactly once"
    );
    // The active checkpoint on disk round-trips to the installed
    // incumbent — what serves is what was persisted.
    assert_eq!(
        &learner.lifecycle().load_active().unwrap(),
        learner.incumbent()
    );
}
