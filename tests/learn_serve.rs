//! Serving-side integration of the continual-learning subsystem:
//! ground-truth observations flow over `POST /v1/observations` into an
//! [`neuroshard::learn::ContinualLearner`], a model promotion atomically
//! invalidates every serving cache (no response priced by a retired
//! model is ever replayed), promoted bundles replicate to followers
//! through the plan-KV log, and a contradictory search configuration is
//! rejected at boot with a typed error instead of becoming dead config.
//! Zero sleeps — manual clocks and synchronous queue draining.

use std::sync::Arc;

use neuroshard::core::ConfigError;
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::learn::{ContinualConfig, ContinualLearner};
use neuroshard::serve::http::HttpRequest;
use neuroshard::serve::server::Routed;
use neuroshard::serve::{ManualClock, ServeConfig, Service, StoreError};

fn quick_bundle(seed: u64) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(40, 3);
    CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

fn task_json() -> String {
    let tables: Vec<TableConfig> = (0..8)
        .map(|i| TableConfig::new(TableId(i), 16 + 16 * (i % 2), 1 << 14, 8.0, 1.05))
        .collect();
    let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
    serde_json::to_string(&task).expect("tasks serialize")
}

fn plan_body() -> String {
    format!("{{\"task\":{}}}", task_json())
}

fn post(service: &Service, path: &str, body: &str) -> Routed {
    service.route(&HttpRequest {
        method: "POST".into(),
        path: path.into(),
        body: body.as_bytes().to_vec(),
    })
}

fn get_inline(service: &Service, path: &str) -> (u16, String) {
    let Routed::Inline(r) = service.route(&HttpRequest {
        method: "GET".into(),
        path: path.into(),
        body: Vec::new(),
    }) else {
        panic!("GET {path} answers inline")
    };
    (r.status, String::from_utf8_lossy(&r.body).to_string())
}

/// Self-removing scratch directory for checkpoint stores.
struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("nshard_learn_serve_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `POST /v1/observations` stages ground-truth reports inline, the
/// learning loop drains them with `take_observations`, and a
/// `ContinualLearner` ingests the drained batch (unknown kinds skipped).
#[test]
fn observations_flow_from_the_wire_into_the_learner() {
    let service = Service::with_clock(
        quick_bundle(7),
        ServeConfig::smoke(),
        Arc::new(ManualClock::new()),
    )
    .expect("service boots");
    let body = r#"{"observations":[
        {"kind":"compute","features":[[1.0,2.0,3.0,4.0,5.0,6.0,7.0,8.0]],"predicted_ms":1.5,"observed_ms":2.0},
        {"kind":"comm_forward","features":[[0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5]],"predicted_ms":0.4,"observed_ms":0.6},
        {"kind":"mystery","features":[[1.0]],"predicted_ms":0.0,"observed_ms":0.0}
    ]}"#;
    let Routed::Inline(ack) = post(&service, "/v1/observations", body) else {
        panic!("observation ingest answers inline")
    };
    assert_eq!(ack.status, 200, "{}", String::from_utf8_lossy(&ack.body));
    let ack_body = String::from_utf8_lossy(&ack.body).to_string();
    assert!(ack_body.contains("\"accepted\":3"), "got: {ack_body}");
    assert_eq!(service.observations_buffered(), 3);

    let dir = TempDir::new("wire");
    let mut learner = ContinualLearner::new(quick_bundle(7), dir.path(), ContinualConfig::smoke())
        .expect("store opens");
    learner.ingest_wire(&service.take_observations());
    assert_eq!(
        learner.buffer().inserted(),
        2,
        "the unknown kind is skipped, the rest are buffered"
    );
    assert_eq!(
        service.observations_buffered(),
        0,
        "draining empties the stage"
    );

    let metrics = service.render_metrics();
    assert!(
        metrics.contains("nshard_serve_observations_total 3"),
        "got: {metrics}"
    );
}

/// The stale-cache-across-promotion test: a model promotion bumps the
/// version in `/health` and `/metrics`, re-labels the prediction-cache
/// series, and invalidates the identical-request response cache — the
/// twin of a pre-promotion request must be re-planned by the new model,
/// not replayed from the old one's cache.
#[test]
fn promotion_invalidates_caches_and_relabels_metrics() {
    let config = ServeConfig {
        response_cache_entries: 8,
        ..ServeConfig::smoke()
    };
    let service = Service::with_clock(quick_bundle(7), config, Arc::new(ManualClock::new()))
        .expect("service boots");
    let body = plan_body();

    let (status, health) = get_inline(&service, "/health");
    assert_eq!(status, 200);
    assert!(health.contains("\"model_version\":1"), "got: {health}");

    // Warm the response cache: plan once, then hit with the twin.
    let Routed::Queued(slot) = post(&service, "/v1/plan", &body) else {
        panic!("first request must queue")
    };
    assert!(service.drain_one());
    assert_eq!(slot.wait().status, 200);
    let Routed::Inline(hit) = post(&service, "/v1/plan", &body) else {
        panic!("identical request must be served from the cache inline")
    };
    assert_eq!(hit.status, 200);
    let metrics = service.render_metrics();
    assert!(
        metrics.contains("nshard_serve_response_cache_hits_total 1"),
        "got: {metrics}"
    );
    assert!(
        metrics.contains("model_version=\"1\""),
        "prediction-cache series carry the serving model version: {metrics}"
    );

    // Promote a different bundle: version bumps everywhere...
    let version = service.promote_model(&quick_bundle(9));
    assert_eq!(version, 2);
    assert_eq!(service.model_version(), 2);
    let (_, health) = get_inline(&service, "/health");
    assert!(health.contains("\"model_version\":2"), "got: {health}");

    // ...and the twin of the cached request must MISS — it re-queues and
    // is re-planned by the promoted model instead of replaying the
    // retired model's response.
    let Routed::Queued(slot) = post(&service, "/v1/plan", &body) else {
        panic!("post-promotion twin must miss the response cache and queue")
    };
    assert!(service.drain_one());
    assert_eq!(slot.wait().status, 200);

    let metrics = service.render_metrics();
    assert!(
        metrics.contains("nshard_serve_response_cache_hits_total 1"),
        "the post-promotion twin must not be a cache hit: {metrics}"
    );
    assert!(
        metrics.contains("nshard_serve_model_version 2"),
        "got: {metrics}"
    );
    assert!(
        metrics.contains("nshard_serve_model_promotions_total 1"),
        "got: {metrics}"
    );
    assert!(
        metrics.contains("model_version=\"2\""),
        "cache series re-label after promotion: {metrics}"
    );

    // Rollbacks are observable too.
    service.note_model_rollback();
    let metrics = service.render_metrics();
    assert!(
        metrics.contains("nshard_serve_model_rollbacks_total 1"),
        "got: {metrics}"
    );
}

/// A leader promotion writes the promoted bundle into the replicated KV
/// under `models/active`; a follower applying the log materializes it
/// and starts serving the same model version.
#[test]
fn promoted_model_replicates_to_the_follower() {
    let leader = Service::with_clock(
        quick_bundle(7),
        ServeConfig::smoke(),
        Arc::new(ManualClock::new()),
    )
    .expect("leader boots");
    let mut follower_config = ServeConfig::smoke();
    follower_config.replica.node = "node-1".into();
    follower_config.replica.follower = true;
    let follower = Service::with_clock(
        quick_bundle(7),
        follower_config,
        Arc::new(ManualClock::new()),
    )
    .expect("follower boots");
    assert_eq!(follower.model_version(), 1);

    let promoted = quick_bundle(9);
    assert_eq!(leader.promote_model(&promoted), 2);

    let neuroshard::serve::kv::LogFetch::Ops(ops) = leader.kv().log_since(0) else {
        panic!("leader log is retained")
    };
    assert!(follower.apply_replicated(ops) > 0);
    assert_eq!(
        follower.model_version(),
        2,
        "the follower materializes the promoted bundle"
    );
}

/// `use_row_wise` + `use_beam: false` — historically rejected as dead
/// config — now boots: the greedy-only path row-splits via the
/// deterministic presplit pass (ROADMAP item 4, done).
#[test]
fn row_wise_greedy_only_config_boots() {
    let mut config = ServeConfig::smoke();
    config.search.use_row_wise = true;
    config.search.use_beam = false;
    let service = Service::with_clock(quick_bundle(7), config, Arc::new(ManualClock::new()))
        .expect("row-wise + greedy-only boots");
    assert!(!service.config().search.use_beam);
    assert!(service.config().search.use_row_wise);
}

/// The one remaining contradictory combination — `use_replication` with
/// `use_beam: false` — is rejected at boot with a typed error, not
/// silently ignored.
#[test]
fn contradictory_search_config_is_rejected_at_boot() {
    let mut config = ServeConfig::smoke();
    config.search.use_replication = true;
    config.search.use_beam = false;
    let err = Service::with_clock(quick_bundle(7), config, Arc::new(ManualClock::new()))
        .err()
        .expect("boot must fail");
    match err {
        StoreError::InvalidConfig(e) => assert_eq!(e, ConfigError::ReplicationRequiresBeam),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    let message = format!("{err}");
    assert!(
        message.contains("use_replication") && message.contains("use_beam"),
        "the error names both contradicting switches: {message}"
    );
}
