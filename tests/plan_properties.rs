//! Property-based integration tests over sharding-plan invariants.

use proptest::prelude::*;

use neuroshard::core::{apply_split_plan, migration_bytes, ShardingPlan, SplitStep};
use neuroshard::data::{ShardingTask, TableConfig, TableId};
use neuroshard::resilient::{RepairConfig, RepairEngine};

fn arbitrary_tables() -> impl Strategy<Value = Vec<TableConfig>> {
    proptest::collection::vec(
        (2u32..8, 12u32..24, 1.0f64..40.0, 0.6f64..1.6)
            .prop_map(|(dp, rp, pf, za)| TableConfig::new(TableId(0), 1 << dp, 1u64 << rp, pf, za)),
        1..12,
    )
    .prop_map(|mut ts| {
        for (i, t) in ts.iter_mut().enumerate() {
            *t = TableConfig::new(
                TableId(i as u32),
                t.dim(),
                t.hash_size(),
                t.pooling_factor(),
                t.zipf_alpha(),
            );
        }
        ts
    })
}

proptest! {
    /// Any legal split plan conserves total memory exactly and grows the
    /// table count by exactly the number of steps.
    #[test]
    fn split_plans_conserve_memory(
        tables in arbitrary_tables(),
        raw_steps in proptest::collection::vec((0usize..20, any::<bool>()), 0..10),
    ) {
        let total_before: u64 = tables.iter().map(TableConfig::memory_bytes).sum();
        // Build a plan that is legal by construction: clamp indices and
        // drop illegal steps.
        let mut list = tables.clone();
        let mut plan = Vec::new();
        for (idx_raw, is_row) in raw_steps {
            let index = idx_raw % list.len();
            let step = if is_row { SplitStep::row(index) } else { SplitStep::column(index) };
            let ok = if is_row {
                list[index].split_rows().is_some()
            } else {
                list[index].split_columns().is_some()
            };
            if !ok {
                continue;
            }
            let halves = if is_row {
                list[index].split_rows().unwrap()
            } else {
                list[index].split_columns().unwrap()
            };
            list[index] = halves.0;
            list.push(halves.1);
            plan.push(step);
        }
        let sharded = apply_split_plan(&tables, &plan).expect("plan built to be legal");
        prop_assert_eq!(sharded.len(), tables.len() + plan.len());
        let total_after: u64 = sharded.iter().map(TableConfig::memory_bytes).sum();
        prop_assert_eq!(total_before, total_after);
        // Shard identities trace back to the originals.
        for t in &sharded {
            prop_assert!(tables.iter().any(|orig| orig.id() == t.id()));
        }
    }

    /// Device grouping is an exact partition of the sharded tables, and the
    /// derived per-device aggregates are consistent.
    #[test]
    fn plans_partition_tables(
        tables in arbitrary_tables(),
        devices in 1usize..6,
        assignment_seed in any::<u64>(),
    ) {
        let device_of: Vec<usize> = (0..tables.len())
            .map(|i| ((assignment_seed >> (i % 60)) as usize) % devices)
            .collect();
        let plan = ShardingPlan::new(vec![], tables.clone(), device_of, devices).unwrap();
        let grouped = plan.device_tables();
        prop_assert_eq!(grouped.iter().map(Vec::len).sum::<usize>(), tables.len());
        let bytes: u64 = plan.device_bytes().iter().sum();
        prop_assert_eq!(bytes, tables.iter().map(TableConfig::memory_bytes).sum::<u64>());
        let dims: f64 = plan.device_dims().iter().sum();
        let expect: f64 = tables.iter().map(|t| f64::from(t.dim())).sum();
        prop_assert!((dims - expect).abs() < 1e-9);
    }

    /// Any plan the repair engine returns is memory-feasible, for arbitrary
    /// table pools, device counts, budgets and (possibly badly skewed)
    /// starting assignments. When repair declines, the input plan was
    /// genuinely infeasible — repair never rejects a healthy plan.
    #[test]
    fn repaired_plans_are_memory_feasible(
        tables in arbitrary_tables(),
        devices in 1usize..6,
        assignment_seed in any::<u64>(),
        headroom_pct in 40u64..400,
    ) {
        let total: u64 = tables.iter().map(TableConfig::memory_bytes).sum();
        let budget = (total * headroom_pct / (100 * devices as u64)).max(1);
        let task = ShardingTask::new(tables.clone(), devices, budget, 1024);
        let device_of: Vec<usize> = (0..tables.len())
            .map(|i| ((assignment_seed >> (i % 60)) as usize) % devices)
            .collect();
        let plan = ShardingPlan::new(vec![], tables.clone(), device_of, devices).unwrap();
        let engine = RepairEngine::new(RepairConfig::default());
        match engine.repair(&task, &plan) {
            Ok(report) => {
                prop_assert!(report.plan.validate(&task).is_ok());
                for &bytes in &report.plan.device_bytes() {
                    prop_assert!(bytes <= task.mem_budget_bytes());
                }
            }
            Err(_) => {
                prop_assert!(
                    plan.device_bytes().iter().any(|&b| b > budget),
                    "repair declined a plan that was already feasible"
                );
            }
        }
    }

    /// Row-wise split plans tile every table's rows into contiguous,
    /// non-overlapping ranges that cover `[0, hash_size)` exactly — no
    /// gap, no overlap, for any legal sequence of row splits (including
    /// repeated splits of the same shard).
    #[test]
    fn row_splits_tile_the_table_exactly(
        tables in arbitrary_tables(),
        raw_steps in proptest::collection::vec(0usize..32, 0..10),
    ) {
        let mut list = tables.clone();
        let mut plan = Vec::new();
        for idx_raw in raw_steps {
            let index = idx_raw % list.len();
            let Some(halves) = list[index].split_rows() else { continue };
            list[index] = halves.0;
            list.push(halves.1);
            plan.push(SplitStep::row(index));
        }
        let sharded = apply_split_plan(&tables, &plan).expect("plan built to be legal");
        for orig in &tables {
            let mut ranges: Vec<(u64, u64)> = sharded
                .iter()
                .filter(|s| s.id() == orig.id())
                .map(|s| s.row_range())
                .collect();
            ranges.sort_unstable();
            let mut cursor = 0u64;
            for (start, end) in ranges {
                prop_assert_eq!(start, cursor);
                prop_assert!(end > start, "table {:?}: empty shard", orig.id());
                cursor = end;
            }
            prop_assert_eq!(cursor, orig.hash_size());
        }
    }

    /// Replicated placements charge full table memory on **every** holder:
    /// each replica carries the logical table's full byte mass, so every
    /// replicate step grows the plan's total memory by exactly the
    /// replicated table's bytes.
    #[test]
    fn replicas_are_memory_charged_on_every_holder(
        tables in arbitrary_tables(),
        raw_steps in proptest::collection::vec(0usize..32, 0..6),
        devices in 2usize..6,
        assignment_seed in any::<u64>(),
    ) {
        let total_before: u64 = tables.iter().map(TableConfig::memory_bytes).sum();
        let mut list = tables.clone();
        let mut plan = Vec::new();
        let mut added = 0u64;
        for idx_raw in raw_steps {
            let index = idx_raw % list.len();
            let Some(halves) = list[index].replicate() else { continue };
            added += list[index].memory_bytes();
            list[index] = halves.0;
            list.push(halves.1);
            plan.push(SplitStep::replicate(index));
        }
        let sharded = apply_split_plan(&tables, &plan).expect("plan built to be legal");
        // Every replica is a full copy of its logical table.
        for shard in &sharded {
            let orig = tables.iter().find(|t| t.id() == shard.id()).unwrap();
            prop_assert_eq!(shard.memory_bytes(), orig.memory_bytes());
        }
        let device_of: Vec<usize> = (0..sharded.len())
            .map(|i| ((assignment_seed >> (i % 60)) as usize) % devices)
            .collect();
        let p = ShardingPlan::with_split_plan(plan, sharded, device_of, devices).unwrap();
        let charged: u64 = p.device_bytes().iter().sum();
        prop_assert_eq!(charged, total_before + added);
    }

    /// Migration accounting and rebase stay correct for mixed plans of
    /// column, row and replicate steps: self-migration is free, moving one
    /// shard costs exactly its bytes, and a pooling-only drift rebases to
    /// a valid plan that moves zero bytes.
    #[test]
    fn migration_and_rebase_hold_for_split_and_replicated_shards(
        tables in arbitrary_tables(),
        raw_steps in proptest::collection::vec((0usize..32, 0u8..3), 0..8),
        devices in 2usize..5,
        assignment_seed in any::<u64>(),
        move_pick in any::<u64>(),
        pooling_scale in 1.0f64..4.0,
    ) {
        let mut list = tables.clone();
        let mut plan = Vec::new();
        for (idx_raw, kind) in raw_steps {
            let index = idx_raw % list.len();
            let (halves, step) = match kind {
                0 => (list[index].split_columns(), SplitStep::column(index)),
                1 => (list[index].split_rows(), SplitStep::row(index)),
                _ => (list[index].replicate(), SplitStep::replicate(index)),
            };
            let Some(halves) = halves else { continue };
            list[index] = halves.0;
            list.push(halves.1);
            plan.push(step);
        }
        let sharded = apply_split_plan(&tables, &plan).expect("plan built to be legal");
        let device_of: Vec<usize> = (0..sharded.len())
            .map(|i| ((assignment_seed >> (i % 60)) as usize) % devices)
            .collect();
        let p = ShardingPlan::with_split_plan(
            plan.clone(), sharded.clone(), device_of.clone(), devices,
        ).unwrap();
        prop_assert_eq!(migration_bytes(&p, &p), 0);

        // Moving exactly one shard to another device ships its bytes.
        let i = (move_pick as usize) % sharded.len();
        let mut moved = device_of.clone();
        moved[i] = (device_of[i] + 1) % devices;
        let q = ShardingPlan::with_split_plan(plan.clone(), sharded.clone(), moved, devices).unwrap();
        prop_assert_eq!(migration_bytes(&p, &q), sharded[i].memory_bytes());

        // Pooling-only drift: rebase succeeds (pooling never shrinks, so
        // every recorded split stays legal), validates, keeps the
        // placement and moves zero bytes.
        let drifted_tables: Vec<TableConfig> = tables
            .iter()
            .map(|t| t.with_pooling_factor(t.pooling_factor() * pooling_scale))
            .collect();
        let drifted = ShardingTask::new(drifted_tables, devices, u64::MAX, 1024);
        let r = p.rebase(&drifted).expect("pooling drift keeps splits legal");
        prop_assert!(r.validate(&drifted).is_ok());
        prop_assert_eq!(r.device_of(), p.device_of());
        prop_assert_eq!(migration_bytes(&p, &r), 0);
    }

    /// validate() accepts exactly the plans derived from the task's own
    /// tables and rejects plans with foreign tables.
    #[test]
    fn validate_rejects_foreign_tables(tables in arbitrary_tables()) {
        let task = ShardingTask::new(tables.clone(), 2, u64::MAX, 1024);
        let device_of = vec![0; tables.len()];
        let good = ShardingPlan::new(vec![], tables.clone(), device_of.clone(), 2).unwrap();
        prop_assert!(good.validate(&task).is_ok());

        let mut foreign = tables;
        foreign[0] = TableConfig::new(TableId(9999), foreign[0].dim(), foreign[0].hash_size(), 1.0, 1.0);
        let bad = ShardingPlan::new(vec![], foreign, device_of, 2).unwrap();
        prop_assert!(bad.validate(&task).is_err());
    }
}
