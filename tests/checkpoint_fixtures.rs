//! Golden-fixture tests for the checkpoint envelope format.
//!
//! The JSON documents under `tests/fixtures/` are committed artifacts: they
//! pin the exact bytes the serializer produces (v2, the current format) and
//! the exact bytes a pre-upgrade binary wrote (v1, which predates the
//! `created_by` header field). Loading them must keep working — and keep
//! producing identical results — across refactors of `nshard-nn`'s
//! serialization layer, so any change to the wire format shows up as a
//! fixture diff instead of a silent compatibility break.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! NSHARD_WRITE_FIXTURES=1 cargo test --test checkpoint_fixtures
//! ```
//!
//! then commit the updated files (and bump `CHECKPOINT_VERSION` /
//! migration logic as the change demands).

use std::path::PathBuf;

use neuroshard::nn::{
    envelope_from_json, envelope_to_json, Checkpoint, Envelope, Matrix, Mlp, CHECKPOINT_VERSION,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed fixture {}: {e}", path.display()))
}

/// Writes `content` to the fixture when `NSHARD_WRITE_FIXTURES=1` and
/// returns whether the test should skip its assertions (regeneration mode).
fn maybe_write(name: &str, content: &str) -> bool {
    if std::env::var("NSHARD_WRITE_FIXTURES").as_deref() == Ok("1") {
        std::fs::write(fixture_path(name), content).expect("fixture write");
        return true;
    }
    false
}

/// The deterministic model every checkpoint fixture wraps.
fn fixture_mlp() -> Mlp {
    Mlp::new(3, &[8, 4], 1, 0xF1C5)
}

/// The current-format checkpoint whose serialization is pinned.
fn v2_checkpoint() -> Checkpoint {
    Checkpoint::new("compute_cost", fixture_mlp()).with_created_by("fixture_writer")
}

/// The v1-shaped document: version header 1, no `created_by` field —
/// exactly what a pre-upgrade binary wrote to disk.
fn v1_json() -> String {
    let json = v2_checkpoint()
        .to_json()
        .replacen(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            "\"version\":1",
            1,
        )
        .replace(",\"created_by\":\"fixture_writer\"", "");
    assert!(!json.contains("created_by"), "fixture must be v1-shaped");
    json
}

const ENVELOPE_PAYLOAD: [f64; 4] = [1.5, -2.25, 0.0, 1e-3];

#[test]
fn v2_checkpoint_fixture_is_byte_exact() {
    let json = v2_checkpoint().to_json();
    if maybe_write("checkpoint_v2.json", &json) {
        return;
    }
    let committed = read_fixture("checkpoint_v2.json");
    assert_eq!(
        json, committed,
        "serializer output drifted from the committed v2 fixture; if the \
         format change is intentional, regenerate with NSHARD_WRITE_FIXTURES=1"
    );
    // And the committed bytes load back to exactly the original checkpoint.
    let loaded = Checkpoint::from_json(&committed).expect("v2 fixture loads");
    assert_eq!(loaded, v2_checkpoint());
}

#[test]
fn v1_checkpoint_fixture_migrates_forward() {
    let json = v1_json();
    if maybe_write("checkpoint_v1.json", &json) {
        return;
    }
    let committed = read_fixture("checkpoint_v1.json");
    assert_eq!(json, committed, "v1 fixture generator drifted");

    let loaded = Checkpoint::from_json(&committed).expect("v1 fixture loads");
    // Migration output, field by field: current version, defaulted
    // `created_by`, untouched name and weights.
    let expected = Checkpoint::new("compute_cost", fixture_mlp());
    assert_eq!(loaded, expected);
    assert_eq!(loaded.version, CHECKPOINT_VERSION);
    assert_eq!(loaded.created_by, "");
    // The migrated model predicts bit-identically to the fixture's source.
    let x = Matrix::from_rows([vec![0.25, -1.0, 3.5]]);
    assert_eq!(loaded.model.forward(&x), fixture_mlp().forward(&x));
    // Re-serializing the migrated checkpoint is byte-exact too: migration
    // is deterministic, not best-effort.
    assert_eq!(loaded.to_json(), expected.to_json());
}

#[test]
fn v2_envelope_fixture_is_byte_exact() {
    let json = envelope_to_json(
        "bench_payload",
        "fixture_writer",
        &ENVELOPE_PAYLOAD.to_vec(),
    );
    if maybe_write("envelope_v2.json", &json) {
        return;
    }
    let committed = read_fixture("envelope_v2.json");
    assert_eq!(json, committed, "envelope serializer drifted");
    let env: Envelope<Vec<f64>> = envelope_from_json(&committed).expect("v2 envelope loads");
    assert_eq!(env.version, CHECKPOINT_VERSION);
    assert_eq!(env.name, "bench_payload");
    assert_eq!(env.created_by, "fixture_writer");
    assert_eq!(env.payload, ENVELOPE_PAYLOAD.to_vec());
}

#[test]
fn v1_envelope_fixture_migrates_forward() {
    let json = envelope_to_json(
        "bench_payload",
        "fixture_writer",
        &ENVELOPE_PAYLOAD.to_vec(),
    )
    .replacen(
        &format!("\"version\":{CHECKPOINT_VERSION}"),
        "\"version\":1",
        1,
    )
    .replace(",\"created_by\":\"fixture_writer\"", "");
    if maybe_write("envelope_v1.json", &json) {
        return;
    }
    let committed = read_fixture("envelope_v1.json");
    assert_eq!(json, committed, "v1 envelope fixture generator drifted");
    let env: Envelope<Vec<f64>> = envelope_from_json(&committed).expect("v1 envelope loads");
    assert_eq!(env.version, 1, "reports the version it was written with");
    assert_eq!(env.created_by, "", "defaulted by migration");
    assert_eq!(env.payload, ENVELOPE_PAYLOAD.to_vec());
}
