//! Scenario-matrix conformance suite for heterogeneous placement.
//!
//! Sweeps the full cross product
//!
//! ```text
//! {uniform, heterogeneous fleet} × {no-skew, Zipf-skew workload}
//!                                × {column-wise, row-wise, replicated}
//! ```
//!
//! and asserts, per cell:
//!
//! * the search finds a **memory-feasible** plan (per-device budgets
//!   respected, not just the aggregate),
//! * plans and costs are **bit-identical** across worker-thread counts
//!   {1, 2, 8} (CI re-runs this suite under `NSHARD_THREADS=8`),
//! * on the skewed cells, the richer shard shapes (row-wise, replicated)
//!   are **never worse** than the column-wise-only baseline.

use neuroshard::core::{NeuroShard, NeuroShardConfig, ShardOutcome};
use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{DevicePool, ShardingTask, TableConfig, TableId, TablePool};

const DEVICES: usize = 4;
const THREADS: [usize; 3] = [1, 2, 8];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Fleet {
    /// Flat scalar budget, flat network — the paper's benchmark cluster.
    Uniform,
    /// Two fast/large devices and two slow/small ones across two nodes,
    /// with a 4× intra/inter bandwidth gap.
    Heterogeneous,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Workload {
    /// Evenly pooled tables.
    NoSkew,
    /// One dominant hot table (high pooling factor, sharp Zipf exponent).
    ZipfSkew,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    /// Column-wise sharding only (the paper's search space).
    Column,
    /// Column-wise plus row-wise splits.
    RowWise,
    /// Column-wise plus row-wise plus replicated hot tables.
    Replicated,
}

const FLEETS: [Fleet; 2] = [Fleet::Uniform, Fleet::Heterogeneous];
const WORKLOADS: [Workload; 2] = [Workload::NoSkew, Workload::ZipfSkew];
const SHAPES: [Shape; 3] = [Shape::Column, Shape::RowWise, Shape::Replicated];

/// Ten 32 MB embedding tables plus one tall 128 MB table (row-splittable),
/// with the skewed variant concentrating lookup traffic on table 0.
fn tables(workload: Workload) -> Vec<TableConfig> {
    let mut ts: Vec<TableConfig> = (0..10)
        .map(|i| TableConfig::new(TableId(i), 32, 1 << 18, 8.0, 1.0))
        .collect();
    ts.push(TableConfig::new(TableId(10), 8, 1 << 22, 4.0, 0.8));
    if workload == Workload::ZipfSkew {
        ts[0] = ts[0].with_pooling_factor(384.0).with_zipf_alpha(1.6);
        ts[1] = ts[1].with_pooling_factor(48.0).with_zipf_alpha(1.4);
    }
    ts
}

fn task(fleet: Fleet, workload: Workload) -> ShardingTask {
    let t = ShardingTask::new(tables(workload), DEVICES, 192 << 20, 4096);
    match fleet {
        Fleet::Uniform => t,
        Fleet::Heterogeneous => {
            t.with_devices(DevicePool::two_tier(2, 192 << 20, 2, 96 << 20, 1.5, 0.25))
        }
    }
}

fn config(shape: Shape, threads: usize) -> NeuroShardConfig {
    NeuroShardConfig {
        n: 4,
        k: 2,
        l: 3,
        m: 5,
        use_row_wise: shape != Shape::Column,
        use_replication: shape == Shape::Replicated,
        threads,
        ..NeuroShardConfig::default()
    }
}

fn bundle() -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(80, 0xE7E90);
    CostModelBundle::pretrain(
        &pool,
        DEVICES,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        9,
    )
}

fn shard_cell(
    bundle: &CostModelBundle,
    fleet: Fleet,
    workload: Workload,
    shape: Shape,
    threads: usize,
) -> ShardOutcome {
    let task = task(fleet, workload);
    NeuroShard::new(bundle.clone(), config(shape, threads))
        .shard_with_stats(&task)
        .unwrap_or_else(|e| panic!("cell ({fleet:?}, {workload:?}, {shape:?}): {e}"))
}

#[test]
fn every_cell_finds_a_memory_feasible_plan() {
    let bundle = bundle();
    for fleet in FLEETS {
        for workload in WORKLOADS {
            for shape in SHAPES {
                let t = task(fleet, workload);
                let outcome = shard_cell(&bundle, fleet, workload, shape, 1);
                outcome.plan.validate(&t).unwrap_or_else(|e| {
                    panic!("cell ({fleet:?}, {workload:?}, {shape:?}) invalid: {e}")
                });
                for (d, bytes) in outcome.plan.device_bytes().into_iter().enumerate() {
                    assert!(
                        bytes <= t.budget_of(d),
                        "cell ({fleet:?}, {workload:?}, {shape:?}): device {d} holds \
                         {bytes} bytes over its {} byte budget",
                        t.budget_of(d)
                    );
                }
            }
        }
    }
}

#[test]
fn every_cell_is_bit_identical_across_thread_counts() {
    let bundle = bundle();
    for fleet in FLEETS {
        for workload in WORKLOADS {
            for shape in SHAPES {
                let reference = shard_cell(&bundle, fleet, workload, shape, THREADS[0]);
                for threads in &THREADS[1..] {
                    let other = shard_cell(&bundle, fleet, workload, shape, *threads);
                    assert_eq!(
                        reference.plan, other.plan,
                        "cell ({fleet:?}, {workload:?}, {shape:?}): plan differs at \
                         {threads} threads"
                    );
                    assert_eq!(
                        reference.estimated_cost_ms.to_bits(),
                        other.estimated_cost_ms.to_bits(),
                        "cell ({fleet:?}, {workload:?}, {shape:?}): cost differs at \
                         {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn richer_shapes_never_regress_on_skewed_cells() {
    let bundle = bundle();
    for fleet in FLEETS {
        let column = shard_cell(&bundle, fleet, Workload::ZipfSkew, Shape::Column, 1);
        for shape in [Shape::RowWise, Shape::Replicated] {
            let richer = shard_cell(&bundle, fleet, Workload::ZipfSkew, shape, 1);
            assert!(
                richer.estimated_cost_ms <= column.estimated_cost_ms,
                "({fleet:?}, {shape:?}) estimates {:.4} ms, worse than the \
                 column-only {:.4} ms",
                richer.estimated_cost_ms,
                column.estimated_cost_ms
            );
        }
    }
}

#[test]
fn replication_fires_on_the_skewed_heterogeneous_cell() {
    // The flagship cell: a hot, sharply skewed table on a two-tier fleet.
    // The replicated search must actually use its new shapes, not merely
    // tolerate them.
    let bundle = bundle();
    let outcome = shard_cell(
        &bundle,
        Fleet::Heterogeneous,
        Workload::ZipfSkew,
        Shape::Replicated,
        1,
    );
    assert!(
        outcome.plan.num_replications() + outcome.plan.num_row_splits() > 0,
        "replicated-shape search used neither replication nor row splits"
    );
}

#[test]
#[ignore]
fn probe_calibration() {
    let bundle = bundle();
    for hot in [96.0, 192.0, 384.0] {
        let mut ts = tables(Workload::NoSkew);
        ts[0] = ts[0].with_pooling_factor(hot).with_zipf_alpha(1.6);
        let t = ShardingTask::new(ts, DEVICES, 192 << 20, 4096).with_devices(DevicePool::two_tier(
            2,
            192 << 20,
            2,
            96 << 20,
            1.5,
            0.25,
        ));
        for shape in SHAPES {
            let o = NeuroShard::new(bundle.clone(), config(shape, 1))
                .shard_with_stats(&t)
                .unwrap();
            let gt = neuroshard::core::evaluate_plan_exact(
                &t,
                &o.plan,
                &neuroshard::sim::GpuSpec::rtx_2080_ti(),
            )
            .unwrap();
            eprintln!(
                "hot={hot} shape={shape:?} est={:.4} gt_max={:.4} col={} row={} rep={}",
                o.estimated_cost_ms,
                gt.max_total_ms(),
                o.plan.num_column_splits(),
                o.plan.num_row_splits(),
                o.plan.num_replications()
            );
        }
    }
}
