//! Golden fixtures for the continual-learning subsystem: a committed
//! fine-tuned checkpoint and the recorded promotion decision that
//! admitted it, both pinned **byte-exactly** in the current (v2)
//! envelope format. Any change to the fine-tuning pipeline, the shadow
//! evaluation or the serialization layer shows up as a fixture diff
//! instead of a silent behavior change.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! NSHARD_WRITE_FIXTURES=1 cargo test --test learn_fixtures
//! ```
//!
//! then commit the updated files.

use std::path::PathBuf;

use neuroshard::cost::{table_features, CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::learn::{
    BufferConfig, FineTuneSettings, FineTuner, LifecycleConfig, ModelLifecycle, Observation,
    ObservationBuffer, ObservationKind, PromotionRecord,
};
use neuroshard::nn::{envelope_from_json, envelope_to_json, Envelope, CHECKPOINT_VERSION};

/// Seed behind every stochastic choice in the committed fixtures.
const SEED: u64 = 0x1EA2;
/// Ground truth in the fixture scenario runs 1.15× the incumbent's
/// predictions — a calibration drift small enough that the fine-tuned
/// candidate still searches inside the conformance band (so the recorded
/// decision is a promotion, the interesting case).
const TRUTH_SCALE: f64 = 1.15;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed fixture {}: {e}", path.display()))
}

/// Writes `content` to the fixture when `NSHARD_WRITE_FIXTURES=1` and
/// returns whether the test should skip its assertions (regeneration mode).
fn maybe_write(name: &str, content: &str) -> bool {
    if std::env::var("NSHARD_WRITE_FIXTURES").as_deref() == Ok("1") {
        std::fs::write(fixture_path(name), content).expect("fixture write");
        return true;
    }
    false
}

/// Self-removing scratch directory for the lifecycle's checkpoint store.
struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "nshard_learn_fixtures_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pool() -> TablePool {
    TablePool::synthetic_dlrm(80, 0xA11CE)
}

fn incumbent() -> CostModelBundle {
    CostModelBundle::pretrain(
        &pool(),
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        0xA11CE,
    )
}

/// A buffer of compute observations whose ground truth runs
/// `TRUTH_SCALE`× the incumbent's predictions — the default stride keeps
/// a held-back validation slice, so the recorded decision exercises both
/// shadow-evaluation gates with real numbers.
fn filled_buffer(incumbent: &CostModelBundle) -> ObservationBuffer {
    let batch = incumbent.batch_size();
    let mut buffer = ObservationBuffer::new(BufferConfig::default());
    for table in pool().tables() {
        let features = vec![table_features(&table.profile(batch), batch)];
        let predicted = incumbent.compute_model().predict(&features);
        buffer.insert(Observation {
            kind: ObservationKind::Compute,
            features,
            predicted_ms: predicted,
            observed_ms: predicted * TRUTH_SCALE,
        });
    }
    assert!(
        buffer.validation_len() > 0,
        "the fixture scenario holds back validation"
    );
    buffer
}

fn finetuned(incumbent: &CostModelBundle, buffer: &ObservationBuffer) -> CostModelBundle {
    FineTuner::fine_tune(
        incumbent,
        &buffer.training_data(),
        &buffer.validation_data(),
        &FineTuneSettings::smoke(),
        SEED,
    )
    .expect("the buffer holds enough compute samples")
}

/// The committed fine-tuned checkpoint re-derives byte-exactly from the
/// committed seed, and the committed bytes load back to the identical
/// bundle (current envelope version) with the comm models — which saw no
/// data — carried over bitwise from the incumbent.
#[test]
fn finetuned_checkpoint_fixture_is_byte_exact() {
    let incumbent = incumbent();
    let bundle = finetuned(&incumbent, &filled_buffer(&incumbent));
    let json = envelope_to_json("finetuned-cost-bundle", "fixture_writer", &bundle);
    if maybe_write("finetuned_bundle_v2.json", &json) {
        return;
    }
    let committed = read_fixture("finetuned_bundle_v2.json");
    assert_eq!(
        json, committed,
        "fine-tuning output drifted from the committed checkpoint; if the \
         pipeline change is intentional, regenerate with NSHARD_WRITE_FIXTURES=1"
    );
    let envelope: Envelope<CostModelBundle> =
        envelope_from_json(&committed).expect("committed fine-tuned bundle loads");
    assert_eq!(envelope.version, CHECKPOINT_VERSION);
    assert_eq!(envelope.payload, bundle);
    // The frozen comm models carried over bitwise: fine-tuning provably
    // touched only what had data.
    assert_eq!(
        envelope.payload.comm_fwd_model(),
        incumbent.comm_fwd_model()
    );
    assert_eq!(
        envelope.payload.comm_bwd_model(),
        incumbent.comm_bwd_model()
    );
}

/// The committed promotion decision re-derives byte-exactly: same
/// candidate, same held-back validation slice, same probe search — same
/// MSEs, same conformance ratio, same verdict.
#[test]
fn promotion_decision_fixture_is_byte_exact() {
    let incumbent = incumbent();
    let buffer = filled_buffer(&incumbent);
    let candidate = finetuned(&incumbent, &buffer);
    let probe = ShardingTask::sample(&pool(), 2, 10..=14, 64, SEED);

    let dir = TempDir::new("decision");
    let mut lifecycle = ModelLifecycle::open(dir.path(), &incumbent, LifecycleConfig::default())
        .expect("store opens");
    let (record, installed) = lifecycle
        .propose(&incumbent, candidate, &buffer.validation_data(), &probe)
        .expect("proposal evaluates");

    let json = envelope_to_json("promotion-record", "fixture_writer", &record);
    if maybe_write("promotion_record_v2.json", &json) {
        return;
    }
    let committed = read_fixture("promotion_record_v2.json");
    assert_eq!(
        json, committed,
        "the shadow evaluation's decision drifted from the committed record; \
         if the gate change is intentional, regenerate with NSHARD_WRITE_FIXTURES=1"
    );
    let envelope: Envelope<PromotionRecord> =
        envelope_from_json(&committed).expect("committed promotion record loads");
    assert_eq!(envelope.version, CHECKPOINT_VERSION);
    assert_eq!(envelope.payload, record);
    // The committed scenario is a promotion — the interesting decision —
    // and the lifecycle installed exactly what it persisted.
    assert!(record.promoted, "fixture scenario must promote: {record:?}");
    assert!(installed.is_some());
    assert_eq!(
        lifecycle.load_active().expect("active checkpoint loads"),
        installed.expect("promotion installs"),
    );
}
