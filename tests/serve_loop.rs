//! Serving-layer integration tests: bit-identical responses under
//! concurrency, deadline handling through a manual clock (no sleeps),
//! queue-full load shedding, store persistence across restarts, and the
//! `/metrics` contract.

use std::sync::Arc;

use neuroshard::cost::{CollectConfig, CostModelBundle, TrainSettings};
use neuroshard::data::{ShardingTask, TableConfig, TableId, TablePool};
use neuroshard::serve::http::HttpRequest;
use neuroshard::serve::server::Routed;
use neuroshard::serve::{http_call, IoMode, ManualClock, ServeConfig, Server, Service};

fn quick_bundle(seed: u64) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(40, 3);
    CostModelBundle::pretrain(
        &pool,
        2,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    )
}

fn task_json() -> String {
    let tables: Vec<TableConfig> = (0..8)
        .map(|i| TableConfig::new(TableId(i), 16 + 16 * (i % 2), 1 << 14, 8.0, 1.05))
        .collect();
    let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
    serde_json::to_string(&task).expect("tasks serialize")
}

fn plan_body() -> String {
    format!("{{\"task\":{}}}", task_json())
}

fn post(service: &Service, path: &str, body: &str) -> Routed {
    service.route(&HttpRequest {
        method: "POST".into(),
        path: path.into(),
        body: body.as_bytes().to_vec(),
    })
}

/// The acceptance-criterion test: 8 threads posting the same `/v1/plan`
/// body over real TCP receive **byte-identical** responses, identical to
/// a subsequent single call. Runs in both I/O modes: the event-driven
/// reactor and the blocking thread-per-connection conformance reference.
fn eight_threads_get_byte_identical_plans(io_mode: IoMode) {
    let config = ServeConfig {
        io_mode,
        ..ServeConfig::smoke()
    };
    let service = Arc::new(Service::new(quick_bundle(7), config).expect("service boots"));
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
    let addr = server.addr().to_string();
    let body = plan_body();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                http_call(&addr, "POST", "/v1/plan", body.as_bytes()).expect("call succeeds")
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (status, _) in &responses {
        assert_eq!(*status, 200);
    }
    let first = &responses[0].1;
    for (_, other) in &responses[1..] {
        assert_eq!(other, first, "concurrent responses must be byte-identical");
    }

    // A later identical request (idempotent adoption) matches too.
    let (status, again) = http_call(&addr, "POST", "/v1/plan", body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(&again, first);

    // Exactly one plan was adopted for the nine identical requests.
    assert_eq!(service.plans().len(), 1);
    server.shutdown();
}

#[test]
fn eight_threads_get_byte_identical_plans_event_mode() {
    eight_threads_get_byte_identical_plans(IoMode::Event);
}

#[test]
fn eight_threads_get_byte_identical_plans_blocking_mode() {
    eight_threads_get_byte_identical_plans(IoMode::Blocking);
}

/// A request whose deadline expired while queued is answered `503`
/// without searching — driven entirely by the manual clock, no sleeps.
#[test]
fn expired_deadline_is_shed_with_503() {
    let clock = Arc::new(ManualClock::new());
    let service = Service::with_clock(
        quick_bundle(7),
        ServeConfig::smoke(),
        Arc::clone(&clock) as Arc<_>,
    )
    .expect("service boots");

    let body = format!("{{\"task\":{},\"deadline_ms\":100}}", task_json());
    let Routed::Queued(slot) = post(&service, "/v1/plan", &body) else {
        panic!("plan request must be queued");
    };
    clock.advance_ms(150); // past the 100 ms deadline while "queued"
    assert!(service.drain_one());
    let response = slot.wait();
    assert_eq!(response.status, 503);
    assert_eq!(response.retry_after_s, Some(1));
    let text = String::from_utf8(response.body).unwrap();
    assert!(text.contains("deadline_expired"), "got: {text}");
}

/// A request with *almost* no budget left degrades to the greedy chain
/// (a fast plan) instead of erroring — the FallbackChain discipline
/// applied to deadlines.
#[test]
fn deadline_pressure_degrades_instead_of_failing() {
    let clock = Arc::new(ManualClock::new());
    let service = Service::with_clock(
        quick_bundle(7),
        ServeConfig::smoke(),
        Arc::clone(&clock) as Arc<_>,
    )
    .expect("service boots");

    let body = format!("{{\"task\":{},\"deadline_ms\":1000}}", task_json());
    let Routed::Queued(slot) = post(&service, "/v1/plan", &body) else {
        panic!("plan request must be queued");
    };
    // 800 ms of queueing leaves 200 ms — below the 250 ms degrade floor.
    clock.advance_ms(800);
    assert!(service.drain_one());
    let response = slot.wait();
    assert_eq!(response.status, 200);
    let text = String::from_utf8(response.body).unwrap();
    assert!(text.contains("\"degraded\":true"), "got: {text}");

    // The same request with full budget is served by the primary search.
    let Routed::Queued(slot) = post(&service, "/v1/plan", &plan_body()) else {
        panic!("plan request must be queued");
    };
    assert!(service.drain_one());
    let response = slot.wait();
    assert_eq!(response.status, 200);
    let text = String::from_utf8(response.body).unwrap();
    assert!(text.contains("\"degraded\":false"), "got: {text}");
}

/// A full admission queue sheds load with `429` + `Retry-After`; the
/// already-admitted jobs still complete.
#[test]
fn full_queue_sheds_load_with_429() {
    let config = ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::smoke()
    };
    let service = Service::with_clock(
        quick_bundle(7),
        config,
        Arc::new(ManualClock::new()) as Arc<_>,
    )
    .expect("service boots");
    let body = plan_body();

    // No workers are draining: two jobs fill the queue.
    let Routed::Queued(first) = post(&service, "/v1/plan", &body) else {
        panic!("first request must be queued");
    };
    let Routed::Queued(second) = post(&service, "/v1/plan", &body) else {
        panic!("second request must be queued");
    };
    // The third is shed immediately.
    let Routed::Inline(rejected) = post(&service, "/v1/plan", &body) else {
        panic!("third request must be rejected inline");
    };
    assert_eq!(rejected.status, 429);
    assert_eq!(rejected.retry_after_s, Some(1));
    assert!(String::from_utf8(rejected.body)
        .unwrap()
        .contains("queue_full"));

    // Draining answers the admitted jobs; the queue never lost them.
    assert!(service.drain_one());
    assert!(service.drain_one());
    assert!(!service.drain_one());
    assert_eq!(first.wait().status, 200);
    assert_eq!(second.wait().status, 200);

    let metrics = service.render_metrics();
    assert!(
        metrics.contains("nshard_serve_rejected_total{reason=\"queue_full\"} 1"),
        "got: {metrics}"
    );
}

/// With the response cache enabled, an identical request is answered
/// inline at admission — byte-identical to the worker-path original —
/// while distinct bodies still queue.
#[test]
fn response_cache_answers_identical_requests_inline() {
    let config = ServeConfig {
        response_cache_entries: 8,
        ..ServeConfig::smoke()
    };
    let service = Service::with_clock(
        quick_bundle(7),
        config,
        Arc::new(ManualClock::new()) as Arc<_>,
    )
    .expect("service boots");
    let body = plan_body();

    // First request runs the full chain through the queue.
    let Routed::Queued(slot) = post(&service, "/v1/plan", &body) else {
        panic!("first request must queue");
    };
    assert!(service.drain_one());
    let original = slot.wait();
    assert_eq!(original.status, 200);

    // The identical twin is served inline, without queueing.
    let Routed::Inline(cached) = post(&service, "/v1/plan", &body) else {
        panic!("identical request must be served from the cache inline");
    };
    assert_eq!(cached, original, "cache hits are byte-identical");
    assert!(!service.drain_one(), "no job was queued for the hit");

    // A different body misses and queues as usual.
    let other = format!("{{\"task\":{},\"deadline_ms\":9000}}", task_json());
    let Routed::Queued(slot) = post(&service, "/v1/plan", &other) else {
        panic!("distinct request must queue");
    };
    assert!(service.drain_one());
    assert_eq!(slot.wait().status, 200);

    let metrics = service.render_metrics();
    assert!(
        metrics.contains("nshard_serve_response_cache_hits_total 1"),
        "got: {metrics}"
    );
}

/// Adopted plans survive a daemon restart (disk-backed store) and are
/// retrievable over `GET /v1/plans/{id}` with full provenance. Runs in
/// both I/O modes.
fn plan_store_survives_restart(io_mode: IoMode) {
    let dir = std::env::temp_dir().join(format!(
        "nshard_serve_restart_{}_{io_mode:?}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServeConfig {
        store_dir: Some(dir.clone()),
        io_mode,
        ..ServeConfig::smoke()
    };

    let id = {
        let service =
            Arc::new(Service::new(quick_bundle(7), config.clone()).expect("service boots"));
        let server = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
        let (status, body) = http_call(
            &server.addr().to_string(),
            "POST",
            "/v1/plan",
            plan_body().as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200);
        let id = body
            .split("\"id\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("response carries an id")
            .to_string();
        server.shutdown();
        id
    };

    // A "restarted daemon" (fresh service, same directory) is warm.
    let service = Arc::new(Service::new(quick_bundle(7), config).expect("service reboots"));
    assert_eq!(service.plans().len(), 1);
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
    let (status, body) = http_call(
        &server.addr().to_string(),
        "GET",
        &format!("/v1/plans/{id}"),
        b"",
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains(&id));
    assert!(body.contains("\"provenance\""));

    // Replanning warm-starts from the restored incumbent.
    let (status, body) = http_call(
        &server.addr().to_string(),
        "POST",
        "/v1/replan",
        plan_body().as_bytes(),
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"incremental\":true"), "got: {body}");
    assert!(body.contains("\"migration_bytes\":0"), "got: {body}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_store_survives_restart_event_mode() {
    plan_store_survives_restart(IoMode::Event);
}

#[test]
fn plan_store_survives_restart_blocking_mode() {
    plan_store_survives_restart(IoMode::Blocking);
}

/// `/health` and `/metrics` expose the daemon's core observability
/// contract: liveness facts, request counters, latency quantiles, and
/// prediction-cache statistics. Runs in both I/O modes.
fn health_and_metrics_expose_the_core_counters(io_mode: IoMode) {
    let config = ServeConfig {
        io_mode,
        ..ServeConfig::smoke()
    };
    let service = Arc::new(Service::new(quick_bundle(7), config).expect("service boots"));
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
    let addr = server.addr().to_string();

    let (status, health) = http_call(&addr, "GET", "/health", b"").unwrap();
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""));
    assert!(health.contains("\"queue_capacity\":64"));

    let (status, _) = http_call(&addr, "POST", "/v1/plan", plan_body().as_bytes()).unwrap();
    assert_eq!(status, 200);

    let (status, metrics) = http_call(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    for needle in [
        "nshard_serve_requests_total{endpoint=\"plan\",code=\"200\"} 1",
        "nshard_serve_queue_depth 0",
        "nshard_serve_search_latency_ms{quantile=\"0.99\"}",
        "nshard_serve_search_latency_ms_count 1",
        "nshard_serve_cache_hits_total",
        "nshard_serve_cache_misses_total",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    // Unknown routes 404 with a JSON error body.
    let (status, body) = http_call(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("not_found"));
    server.shutdown();
}

#[test]
fn health_and_metrics_expose_the_core_counters_event_mode() {
    health_and_metrics_expose_the_core_counters(IoMode::Event);
}

#[test]
fn health_and_metrics_expose_the_core_counters_blocking_mode() {
    health_and_metrics_expose_the_core_counters(IoMode::Blocking);
}
