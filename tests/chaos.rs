//! Chaos harness: the planner under injected faults.
//!
//! Sweeps seeded fault scenarios — stragglers, degraded links, memory
//! pressure, transient measurement failures — against the fallback chain
//! and asserts the resilience contract:
//!
//! * the planner never panics,
//! * it returns either a plan that verifies under the faulted cluster or a
//!   typed [`ResilientError`] with full provenance attribution,
//! * every outcome is bit-for-bit deterministic per scenario seed.

use neuroshard::baselines::{DimGreedy, SizeGreedy};
use neuroshard::data::{ShardingTask, TablePool};
use neuroshard::resilient::{
    FallbackChain, FaultPlan, FaultyCluster, PlanSource, ProvenanceEvent, ResilientError,
    ResilientOutcome, RetryPolicy,
};
use neuroshard::sim::{Cluster, GpuSpec};

const SCENARIOS: u64 = 24;
const DEVICES: usize = 4;

/// A faulted ground-truth cluster for `task` under `faults`. When the task
/// describes a heterogeneous fleet the cluster inherits its per-device
/// memory, compute and interconnect profiles, so faults compose with
/// heterogeneity.
fn faulty_cluster(task: &ShardingTask, faults: FaultPlan) -> FaultyCluster {
    FaultyCluster::new(
        neuroshard::core::cluster_for(task, &GpuSpec::rtx_2080_ti()),
        faults,
    )
}

/// Builds the chain under test: greedy primary, greedy fallback, verifier
/// backed by the faulted cluster (so memory checks see *effective* budgets
/// and measurements can fail transiently).
fn chain_for(task: &ShardingTask, faults: FaultPlan, seed: u64) -> FallbackChain {
    let faulty = faulty_cluster(task, faults);
    FallbackChain::new(Box::new(SizeGreedy))
        .with_fallback(Box::new(DimGreedy))
        .with_retry(RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 10,
        })
        .with_seed(seed)
        .with_verifier(Box::new(move |task, plan, attempt_seed| {
            faulty
                .evaluate(&plan.device_profiles(task.batch_size()), attempt_seed)
                .map(|_| ())
        }))
}

/// The baseline task for `seed`: paper-default 4 GB budget.
fn base_task(seed: u64) -> ShardingTask {
    let pool = TablePool::synthetic_dlrm(120, seed);
    ShardingTask::sample(&pool, DEVICES, 12..=30, 64, seed)
}

/// The sweep's task for `seed`. Every third scenario gets a tight budget
/// (15% headroom over perfect balance) so memory-pressure faults actually
/// bite and the degradation machinery fires.
fn task_for(seed: u64) -> ShardingTask {
    let task = base_task(seed);
    if seed % 3 == 2 {
        let tight = task.total_bytes() * 115 / (100 * DEVICES as u64);
        task.with_mem_budget(tight)
    } else {
        task
    }
}

/// Runs one seeded scenario end to end.
fn run_scenario(seed: u64, conservative: bool) -> Result<ResilientOutcome, ResilientError> {
    let faults = FaultPlan::sampled(seed, DEVICES);
    let task = if conservative {
        // A budget-aware planner starts from the roomy default budget and
        // targets the squeezed (effective) one.
        let task = base_task(seed);
        let min_budget = (0..DEVICES)
            .map(|d| faults.effective_budget_bytes(d, task.mem_budget_bytes()))
            .min()
            .unwrap();
        task.with_mem_budget(min_budget)
    } else {
        task_for(seed)
    };
    chain_for(&task, faults, seed).shard_with_provenance(&task)
}

#[test]
fn sweep_never_panics_and_outcomes_are_typed() {
    let mut plans = 0usize;
    let mut typed_errors = 0usize;
    for seed in 0..SCENARIOS {
        match run_scenario(seed, false) {
            Ok(outcome) => {
                plans += 1;
                // The accepted plan verifies under the *faulted* cluster.
                let task = task_for(seed);
                let faulty = faulty_cluster(&task, FaultPlan::sampled(seed, DEVICES));
                faulty
                    .check_memory(&outcome.plan.device_profiles(task.batch_size()))
                    .expect("accepted plan must fit the effective budgets");
            }
            Err(err) => {
                typed_errors += 1;
                // Attribution: the error names what was attempted and why
                // each stage failed.
                assert!(
                    !err.provenance.events.is_empty(),
                    "seed {seed}: error without provenance"
                );
                assert!(err
                    .provenance
                    .events
                    .iter()
                    .any(|e| matches!(e, ProvenanceEvent::Attempt { .. })));
            }
        }
    }
    assert_eq!(plans + typed_errors, SCENARIOS as usize);
    // The sweep must actually produce plans in the common case.
    assert!(
        plans >= SCENARIOS as usize / 2,
        "only {plans}/{SCENARIOS} scenarios produced a plan"
    );
}

#[test]
fn sweep_is_bit_for_bit_deterministic() {
    for seed in 0..SCENARIOS {
        let a = run_scenario(seed, false);
        let b = run_scenario(seed, false);
        assert_eq!(a, b, "scenario {seed} is not deterministic");
    }
}

#[test]
fn conservative_planning_mostly_survives_faults() {
    let mut plans = 0usize;
    for seed in 0..SCENARIOS {
        if run_scenario(seed, true).is_ok() {
            plans += 1;
        }
    }
    // Budget-aware planning should survive the large majority of fault
    // scenarios (transient-failure storms may still exhaust retries).
    assert!(
        plans * 4 >= SCENARIOS as usize * 3,
        "only {plans}/{SCENARIOS} conservative scenarios produced a plan"
    );
}

#[test]
fn sweep_exercises_the_degradation_machinery() {
    let mut saw_retry = false;
    let mut saw_degraded = false;
    for seed in 0..SCENARIOS {
        let provenance = match run_scenario(seed, false) {
            Ok(outcome) => outcome.provenance,
            Err(err) => *err.provenance,
        };
        saw_retry |= provenance
            .events
            .iter()
            .any(|e| matches!(e, ProvenanceEvent::TransientRetry { .. }));
        saw_degraded |= provenance.is_degraded()
            || provenance.events.iter().any(|e| {
                matches!(
                    e,
                    ProvenanceEvent::VerifyFailed { .. }
                        | ProvenanceEvent::Repaired { .. }
                        | ProvenanceEvent::RepairFailed { .. }
                        | ProvenanceEvent::SearchFailed { .. }
                )
            });
    }
    assert!(saw_retry, "no scenario exercised transient retries");
    assert!(saw_degraded, "no scenario exercised a downgrade");
}

/// The acceptance-criteria integration test: a plan the simulator rejects
/// with out-of-memory (a "-" cell of Table 1: a memory-oblivious greedy
/// baseline at large dimensions) is converted into a feasible plan by the
/// repair engine inside the chain.
#[test]
fn oom_greedy_plan_is_repaired_into_feasibility() {
    use neuroshard::baselines::ShardingAlgorithm;
    use neuroshard::data::{TableConfig, TableId};
    use neuroshard::resilient::{RepairConfig, RepairEngine};
    use neuroshard::sim::SimError;

    // One 6 GB table (plus small companions) on 4 GB devices: no
    // table-wise placement fits, so every memory-oblivious baseline emits
    // an OOM plan — the "-" cell.
    let mut tables = vec![TableConfig::new(TableId(0), 192, 1 << 23, 20.0, 1.0)];
    for i in 1..6 {
        tables.push(TableConfig::new(TableId(i), 16, 1 << 18, 8.0, 1.0));
    }
    let task = ShardingTask::new(tables, 2, 4 * 1024 * 1024 * 1024, 65_536);

    let oom_plan = DimGreedy.shard(&task).expect("search itself succeeds");
    let cluster = Cluster::new(
        GpuSpec::rtx_2080_ti().with_mem_budget(task.mem_budget_bytes()),
        task.num_devices(),
        task.batch_size(),
    );
    let err = cluster
        .check_memory(&oom_plan.device_profiles(task.batch_size()))
        .unwrap_err();
    assert!(matches!(err, SimError::OutOfMemory { .. }));

    // Direct repair: the previously-OOM plan becomes feasible.
    let report = RepairEngine::new(RepairConfig::default())
        .repair(&task, &oom_plan)
        .expect("repair must salvage the plan");
    assert!(report.plan.validate(&task).is_ok());
    assert!(report.initial_overflow_bytes > 0);
    cluster
        .check_memory(&report.plan.device_profiles(task.batch_size()))
        .expect("repaired plan fits");

    // And through the chain: the same task yields a verified plan with
    // repair recorded in its provenance.
    let chain = FallbackChain::new(Box::new(DimGreedy));
    let outcome = chain.shard_with_provenance(&task).unwrap();
    assert!(matches!(
        outcome.provenance.source,
        PlanSource::Repaired { .. }
    ));
    assert!(outcome.plan.validate(&task).is_ok());
}

// ---------------------------------------------------------------------------
// Heterogeneity chaos: node-class faults on two-tier fleets.
// ---------------------------------------------------------------------------

use neuroshard::data::DevicePool;
use neuroshard::sim::Fault;

/// A two-node fleet: node 0 holds two fast/large devices, node 1 two
/// slower devices with half the memory, joined by a 2× slower inter-node
/// fabric.
fn two_tier_pool() -> DevicePool {
    DevicePool::two_tier(2, 1 << 30, 2, 512 << 20, 1.5, 0.5)
}

/// A heterogeneous task for `seed`, sized so the small node's budget is a
/// real constraint.
fn hetero_task(seed: u64) -> ShardingTask {
    let pool = TablePool::synthetic_dlrm(120, seed);
    ShardingTask::sample(&pool, DEVICES, 10..=18, 64, seed).with_devices(two_tier_pool())
}

/// A whole node class slowing down and its links degrading hits only the
/// devices of that node: the other node's ground-truth costs are
/// unchanged bit for bit.
#[test]
fn node_faults_bite_only_the_faulted_node() {
    let task = hetero_task(5);
    let plan = neuroshard::resilient::size_balanced_plan(
        &task,
        neuroshard::resilient::RepairConfig::default(),
    )
    .expect("task is feasible");
    let profiles = plan.device_profiles(task.batch_size());

    let clean = faulty_cluster(&task, FaultPlan::new(0))
        .evaluate_exact(&profiles)
        .unwrap();
    let faulted = faulty_cluster(
        &task,
        FaultPlan::new(0)
            .with_fault(Fault::SlowNodeClass {
                node: 1,
                slowdown: 3.0,
            })
            .with_fault(Fault::NodeLinkDegradation {
                node: 1,
                bandwidth_scale: 0.25,
            }),
    )
    .evaluate_exact(&profiles)
    .unwrap();

    for d in 0..DEVICES {
        let clean_d = &clean.devices()[d];
        let fault_d = &faulted.devices()[d];
        if d < 2 {
            // Node 0: compute untouched (asymmetric link cuts still slow
            // its *conversations with* node 1, so only compute is exactly
            // preserved).
            assert_eq!(
                clean_d.compute_ms().to_bits(),
                fault_d.compute_ms().to_bits(),
                "device {d} on the healthy node changed compute cost"
            );
        } else {
            assert!(
                fault_d.compute_ms() > clean_d.compute_ms(),
                "device {d} on the slow node must compute slower"
            );
            assert!(
                fault_d.comm_ms() > clean_d.comm_ms(),
                "device {d} behind the bad links must communicate slower"
            );
        }
    }
}

/// RepairEngine recovers a node-skewed plan on a heterogeneous fleet to
/// feasibility under the *per-device* memory profiles, not merely the
/// aggregate budget.
#[test]
fn repair_respects_device_profiles_under_node_faults() {
    use neuroshard::resilient::{RepairConfig, RepairEngine};

    use neuroshard::data::{TableConfig, TableId};

    // Six 128 MB tables (768 MB total) on the two-tier fleet: well within
    // the 3 GB aggregate, but an overload for any single small device.
    let tables: Vec<TableConfig> = (0..6)
        .map(|i| TableConfig::new(TableId(i), 64, 1 << 19, 8.0, 1.0))
        .collect();
    let task =
        ShardingTask::new(tables.clone(), DEVICES, 1 << 30, 64).with_devices(two_tier_pool());
    // Adversarial start: everything piled onto device 2 — a *small*
    // device, so the pile violates its profile long before the fleet
    // aggregate.
    let device_of = vec![2usize; tables.len()];
    let plan = neuroshard::core::ShardingPlan::new(vec![], tables, device_of, DEVICES).unwrap();
    assert!(
        plan.validate(&task).is_err(),
        "the pile must start infeasible"
    );

    let report = RepairEngine::new(RepairConfig::default())
        .repair(&task, &plan)
        .expect("repair must salvage the pile");
    report
        .plan
        .validate(&task)
        .expect("repaired plan is feasible");
    for (d, bytes) in report.plan.device_bytes().into_iter().enumerate() {
        assert!(
            bytes <= task.budget_of(d),
            "device {d} holds {bytes} bytes over its profile's {} byte budget",
            task.budget_of(d)
        );
    }
}

/// The full chain under combined heterogeneity faults: for every seeded
/// scenario the planner returns either a plan respecting each device's
/// memory profile under the faulted cluster, or a typed error with
/// provenance — and the outcome is deterministic.
#[test]
fn hetero_fault_sweep_recovers_profile_respecting_plans() {
    let mut plans = 0usize;
    for seed in 0..8u64 {
        let task = hetero_task(seed);
        let faults = FaultPlan::new(seed)
            .with_fault(Fault::SlowNodeClass {
                node: 1,
                slowdown: 2.0 + (seed % 3) as f64,
            })
            .with_fault(Fault::NodeLinkDegradation {
                node: 1,
                bandwidth_scale: 0.2 + 0.1 * (seed % 4) as f64,
            });
        let run = || chain_for(&task, faults.clone(), seed).shard_with_provenance(&task);
        let outcome = run();
        assert_eq!(
            outcome,
            run(),
            "hetero scenario {seed} is not deterministic"
        );
        match outcome {
            Ok(outcome) => {
                plans += 1;
                for (d, bytes) in outcome.plan.device_bytes().into_iter().enumerate() {
                    assert!(
                        bytes <= task.budget_of(d),
                        "seed {seed}: device {d} over its per-device budget"
                    );
                }
            }
            Err(err) => {
                assert!(
                    !err.provenance.events.is_empty(),
                    "seed {seed}: error without provenance"
                );
            }
        }
    }
    assert!(
        plans >= 4,
        "only {plans}/8 heterogeneous scenarios produced a plan"
    );
}
