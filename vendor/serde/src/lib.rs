//! Offline vendored stand-in for `serde`.
//!
//! The real serde's visitor-based architecture exists to decouple data
//! formats from data structures at zero cost. This workspace only ever
//! serializes to and from JSON (via the sibling vendored `serde_json`), so
//! this stand-in collapses the architecture into a concrete value tree:
//!
//! * [`Serialize`] lowers a value into a [`value::Value`] tree,
//! * [`Deserialize`] rebuilds a value from a [`value::Value`] tree,
//! * `#[derive(Serialize, Deserialize)]` (from the vendored
//!   `serde_derive`) generates both impls for structs and unit enums,
//!   honouring `#[serde(try_from = "...")]`.
//!
//! Field order is preserved, so serialization is deterministic.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing value tree all (de)serialization flows through.

    /// A JSON-shaped value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Signed integer (negative JSON numbers without a fraction).
        Int(i64),
        /// Unsigned integer (non-negative JSON numbers without a fraction).
        UInt(u64),
        /// Floating-point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object; insertion order is preserved.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is a map.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        /// The array elements, if this is a sequence.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }

        /// The string, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Short description of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) => "int",
                Value::UInt(_) => "uint",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }
    }
}

pub mod de {
    //! Deserialization error type.

    /// Error produced while rebuilding a value from the value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error(String);

    impl Error {
        /// Creates an error from any displayable message.
        pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    impl std::error::Error for Error {}

    /// Marker for deserializable types that own all their data. The vendored
    /// [`Deserialize`](crate::Deserialize) trait has no borrowed variants, so
    /// every deserializable type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

use de::Error;
use value::Value;

/// Types that can be lowered into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from the tree.
    ///
    /// # Errors
    ///
    /// [`Error`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: looks up and deserializes a struct field.
///
/// # Errors
///
/// [`Error`] when the key is missing or its value has the wrong shape.
pub fn __field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

/// Derive-macro helper for `#[serde(default)]` fields: like [`__field`],
/// but an absent key falls back to `default()` instead of erroring, so
/// structs can grow fields without invalidating previously serialized data.
///
/// # Errors
///
/// [`Error`] when the key is present but its value has the wrong shape.
pub fn __field_or<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Ok(default()),
    }
}

fn wrong_kind(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(wrong_kind("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(wrong_kind("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0
                        && *f >= i64::MIN as f64
                        && *f <= i64::MAX as f64 => *f as i64,
                    other => return Err(wrong_kind("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(wrong_kind("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(wrong_kind("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(wrong_kind("single-character string", other)),
        }
    }
}

// ---- composite impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(wrong_kind("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| wrong_kind("array (tuple)", v))?;
                let expected = [$($n),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, found array of {}", seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization of hash maps is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(wrong_kind("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(wrong_kind("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn composites_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u32, -2i64, 0.5f64);
        assert_eq!(<(u32, i64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected unsigned integer"));
    }
}
