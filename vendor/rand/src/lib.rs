//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the external `rand` dependency is replaced (via
//! `[patch.crates-io]`) with this small, self-contained implementation of
//! the API subset the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a seeded, deterministic generator
//!   (splitmix64-initialised xoshiro256**),
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`].
//!
//! The streams differ numerically from the real `rand` crate (no
//! compatibility is promised), but every property the workspace relies on
//! holds: determinism given a seed, uniformity, and independence between
//! draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; floats are uniform in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed array.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

macro_rules! impl_standard_narrow {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_narrow!(u8, u16, i8, i16, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)`, 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)`, 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sampling over `[0, bound)` for unsigned 64-bit bounds, using
/// Lemire's multiply-shift with rejection to avoid modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    // Rejection zone: values below `threshold` would be biased.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any value is uniform.
                    return <$t as StandardSample>::sample_standard(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A seeded xoshiro256** generator: fast, high-quality, and fully
    /// deterministic. Stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per Blackman & Vigna's
            // recommendation for initialising xoshiro state.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self::from_u64(u64::from_le_bytes(first))
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

/// Distribution support used by `rand_distr`.
pub mod distr {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

pub use distr::Distribution;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
