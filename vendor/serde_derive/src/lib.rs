//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored serde stand-in.
//!
//! Implemented with a hand-rolled token parser (no `syn`/`quote`, which are
//! unavailable in hermetic builds). Supports the shapes this workspace
//! uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums, externally tagged like real serde: unit variants serialize as
//!   strings (`"Variant"`), struct variants as
//!   `{"Variant": {field: ...}}`, newtype variants as
//!   `{"Variant": value}` and tuple variants as `{"Variant": [..]}`,
//! * the container attribute `#[serde(try_from = "Type")]` on
//!   `Deserialize`,
//! * the field attributes `#[serde(default)]` and
//!   `#[serde(default = "path")]` on named fields: an absent key falls
//!   back to `Default::default()` (resp. `path()`) instead of erroring,
//!   so structs can grow fields without invalidating serialized data.
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Seq(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&item.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;

    if let Some(repr) = &item.try_from {
        // #[serde(try_from = "Repr")]: deserialize the repr, then convert.
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                     let repr: {repr} = ::serde::Deserialize::from_value(v)?;\n\
                     <{name} as ::std::convert::TryFrom<{repr}>>::try_from(repr)\n\
                         .map_err(|e| ::serde::de::Error::custom(::std::format!(\"{{e}}\")))\n\
                 }}\n\
             }}"
        )
        .parse()
        .expect("generated try_from Deserialize impl parses");
    }

    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "map")).collect();
            format!(
                "let map = v.as_map().ok_or_else(|| ::serde::de::Error::custom(\
                     ::std::format!(\"expected object for struct {name}, found {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| ::serde::de::Error::custom(\
                     ::std::format!(\"expected array for struct {name}, found {{}}\", v.kind())))?;\n\
                 if seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"expected {n} elements, found {{}}\", seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---- token parsing ---------------------------------------------------------

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// The fallback of a `#[serde(default)]`-style field attribute.
enum FieldDefault {
    /// `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

/// One named field, with its optional default fallback.
struct Field {
    name: String,
    default: Option<FieldDefault>,
}

/// The payload shape of one enum variant.
enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

struct Item {
    name: String,
    shape: Shape,
    try_from: Option<String>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;

    // Container attributes: `#[...]`, possibly `#[serde(try_from = "Ty")]`.
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if let Some(t) = parse_serde_try_from(g.stream()) {
                try_from = Some(t);
            }
        }
        i += 2;
    }

    // Visibility: `pub` optionally followed by `(...)`.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found `{other}`"),
    };
    i += 1;

    if matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&name, g.stream()))
            }
            other => panic!("serde derive: unsupported enum body for `{name}`: {other:?}"),
        },
        kw => panic!("serde derive: expected `struct` or `enum`, found `{kw}`"),
    };

    Item {
        name,
        shape,
        try_from,
    }
}

/// Extracts `Ty` from an attribute body shaped like `serde(try_from = "Ty")`.
fn parse_serde_try_from(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)] if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            for w in inner.windows(3) {
                if let [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)] = w {
                    if key.to_string() == "try_from" && eq.as_char() == '=' {
                        return Some(lit.to_string().trim_matches('"').to_string());
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Splits a token stream on top-level commas (commas inside `<...>` or any
/// delimiter group do not split).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("chunks is never empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Fields of a named-field struct body, with their default fallbacks.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    split_top_level_commas(body)
        .into_iter()
        .map(|chunk| {
            let default = parse_field_default(&chunk);
            let mut j = skip_attrs_and_vis(&chunk);
            match &chunk[j] {
                TokenTree::Ident(id) => {
                    let field = id.to_string();
                    j += 1;
                    match chunk.get(j) {
                        Some(TokenTree::Punct(p)) if p.as_char() == ':' => Field {
                            name: field,
                            default,
                        },
                        other => panic!(
                            "serde derive: expected `:` after field `{field}`, found {other:?}"
                        ),
                    }
                }
                other => panic!("serde derive: expected field name, found `{other}`"),
            }
        })
        .collect()
}

/// Extracts `#[serde(default)]` / `#[serde(default = "path")]` from a
/// field's leading attributes, if present.
fn parse_field_default(chunk: &[TokenTree]) -> Option<FieldDefault> {
    let mut j = 0;
    while j + 1 < chunk.len() {
        let TokenTree::Punct(p) = &chunk[j] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        if let TokenTree::Group(attr) = &chunk[j + 1] {
            let tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
            if let [TokenTree::Ident(id), TokenTree::Group(args)] = tokens.as_slice() {
                if id.to_string() == "serde" {
                    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
                    match inner.as_slice() {
                        [TokenTree::Ident(key)] if key.to_string() == "default" => {
                            return Some(FieldDefault::Std);
                        }
                        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                            if key.to_string() == "default" && eq.as_char() == '=' =>
                        {
                            return Some(FieldDefault::Path(
                                lit.to_string().trim_matches('"').to_string(),
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
        j += 2;
    }
    None
}

/// The initializer expression for one named field in a `from_value` body:
/// required fields error when absent, defaulted fields fall back.
fn field_init(f: &Field, map_var: &str) -> String {
    let name = &f.name;
    match &f.default {
        None => format!("{name}: ::serde::__field({map_var}, \"{name}\")?"),
        Some(FieldDefault::Std) => format!(
            "{name}: ::serde::__field_or({map_var}, \"{name}\", \
             ::std::default::Default::default)?"
        ),
        Some(FieldDefault::Path(path)) => {
            format!("{name}: ::serde::__field_or({map_var}, \"{name}\", {path})?")
        }
    }
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    split_top_level_commas(body).len()
}

/// Variants of an enum body: unit, struct-like (named fields) or tuple.
fn parse_variants(enum_name: &str, body: TokenStream) -> Vec<Variant> {
    split_top_level_commas(body)
        .into_iter()
        .map(|chunk| {
            let j = skip_attrs_and_vis(&chunk);
            let TokenTree::Ident(id) = &chunk[j] else {
                panic!("serde derive: expected variant name in enum `{enum_name}`");
            };
            let name = id.to_string();
            let kind = match chunk.get(j + 1) {
                None => VariantKind::Unit,
                // `Variant = 3` discriminants behave like unit variants.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                other => panic!(
                    "serde derive: unsupported payload for variant `{name}` of enum \
                     `{enum_name}`: {other:?}"
                ),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---- enum codegen ----------------------------------------------------------

/// One `match self` arm lowering a variant into an externally tagged value.
fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::value::Value::Str(::std::string::String::from(\"{v}\"))"
        ),
        VariantKind::Named(fields) => {
            let bindings = fields
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>()
                .join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {bindings} }} => ::serde::value::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::value::Value::Map(::std::vec![{}]))])",
                entries.join(", ")
            )
        }
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{v}(x0) => ::serde::value::Value::Map(::std::vec![\
                 (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(x0))])"
        ),
        VariantKind::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::value::Value::Map(::std::vec![\
                     (::std::string::String::from(\"{v}\"), \
                      ::serde::value::Value::Seq(::std::vec![{}]))])",
                bindings.join(", "),
                items.join(", ")
            )
        }
    }
}

/// The `from_value` body of an enum: a bare string resolves unit variants;
/// a single-entry object dispatches on the tag to rebuild the payload.
fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v})",
                v = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|variant| {
            let v = &variant.name;
            match &variant.kind {
                VariantKind::Unit => None,
                VariantKind::Named(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| field_init(f, "fields")).collect();
                    Some(format!(
                        "\"{v}\" => {{\n\
                             let fields = payload.as_map().ok_or_else(|| \
                                 ::serde::de::Error::custom(::std::format!(\
                                     \"expected object for variant `{v}` of enum {name}, \
                                      found {{}}\", payload.kind())))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    ))
                }
                VariantKind::Tuple(1) => Some(format!(
                    "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(payload)?))"
                )),
                VariantKind::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{v}\" => {{\n\
                             let seq = payload.as_seq().ok_or_else(|| \
                                 ::serde::de::Error::custom(::std::format!(\
                                     \"expected array for variant `{v}` of enum {name}, \
                                      found {{}}\", payload.kind())))?;\n\
                             if seq.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                                     ::std::format!(\"expected {n} elements for variant `{v}`, \
                                                     found {{}}\", seq.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                         }}",
                        items.join(", ")
                    ))
                }
            }
        })
        .collect();

    let unit_match = format!(
        "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
             return match s {{ {} other => ::std::result::Result::Err(\
                 ::serde::de::Error::custom(::std::format!(\
                     \"unknown variant `{{other}}` of enum {name}\"))) }};\n\
         }}",
        unit_arms
            .iter()
            .map(|a| format!("{a},"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    format!(
        "{unit_match}\n\
         let entries = v.as_map().ok_or_else(|| ::serde::de::Error::custom(\
             ::std::format!(\"expected string or object for enum {name}, found {{}}\", \
                            v.kind())))?;\n\
         if entries.len() != 1 {{\n\
             return ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"expected single-key object for enum {name}, found {{}} keys\", \
                                entries.len())));\n\
         }}\n\
         let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
         match tag.as_str() {{ {} other => ::std::result::Result::Err(\
             ::serde::de::Error::custom(::std::format!(\
                 \"unknown variant `{{other}}` of enum {name}\"))) }}",
        tagged_arms
            .iter()
            .map(|a| format!("{a},"))
            .collect::<Vec<_>>()
            .join(" ")
    )
}

/// Index of the first token after leading attributes and visibility.
fn skip_attrs_and_vis(chunk: &[TokenTree]) -> usize {
    let mut j = 0;
    while j + 1 < chunk.len() {
        let TokenTree::Punct(p) = &chunk[j] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        j += 2; // `#` + `[...]`
    }
    if matches!(&chunk[j], TokenTree::Ident(id) if id.to_string() == "pub") {
        j += 1;
        if matches!(&chunk[j], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            j += 1;
        }
    }
    j
}
