//! Offline vendored stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] tree to JSON text and parses
//! JSON text back. Floats are printed with Rust's shortest-roundtrip
//! `Display`, so `to_string` → `from_str` reproduces every finite `f64`
//! bit-for-bit.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Currently infallible for finite data; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Preserve floatness: `2.0` prints as "2" via Display; re-add ".0" so
    // the value parses back as a float, matching serde_json.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
    }

    #[test]
    fn float_bits_roundtrip() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123456.789e12, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = String::from("line\none \"two\" \\ tab\t\u{0007} ünïcödé");
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn composite_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_printing_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
