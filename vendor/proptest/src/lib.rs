//! Offline vendored stand-in for `proptest`.
//!
//! Runs each property over a fixed number of deterministically seeded
//! random cases (no shrinking). The API subset this workspace uses is
//! supported: the `proptest!` macro with both `name in strategy` and
//! `name: Type` argument forms, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range strategies, tuple strategies, `prop_map`,
//! `proptest::collection::vec`, `any::<T>()` and `Just`.
//!
//! Failures report the case number and generated-input summary; re-running
//! the same binary reproduces them exactly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases per property (matching spirit, not count, of
/// proptest's 256 default — kept smaller because there is no shrinking).
pub const DEFAULT_CASES: u32 = 64;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The generated inputs were rejected by `prop_assume!`; the case is
    /// skipped without counting against the property.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Finite floats over a wide range (proptest also avoids NaN by
    /// default).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = rng.random::<f64>() * 2.0 - 1.0;
        let exp = rng.random_range(-200i32..=200);
        mantissa * f64::powi(10.0, exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = rng.random::<f32>() * 2.0 - 1.0;
        let exp = rng.random_range(-30i32..=30);
        mantissa * f32::powi(10.0, exp)
    }
}

/// The strategy generating arbitrary values of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`]: an exact `usize`, a
    /// half-open range, or an inclusive range (mirroring proptest's
    /// `Into<SizeRange>` inputs).
    pub trait IntoSizeRange {
        /// Draws a length from the specification.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude::*`.

    /// Re-export so `prelude::*` users can name the crate's modules.
    pub use crate as proptest;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, Strategy, TestCaseError,
    };
}

/// Drives one property: `cases` deterministic random cases, each produced
/// from a seed derived from `name`. Rejected cases (via `prop_assume!`) are
/// retried with fresh inputs, up to a global cap.
pub fn run_cases<F>(name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut rejected = 0u32;
    let mut executed = 0u32;
    let mut attempt = 0u64;
    while executed < cases {
        let mut rng = StdRng::seed_from_u64(base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < cases * 16,
                    "property `{name}`: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` falsified at case {executed} (attempt {attempt}): {msg}\n\
                     (vendored proptest: deterministic seeds, rerun reproduces this failure)"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Defines property tests. Supports `arg in strategy` and `arg: Type`
/// parameter forms, mixed freely.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), $crate::DEFAULT_CASES, |__proptest_rng| {
                    $crate::__bind_args!(__proptest_rng, $($args)*);
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    __result
                });
            }
        )+
    };
}

/// Internal: binds `proptest!` arguments by generating values.
#[doc(hidden)]
#[macro_export]
macro_rules! __bind_args {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__bind_args!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__bind_args!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its generated inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn run_cases_is_deterministic() {
        let mut first = Vec::new();
        crate::run_cases("det", 5, |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", 5, |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_context() {
        crate::run_cases("boom", 3, |_rng| Err(TestCaseError::fail("nope")));
    }

    proptest! {
        #[test]
        fn macro_binds_both_arg_forms(x in 1u32..10, flag: bool, v in proptest::collection::vec(0u8..4, 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(v.len() < 5);
            for e in &v {
                prop_assert!(*e < 4);
            }
        }

        #[test]
        fn tuples_and_prop_map_compose(pair in (0u32..4, 10u32..14).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..18).contains(&pair));
        }
    }
}
