//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use. Instead of
//! criterion's statistical sampling, each benchmark closure is timed over a
//! small fixed number of iterations and the mean wall time is printed —
//! enough to smoke-test the benches and get a rough hot-path number in
//! hermetic environments.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Number of timed iterations per benchmark.
const ITERS: u32 = 10;

pub use std::hint::black_box;

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 1,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns as f64 / f64::from(b.iters.max(1)) / 1e6;
    println!("bench {label}: {per_iter:.3} ms/iter ({} iters)", b.iters);
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
