//! Offline vendored stand-in for `parking_lot`, wrapping `std::sync`
//! primitives with parking_lot's non-poisoning API (the subset this
//! workspace uses: `Mutex` and `RwLock`).

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard of a locked [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a
    /// poisoned lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard of an [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Exclusive-write guard of an [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
