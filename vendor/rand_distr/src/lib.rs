//! Offline vendored stand-in for `rand_distr`: the Normal, LogNormal and
//! Gamma distributions used by the synthetic DLRM table pool.
//!
//! Normal sampling uses Box–Muller; Gamma uses the Marsaglia–Tsang
//! squeeze method (with the Ahrens–Dieter boost for shape < 1). The
//! numeric streams differ from the real crate but the distributions are
//! correct.

#![forbid(unsafe_code)]

use rand::RngCore;

pub use rand::distr::Distribution;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1]: avoids ln(0) in Box-Muller.
    (((rng.next_u64() >> 11) as f64) + 1.0) / (1u64 << 53) as f64
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit(rng);
    let u2 = unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// [`Error`] if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution whose logarithm has mean `mu` and
    /// standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// [`Error`] if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    ///
    /// [`Error`] if `shape <= 0` or `scale <= 0` or either is non-finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !shape.is_finite() || !scale.is_finite() || shape <= 0.0 || scale <= 0.0 {
            return Err(Error);
        }
        Ok(Self { shape, scale })
    }

    /// Marsaglia–Tsang sampler for shape >= 1.
    fn sample_large<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = unit(rng);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = if self.shape >= 1.0 {
            Self::sample_large(self.shape, rng)
        } else {
            // Ahrens–Dieter boost: Gamma(k) = Gamma(k+1) * U^(1/k).
            Self::sample_large(self.shape + 1.0, rng) * unit(rng).powf(1.0 / self.shape)
        };
        z * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(d: &impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let m = mean_of(&d, 100_000);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn gamma_mean_matches_shape_scale() {
        // E[Gamma(k, theta)] = k * theta.
        let d = Gamma::new(3.0, 2.0).unwrap();
        let m = mean_of(&d, 100_000);
        assert!((m - 6.0).abs() < 0.1, "mean {m}");
        let small = Gamma::new(0.5, 1.0).unwrap();
        let ms = mean_of(&small, 100_000);
        assert!((ms - 0.5).abs() < 0.05, "mean {ms}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
