//! # nshard-pool — the workspace's scoped-thread work pool
//!
//! All external dependencies are vendored offline stand-ins, so there is no
//! rayon here — just [`std::thread::scope`] and an atomic work counter.
//! The pool's one operation, [`WorkPool::map`], evaluates a function over a
//! slice and returns the results **in input order**, regardless of which
//! worker ran which item or in what order they finished. Callers build
//! their work list serially, map over it, and fold the results in input
//! order — which is what makes every parallel pipeline in the workspace
//! (the search, the micro-benchmark collectors, the trainer) bit-for-bit
//! identical to its serial counterpart at any thread count.
//!
//! This crate sits at the bottom of the dependency graph so both halves of
//! the paper's *pre-train, and search* pipeline share one pool: `nshard-nn`
//! and `nshard-cost` parallelize training and label collection with it,
//! `nshard-core` (which re-exports it as `nshard_core::pool`) parallelizes
//! the plan search, and `nshard-serve` sizes its request worker pool
//! through [`resolve_threads`].
//!
//! [`splitmix64`] / [`sample_seed`] live here too: deterministic fan-out
//! needs per-item seeds that are a pure function of `(seed, index)`, so a
//! dataset or gradient computed by worker 7 is the same one the serial
//! loop would have produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// SplitMix64: a tiny, high-quality 64-bit mixer (public-domain constants).
///
/// Used wherever the workspace needs an independent RNG stream per work
/// item: mixing `(seed, index)` through SplitMix64 gives every item its own
/// seed with no sequential RNG state shared across items, so results do not
/// depend on which worker processes which item.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for work item `index` of a run seeded with `seed`:
/// `splitmix64(splitmix64(seed) ^ index)`. The double mix keeps related
/// run seeds (e.g. `seed` and `seed + 1`) from producing overlapping
/// per-item streams.
pub fn sample_seed(seed: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed) ^ index)
}

/// Environment variable overriding the worker count (`0` or unparsable
/// values fall back to the available parallelism).
///
/// This is the **single** thread-count knob of the workspace: every
/// component that spawns workers — the parallel search, the repair engine,
/// the online controller, and the `nshard-serve` daemon's request worker
/// pool — resolves its count through [`resolve_threads`], so one
/// environment variable governs them all and no crate re-reads the
/// variable on its own.
pub const THREADS_ENV: &str = "NSHARD_THREADS";

/// Resolves a requested worker count: an explicit nonzero request wins,
/// then a nonzero [`THREADS_ENV`], then the machine's available
/// parallelism.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Deterministic retry backoff shared by every reconnect/retry loop in the
/// workspace: the [`nshard_core` fallback chain's] transient-verification
/// retries and the `nshard-serve` replication reconnects both derive their
/// delays here instead of keeping ad-hoc constants.
///
/// Two schedules are supported:
///
/// * **exponential** (the default): `base · 2^(attempt−1)`, shift-clamped
///   and saturating — exactly the schedule the fallback chain has always
///   recorded;
/// * **decorrelated jitter** ([`Backoff::with_jitter`]): attempt `n` draws
///   uniformly from `[base, min(cap, base · 3^(n−1))]`, with the draw a
///   *pure function* of `(seed, attempt)` via [`splitmix64`] — so jittered
///   delays de-synchronize a fleet of reconnecting followers yet stay
///   bit-reproducible and instant under a manual clock (delays are
///   recorded or stepped, never slept, in tests).
///
/// [`nshard_core` fallback chain's]: https://docs.rs/nshard-core
///
/// # Example
///
/// ```
/// use nshard_pool::Backoff;
///
/// let plain = Backoff::exponential(50);
/// assert_eq!(plain.delay_ms(1), 50);
/// assert_eq!(plain.delay_ms(2), 100);
/// assert_eq!(plain.delay_ms(3), 200);
///
/// let jittered = Backoff::exponential(50).with_cap(10_000).with_jitter(7);
/// let d = jittered.delay_ms(4);
/// assert!((50..=1350).contains(&d)); // [base, base·3^3]
/// assert_eq!(d, jittered.delay_ms(4), "pure in (seed, attempt)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    jitter_seed: Option<u64>,
}

impl Backoff {
    /// A plain exponential schedule starting at `base_ms` (no cap, no
    /// jitter).
    pub fn exponential(base_ms: u64) -> Self {
        Self {
            base_ms,
            cap_ms: u64::MAX,
            jitter_seed: None,
        }
    }

    /// Caps every delay at `cap_ms` (builder-style).
    #[must_use]
    pub fn with_cap(mut self, cap_ms: u64) -> Self {
        self.cap_ms = cap_ms;
        self
    }

    /// Switches to seeded decorrelated jitter (builder-style): attempt `n`
    /// draws uniformly from `[base, min(cap, base · 3^(n−1))]`,
    /// deterministically in `(seed, attempt)`.
    #[must_use]
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The base delay, ms.
    pub fn base_ms(&self) -> u64 {
        self.base_ms
    }

    /// The recorded delay before retry `attempt` (1-based), in ms.
    /// `attempt = 0` is treated as the first retry.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let n = attempt.max(1);
        match self.jitter_seed {
            None => {
                // base · 2^(n−1), shift clamped so huge attempt counts
                // saturate instead of overflowing.
                self.base_ms
                    .saturating_mul(1u64 << (n - 1).min(16))
                    .min(self.cap_ms)
            }
            Some(seed) => {
                // Upper bound base · 3^(n−1), capped; then a seeded
                // uniform draw over [base, hi].
                let mut hi = self.base_ms;
                for _ in 1..n.min(24) {
                    hi = hi.saturating_mul(3);
                    if hi >= self.cap_ms {
                        hi = self.cap_ms;
                        break;
                    }
                }
                hi = hi.min(self.cap_ms).max(self.base_ms);
                let span = hi - self.base_ms;
                if span == 0 {
                    return self.base_ms;
                }
                let draw = splitmix64(splitmix64(seed) ^ u64::from(n));
                self.base_ms + draw % (span + 1)
            }
        }
    }
}

/// An order-preserving scoped-thread work pool.
///
/// # Example
///
/// ```
/// use nshard_pool::WorkPool;
///
/// let pool = WorkPool::new(4);
/// let squares = pool.map(&[1, 2, 3, 4, 5], |&x: &i32| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// A pool with the given worker count; `0` means auto (environment
    /// override, then available parallelism) via [`resolve_threads`].
    pub fn new(threads: usize) -> Self {
        Self {
            threads: resolve_threads(threads),
        }
    }

    /// A single-worker pool that never spawns threads — used for nested
    /// work (e.g. the inner grid search inside an already-parallel beam
    /// level) to avoid oversubscription.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results in input order.
    ///
    /// Work is claimed from a shared atomic counter, so threads stay busy
    /// even when item costs are skewed. With one worker (or one item) no
    /// thread is spawned. A panic in `f` propagates to the caller.
    pub fn map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, O)> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let next = &next;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                }));
            }
            for h in handles {
                collected.extend(h.join().expect("worker panicked"));
            }
        });
        collected.sort_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, o)| o).collect()
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkPool::new(threads);
            assert_eq!(pool.map(&items, |&x: &usize| x * 3), expected);
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = WorkPool::new(8);
        assert_eq!(
            pool.map::<usize, usize, _>(&[], |&x| x),
            Vec::<usize>::new()
        );
        assert_eq!(pool.map(&[7], |&x: &usize| x + 1), vec![8]);
    }

    #[test]
    fn serial_pool_has_one_thread() {
        assert_eq!(WorkPool::serial().threads(), 1);
    }

    #[test]
    fn explicit_request_wins() {
        assert_eq!(WorkPool::new(5).threads(), 5);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn auto_resolution_is_nonzero() {
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn skewed_work_still_lands_in_order() {
        // Early items sleep longest, so out-of-order completion is likely.
        let items: Vec<u64> = (0..16).collect();
        let pool = WorkPool::new(8);
        let out = pool.map(&items, |&x: &u64| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn sample_seeds_are_distinct_and_deterministic() {
        assert_eq!(sample_seed(1, 2), sample_seed(1, 2));
        let mut seen: Vec<u64> = (0..1000).map(|i| sample_seed(42, i)).collect();
        // Adjacent run seeds must not collide with each other's streams.
        seen.extend((0..1000).map(|i| sample_seed(43, i)));
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 2000, "per-item seeds collided");
    }

    #[test]
    fn exponential_backoff_matches_the_chain_schedule() {
        let b = Backoff::exponential(50);
        assert_eq!(b.delay_ms(0), 50, "attempt 0 is treated as the first");
        assert_eq!(b.delay_ms(1), 50);
        assert_eq!(b.delay_ms(2), 100);
        assert_eq!(b.delay_ms(5), 800);
        // Shift-clamped and saturating far out.
        assert_eq!(b.delay_ms(17), 50 * (1 << 16));
        assert_eq!(b.delay_ms(400), 50 * (1 << 16));
        assert_eq!(Backoff::exponential(u64::MAX).delay_ms(9), u64::MAX);
        // Cap applies.
        assert_eq!(Backoff::exponential(50).with_cap(120).delay_ms(3), 120);
    }

    #[test]
    fn jittered_backoff_is_pure_bounded_and_spread() {
        let b = Backoff::exponential(100).with_cap(5_000).with_jitter(42);
        for attempt in 1..10 {
            let d = b.delay_ms(attempt);
            assert_eq!(d, b.delay_ms(attempt), "pure in (seed, attempt)");
            assert!((100..=5_000).contains(&d), "attempt {attempt} gave {d}");
        }
        // First retry has no room to jitter: span is [base, base].
        assert_eq!(b.delay_ms(1), 100);
        // Different seeds de-synchronize.
        let other = Backoff::exponential(100).with_cap(5_000).with_jitter(43);
        assert!(
            (2..12).any(|a| b.delay_ms(a) != other.delay_ms(a)),
            "two seeds should not produce identical schedules"
        );
        // Degenerate zero-base schedule stays sane.
        assert_eq!(Backoff::exponential(0).with_jitter(1).delay_ms(1), 0);
    }

    #[test]
    fn splitmix_matches_reference_values() {
        // Reference values from the public-domain splitmix64 test vector
        // property: mixing 0 twice gives two distinct well-mixed words.
        let a = splitmix64(0);
        let b = splitmix64(a);
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
