//! Seeded workload-drift generation.
//!
//! The paper solves a *static* sharding problem: a task's pooling factors,
//! hash sizes and access skews are fixed, a plan is found once, and the
//! story ends. Production traffic is not static — id spaces grow,
//! campaigns move hotspots across tables, and diurnal cycles swing lookup
//! volume — so a plan that was optimal at deploy time slowly becomes a
//! straggler magnet. This module substitutes that missing real traffic
//! with **composable, seeded drift models** that evolve a
//! [`ShardingTask`]'s per-table workload over discrete epochs, the same
//! band-2 substitution rationale as the ground-truth simulator itself (see
//! DESIGN.md §1 and §8).
//!
//! Every model is a *pure function* of `(seed, epoch, table index)` — no
//! RNG streams, no mutable state — so `task_at(e)` is bit-deterministic
//! for any call order, any thread count and any subset of epochs queried.

use serde::{Deserialize, Serialize};

use nshard_data::{ShardingTask, TableConfig};

/// Multiplicative / additive adjustments one epoch applies to one table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftFactors {
    /// Multiplier on the mean pooling factor (indices per lookup).
    pub pooling_mul: f64,
    /// Multiplier on the hash size (rows of the id space).
    pub rows_mul: f64,
    /// Additive shift of the Zipf exponent (access-skew sharpening).
    pub alpha_add: f64,
}

impl DriftFactors {
    /// The identity adjustment (no drift).
    pub fn identity() -> Self {
        Self {
            pooling_mul: 1.0,
            rows_mul: 1.0,
            alpha_add: 0.0,
        }
    }

    /// Composes two adjustments (multipliers multiply, shifts add).
    #[must_use]
    pub fn compose(self, other: Self) -> Self {
        Self {
            pooling_mul: self.pooling_mul * other.pooling_mul,
            rows_mul: self.rows_mul * other.rows_mul,
            alpha_add: self.alpha_add + other.alpha_add,
        }
    }
}

/// One composable drift model. A [`WorkloadDrift`] applies a stack of
/// these; their per-table [`DriftFactors`] compose multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftModel {
    /// Compounding growth: pooling factors and id spaces grow by a fixed
    /// fraction per epoch (new users, new items).
    GradualGrowth {
        /// Fractional pooling-factor growth per epoch (e.g. `0.03`).
        pooling_rate: f64,
        /// Fractional hash-size growth per epoch (e.g. `0.02`).
        rows_rate: f64,
    },
    /// A hot window of tables that rotates across the pool: tables inside
    /// the window see boosted pooling and sharpened skew (a campaign or
    /// product surface moving through the catalog).
    HotspotShift {
        /// Epochs for the hotspot to sweep the whole pool once.
        period: u64,
        /// Pooling-factor multiplier inside the hot window (e.g. `2.5`).
        boost: f64,
        /// Fraction of the pool inside the window, in `(0, 1]`.
        width: f64,
        /// Zipf-exponent shift inside the window (e.g. `0.2`).
        skew_shift: f64,
    },
    /// A smooth sinusoidal swing of pooling factors with a per-table phase
    /// (day/night cycles hitting geographic table groups at offset times).
    Diurnal {
        /// Peak fractional swing (e.g. `0.3` for ±30%).
        amplitude: f64,
        /// Epochs per full cycle.
        period: f64,
    },
    /// A sudden, temporary spike on a seeded subset of tables (a flash
    /// event): pooling factors jump by `factor` for `duration` epochs.
    SuddenSpike {
        /// First epoch of the spike.
        at_epoch: u64,
        /// Number of epochs the spike lasts.
        duration: u64,
        /// Pooling-factor multiplier during the spike (e.g. `4.0`).
        factor: f64,
        /// Fraction of tables affected, chosen by seeded hash.
        fraction: f64,
    },
}

/// SplitMix64 finalizer: a well-mixed pure hash of one `u64`.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic uniform in `[0, 1)` from `(seed, tag, index)`.
fn hash01(seed: u64, tag: u64, index: u64) -> f64 {
    let h = mix(seed ^ mix(tag) ^ mix(index).rotate_left(17));
    // 53 mantissa bits — exactly representable, bit-deterministic.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl DriftModel {
    /// The adjustment this model applies to table `index` (of `n_tables`)
    /// at `epoch`, under `seed`. Pure: same arguments, same bits.
    pub fn factors_at(&self, seed: u64, epoch: u64, index: usize, n_tables: usize) -> DriftFactors {
        let mut f = DriftFactors::identity();
        match *self {
            DriftModel::GradualGrowth {
                pooling_rate,
                rows_rate,
            } => {
                f.pooling_mul = (1.0 + pooling_rate).powi(epoch as i32);
                f.rows_mul = (1.0 + rows_rate).powi(epoch as i32);
            }
            DriftModel::HotspotShift {
                period,
                boost,
                width,
                skew_shift,
            } => {
                let n = n_tables.max(1) as f64;
                let period = period.max(1) as f64;
                // Window center sweeps the pool once per `period` epochs.
                let center = (epoch as f64 / period).fract() * n;
                let half_width = (width.clamp(0.0, 1.0) * n) / 2.0;
                // Circular distance from the window center.
                let d = (index as f64 - center).abs();
                let d = d.min(n - d);
                if d <= half_width {
                    f.pooling_mul = boost;
                    f.alpha_add = skew_shift;
                }
            }
            DriftModel::Diurnal { amplitude, period } => {
                let phase = hash01(seed, 0xD1_0B_1A_57, index as u64);
                let angle =
                    std::f64::consts::TAU * (epoch as f64 / period.max(f64::EPSILON) + phase);
                f.pooling_mul = 1.0 + amplitude * angle.sin();
            }
            DriftModel::SuddenSpike {
                at_epoch,
                duration,
                factor,
                fraction,
            } => {
                let active = epoch >= at_epoch && epoch < at_epoch.saturating_add(duration);
                if active && hash01(seed, 0x5B_1C_E5_17, index as u64) < fraction {
                    f.pooling_mul = factor;
                }
            }
        }
        f
    }
}

/// A seeded drift trace: a base task plus a stack of drift models.
///
/// `task_at(0)` returns the base task unchanged only if every model is
/// neutral at epoch 0 (gradual growth is; a diurnal term generally is
/// not) — the *deployment* workload is whatever `task_at(0)` says.
///
/// # Example
///
/// ```
/// use nshard_data::{ShardingTask, TablePool};
/// use nshard_online::drift::{DriftModel, WorkloadDrift};
///
/// let pool = TablePool::synthetic_dlrm(64, 7);
/// let base = ShardingTask::sample(&pool, 4, 16..=16, 64, 7);
/// let drift = WorkloadDrift::new(base, 42)
///     .with_model(DriftModel::GradualGrowth { pooling_rate: 0.05, rows_rate: 0.01 });
/// let later = drift.task_at(10);
/// assert_eq!(later.num_tables(), drift.base().num_tables());
/// assert!(later.tables()[0].pooling_factor() > drift.base().tables()[0].pooling_factor());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDrift {
    base: ShardingTask,
    models: Vec<DriftModel>,
    seed: u64,
}

/// Pooling factors are clamped to this range after drift (a table never
/// goes fully cold, and never exceeds production-plausible fan-out).
const POOLING_CLAMP: (f64, f64) = (0.5, 512.0);

/// Hash sizes are clamped to at least this many rows after drift.
const MIN_ROWS: u64 = 64;

impl WorkloadDrift {
    /// A drift trace over `base` with no models (every epoch identical).
    pub fn new(base: ShardingTask, seed: u64) -> Self {
        Self {
            base,
            models: Vec::new(),
            seed,
        }
    }

    /// Appends a drift model (builder-style; factors compose).
    #[must_use]
    pub fn with_model(mut self, model: DriftModel) -> Self {
        self.models.push(model);
        self
    }

    /// The canonical mixed trace used by the example and benchmark: slow
    /// compounding growth, a rotating hotspot, a diurnal swing, and one
    /// mid-trace spike. Deterministic per seed.
    pub fn standard(base: ShardingTask, seed: u64) -> Self {
        Self::new(base, seed)
            .with_model(DriftModel::GradualGrowth {
                pooling_rate: 0.03,
                rows_rate: 0.015,
            })
            .with_model(DriftModel::HotspotShift {
                period: 16,
                boost: 2.5,
                width: 0.2,
                skew_shift: 0.15,
            })
            .with_model(DriftModel::Diurnal {
                amplitude: 0.25,
                period: 8.0,
            })
            .with_model(DriftModel::SuddenSpike {
                at_epoch: 10,
                duration: 3,
                factor: 3.0,
                fraction: 0.15,
            })
    }

    /// A skew-dominated trace for heterogeneous-placement experiments: a
    /// narrow, slowly rotating hotspot with a strongly sharpened Zipf
    /// exponent concentrates most lookup traffic on a few tables — the
    /// regime where replicated placements of hot tables pay off. Slow
    /// background growth keeps the rest of the pool moving. Deterministic
    /// per seed.
    pub fn zipf_skew(base: ShardingTask, seed: u64) -> Self {
        Self::new(base, seed)
            .with_model(DriftModel::HotspotShift {
                period: 32,
                boost: 6.0,
                width: 0.1,
                skew_shift: 0.4,
            })
            .with_model(DriftModel::GradualGrowth {
                pooling_rate: 0.01,
                rows_rate: 0.0,
            })
    }

    /// The base (epoch-0 reference) task.
    pub fn base(&self) -> &ShardingTask {
        &self.base
    }

    /// The drift models, in composition order.
    pub fn models(&self) -> &[DriftModel] {
        &self.models
    }

    /// The seed behind every stochastic choice.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The composed adjustment for table `index` at `epoch`.
    pub fn factors_at(&self, epoch: u64, index: usize) -> DriftFactors {
        let n = self.base.num_tables();
        self.models
            .iter()
            .fold(DriftFactors::identity(), |acc, model| {
                acc.compose(model.factors_at(self.seed, epoch, index, n))
            })
    }

    /// The workload at `epoch`: the base task with every table's pooling
    /// factor, hash size and Zipf skew adjusted by the composed drift
    /// factors. Table count, ids, dimensions, device count, memory budget,
    /// batch size and the heterogeneous device pool (if any) never change
    /// — drift evolves traffic, not the fleet. Bit-deterministic per
    /// `(base, models, seed, epoch)`.
    pub fn task_at(&self, epoch: u64) -> ShardingTask {
        let tables: Vec<TableConfig> = self
            .base
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let f = self.factors_at(epoch, i);
                let pooling =
                    (t.pooling_factor() * f.pooling_mul).clamp(POOLING_CLAMP.0, POOLING_CLAMP.1);
                let rows = ((t.hash_size() as f64 * f.rows_mul) as u64).max(MIN_ROWS);
                let alpha = t.zipf_alpha() + f.alpha_add;
                t.with_pooling_factor(pooling)
                    .with_hash_size(rows)
                    .with_zipf_alpha(alpha)
            })
            .collect();
        let task = ShardingTask::new(
            tables,
            self.base.num_devices(),
            self.base.mem_budget_bytes(),
            self.base.batch_size(),
        );
        match self.base.device_pool() {
            Some(pool) => task.with_devices(pool.clone()),
            None => task,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::TablePool;
    use proptest::prelude::*;

    fn base() -> ShardingTask {
        let pool = TablePool::synthetic_dlrm(40, 3);
        ShardingTask::sample(&pool, 2, 12..=12, 64, 3)
    }

    #[test]
    fn no_models_means_no_drift() {
        let drift = WorkloadDrift::new(base(), 1);
        assert_eq!(drift.task_at(0), *drift.base());
        assert_eq!(drift.task_at(17), *drift.base());
    }

    #[test]
    fn gradual_growth_compounds() {
        let drift = WorkloadDrift::new(base(), 1).with_model(DriftModel::GradualGrowth {
            pooling_rate: 0.1,
            rows_rate: 0.05,
        });
        let t0 = drift.task_at(0);
        let t5 = drift.task_at(5);
        for (a, b) in t0.tables().iter().zip(t5.tables()) {
            assert!(b.pooling_factor() > a.pooling_factor());
            assert!(b.hash_size() >= a.hash_size());
            assert_eq!(a.dim(), b.dim());
            assert_eq!(a.id(), b.id());
        }
        // Epoch 0 of gradual growth is the identity.
        assert_eq!(t0, *drift.base());
    }

    #[test]
    fn hotspot_window_boosts_a_subset() {
        let drift = WorkloadDrift::new(base(), 1).with_model(DriftModel::HotspotShift {
            period: 10,
            boost: 3.0,
            width: 0.25,
            skew_shift: 0.2,
        });
        let t = drift.task_at(4);
        let boosted = t
            .tables()
            .iter()
            .zip(drift.base().tables())
            .filter(|(now, then)| now.pooling_factor() > then.pooling_factor())
            .count();
        assert!(boosted > 0, "some window must be hot");
        assert!(boosted < t.num_tables(), "the window must not cover all");
    }

    #[test]
    fn hotspot_rotates_over_time() {
        let drift = WorkloadDrift::new(base(), 1).with_model(DriftModel::HotspotShift {
            period: 8,
            boost: 3.0,
            width: 0.2,
            skew_shift: 0.0,
        });
        let hot = |epoch: u64| -> Vec<usize> {
            drift
                .task_at(epoch)
                .tables()
                .iter()
                .zip(drift.base().tables())
                .enumerate()
                .filter(|(_, (now, then))| now.pooling_factor() > then.pooling_factor())
                .map(|(i, _)| i)
                .collect()
        };
        assert_ne!(hot(0), hot(3), "the hot window must move");
    }

    #[test]
    fn spike_is_temporary_and_partial() {
        let drift = WorkloadDrift::new(base(), 9).with_model(DriftModel::SuddenSpike {
            at_epoch: 5,
            duration: 2,
            factor: 4.0,
            fraction: 0.3,
        });
        assert_eq!(drift.task_at(4), *drift.base());
        assert_eq!(drift.task_at(7), *drift.base());
        let spiked: Vec<bool> = drift
            .task_at(5)
            .tables()
            .iter()
            .zip(drift.base().tables())
            .map(|(now, then)| now.pooling_factor() > then.pooling_factor())
            .collect();
        assert!(spiked.iter().any(|&s| s));
        assert!(!spiked.iter().all(|&s| s));
        // The same subset spikes on both epochs of the window.
        let spiked6: Vec<bool> = drift
            .task_at(6)
            .tables()
            .iter()
            .zip(drift.base().tables())
            .map(|(now, then)| now.pooling_factor() > then.pooling_factor())
            .collect();
        assert_eq!(spiked, spiked6);
    }

    #[test]
    fn trace_is_bit_deterministic_and_order_independent() {
        let a = WorkloadDrift::standard(base(), 77);
        let b = WorkloadDrift::standard(base(), 77);
        // Query epochs in different orders; bits must match exactly.
        let fwd: Vec<ShardingTask> = (0..12).map(|e| a.task_at(e)).collect();
        let bwd: Vec<ShardingTask> = (0..12).rev().map(|e| b.task_at(e)).collect();
        for (e, task) in fwd.iter().enumerate() {
            assert_eq!(*task, bwd[11 - e], "epoch {e} diverged");
        }
    }

    #[test]
    fn drifted_tasks_keep_the_device_pool() {
        use nshard_data::DevicePool;
        let pooled = base().with_devices(DevicePool::two_tier(1, 4 << 30, 1, 1 << 30, 2.0, 0.25));
        let drift = WorkloadDrift::standard(pooled.clone(), 3);
        for epoch in [0, 1, 9] {
            let t = drift.task_at(epoch);
            assert_eq!(
                t.device_pool(),
                pooled.device_pool(),
                "epoch {epoch} dropped the fleet description"
            );
            assert_eq!(t.budgets(), pooled.budgets());
        }
    }

    #[test]
    fn zipf_skew_concentrates_traffic_on_a_few_tables() {
        let drift = WorkloadDrift::zipf_skew(base(), 11);
        let t = drift.task_at(2);
        let boosted: Vec<usize> = t
            .tables()
            .iter()
            .zip(drift.base().tables())
            .enumerate()
            .filter(|(_, (now, then))| now.pooling_factor() > then.pooling_factor() * 2.0)
            .map(|(i, _)| i)
            .collect();
        assert!(!boosted.is_empty(), "a hot subset must exist");
        assert!(
            boosted.len() * 4 <= t.num_tables(),
            "the hot subset must be narrow: {} of {}",
            boosted.len(),
            t.num_tables()
        );
        // And the skew sharpens on exactly the hot subset.
        for &i in &boosted {
            assert!(t.tables()[i].zipf_alpha() > drift.base().tables()[i].zipf_alpha());
        }
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = WorkloadDrift::standard(base(), 1).task_at(6);
        let b = WorkloadDrift::standard(base(), 2).task_at(6);
        assert_ne!(a, b);
    }

    #[test]
    fn serde_round_trip() {
        let drift = WorkloadDrift::standard(base(), 5);
        let json = serde_json::to_string(&drift).unwrap();
        let back: WorkloadDrift = serde_json::from_str(&json).unwrap();
        assert_eq!(drift, back);
        assert_eq!(drift.task_at(9), back.task_at(9));
    }

    proptest! {
        #[test]
        fn drifted_tasks_are_always_constructible(seed: u64, epoch in 0u64..200) {
            let drift = WorkloadDrift::standard(base(), seed);
            let task = drift.task_at(epoch);
            prop_assert_eq!(task.num_tables(), drift.base().num_tables());
            for t in task.tables() {
                prop_assert!(t.pooling_factor() >= POOLING_CLAMP.0);
                prop_assert!(t.pooling_factor() <= POOLING_CLAMP.1);
                prop_assert!(t.hash_size() >= MIN_ROWS);
            }
        }
    }
}
