//! Migration-aware incremental replanning.
//!
//! A full NeuroShard search treats every replan as a blank slate: it is
//! free to relocate every table, and on a drifting workload that freedom
//! is paid for in moved embedding bytes. The [`IncrementalPlanner`] instead
//! warm-starts from the incumbent plan and hill-climbs over *local moves*
//! — single-table moves, pairwise swaps and in-place splits — scoring each
//! candidate with the same pre-trained [`CostSimulator`] the offline search
//! uses, under the migration-regularized objective
//!
//! ```text
//! J(p) = est_total_ms(p) + λ · migration_GB(incumbent → p)
//! ```
//!
//! with a lexicographic memory-overflow term in front: a drifted workload
//! can push the incumbent over budget, and an infeasible plan must be
//! repaired before `J` is worth comparing.
//!
//! The search is bit-deterministic at any thread count: candidates are
//! generated serially in a fixed order, the [`WorkPool`] only *constructs*
//! candidate plans (order-preserving map of pure functions), and all
//! scoring happens in a single [`CostSimulator::estimate_plan_batch`] call.

use serde::{Deserialize, Serialize};

use nshard_core::{
    migration_bytes, NeuroShardConfig, PlanError, ShardingPlan, SplitKind, WorkPool,
};
use nshard_cost::{CostSimulator, EstimatedCost};
use nshard_data::ShardingTask;

/// Bytes per gigabyte, for the λ migration term.
const BYTES_PER_GB: f64 = 1e9;

/// Minimum objective improvement to accept a move — guards against
/// floating-point noise keeping the hill-climb alive forever.
const MIN_GAIN_MS: f64 = 1e-9;

/// One local move of an incremental replan, in application order.
///
/// Indices refer to the *sharded* table list of the plan the step is
/// applied to (which grows as `Split` steps execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaStep {
    /// Relocate sharded table `table` from device `from` to device `to`.
    Move {
        /// Sharded-table index.
        table: usize,
        /// Device the table currently lives on (validated on apply).
        from: usize,
        /// Destination device.
        to: usize,
    },
    /// Exchange the devices of sharded tables `a` and `b`.
    Swap {
        /// First sharded-table index.
        a: usize,
        /// Second sharded-table index.
        b: usize,
    },
    /// Split sharded table `table`; the first half stays in place and the
    /// second half is appended to the sharded list on `second_device`.
    Split {
        /// Sharded-table index.
        table: usize,
        /// Split direction.
        kind: SplitKind,
        /// Device receiving the appended second half.
        second_device: usize,
    },
}

/// An ordered, replayable re-sharding delta: applying `steps` to the plan
/// it was computed against reproduces the planner's output exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanDelta {
    /// Local moves in application order.
    pub steps: Vec<DeltaStep>,
    /// Embedding bytes that applying the delta moves between devices.
    pub migration_bytes: u64,
}

impl PlanDelta {
    /// The empty delta (keep the incumbent, move nothing).
    pub fn empty() -> Self {
        Self {
            steps: Vec::new(),
            migration_bytes: 0,
        }
    }

    /// Whether the delta leaves the plan untouched.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the delta against `base`, producing the new plan.
    ///
    /// # Errors
    ///
    /// [`PlanError::Invalid`] when a step references a missing table or
    /// device or a `Move`'s `from` does not match the table's actual
    /// device; [`PlanError::UnsplittableTable`] when a `Split` is illegal.
    pub fn apply(&self, base: &ShardingPlan) -> Result<ShardingPlan, PlanError> {
        let mut split_plan = base.split_plan().to_vec();
        let mut tables = base.sharded_tables().to_vec();
        let mut device_of = base.device_of().to_vec();
        let num_devices = base.num_devices();
        for (i, step) in self.steps.iter().enumerate() {
            match *step {
                DeltaStep::Move { table, from, to } => {
                    let actual = *device_of.get(table).ok_or_else(|| PlanError::Invalid {
                        reason: format!("delta step {i}: no sharded table {table}"),
                    })?;
                    if actual != from {
                        return Err(PlanError::Invalid {
                            reason: format!(
                                "delta step {i}: table {table} is on device {actual}, not {from}"
                            ),
                        });
                    }
                    if to >= num_devices {
                        return Err(PlanError::Invalid {
                            reason: format!("delta step {i}: no device {to}"),
                        });
                    }
                    device_of[table] = to;
                }
                DeltaStep::Swap { a, b } => {
                    if a >= device_of.len() || b >= device_of.len() {
                        return Err(PlanError::Invalid {
                            reason: format!("delta step {i}: swap ({a}, {b}) out of range"),
                        });
                    }
                    device_of.swap(a, b);
                }
                DeltaStep::Split {
                    table,
                    kind,
                    second_device,
                } => {
                    if table >= tables.len() {
                        return Err(PlanError::Invalid {
                            reason: format!("delta step {i}: no sharded table {table}"),
                        });
                    }
                    if second_device >= num_devices {
                        return Err(PlanError::Invalid {
                            reason: format!("delta step {i}: no device {second_device}"),
                        });
                    }
                    let halves = match kind {
                        SplitKind::Column => tables[table].split_columns(),
                        SplitKind::Row => tables[table].split_rows(),
                        SplitKind::Replicate => tables[table].replicate(),
                    }
                    .ok_or(PlanError::UnsplittableTable {
                        step: i,
                        index: table,
                        dim: tables[table].dim(),
                    })?;
                    tables[table] = halves.0;
                    tables.push(halves.1);
                    device_of.push(second_device);
                    split_plan.push(nshard_core::plan::SplitStep { index: table, kind });
                }
            }
        }
        ShardingPlan::with_split_plan(split_plan, tables, device_of, num_devices)
    }
}

/// Tuning knobs of the incremental planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Migration penalty λ, in milliseconds of estimated embedding cost
    /// per gigabyte moved. Small values chase cost aggressively; large
    /// values pin tables in place.
    pub lambda_ms_per_gb: f64,
    /// How many of the hottest device's tables are considered per round.
    pub candidates_per_device: usize,
    /// Maximum hill-climb rounds (one accepted move per round).
    pub max_rounds: usize,
    /// Worker threads for candidate construction (`0` = auto, honoring
    /// `NSHARD_THREADS`). Thread count never changes the result.
    pub threads: usize,
    /// Whether row-wise split candidates are proposed. The controller
    /// mirrors [`nshard_core::NeuroShardConfig::use_row_wise`] here so a
    /// disabled setting disables row splits on the incremental path too
    /// (it used to be silently ignored — ROADMAP item 4).
    pub row_wise: bool,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            lambda_ms_per_gb: 3.0,
            candidates_per_device: 8,
            max_rounds: 32,
            threads: 0,
            row_wise: NeuroShardConfig::default().use_row_wise,
        }
    }
}

/// The result of one incremental replan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalOutcome {
    /// The improved plan (equals the rebased incumbent if no move helped).
    pub plan: ShardingPlan,
    /// The replayable delta from the rebased incumbent to [`Self::plan`].
    pub delta: PlanDelta,
    /// Predicted cost of [`Self::plan`] under the current workload.
    pub estimated: EstimatedCost,
    /// Hill-climb rounds that accepted a move.
    pub rounds: usize,
    /// Candidate plans scored by the cost simulator.
    pub evaluated_plans: usize,
}

/// Scalarized candidate score: memory overflow first, then the
/// migration-regularized cost objective.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Score {
    overflow_bytes: u64,
    objective_ms: f64,
}

impl Score {
    fn better_than(&self, other: &Score) -> bool {
        self.overflow_bytes < other.overflow_bytes
            || (self.overflow_bytes == other.overflow_bytes
                && self.objective_ms < other.objective_ms - MIN_GAIN_MS)
    }
}

/// Warm-started local search around an incumbent plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementalPlanner {
    config: IncrementalConfig,
}

impl IncrementalPlanner {
    /// A planner with the given knobs.
    pub fn new(config: IncrementalConfig) -> Self {
        Self { config }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &IncrementalConfig {
        &self.config
    }

    /// Replans around `incumbent` for the (possibly drifted) `task`.
    ///
    /// The incumbent is first rebased onto `task` (see
    /// [`ShardingPlan::rebase`]), then improved by one accepted local move
    /// per round until no candidate beats the current plan or
    /// `max_rounds` is exhausted. Migration bytes are always charged
    /// against the *rebased incumbent*, so a table moved away and back
    /// costs nothing in the final delta.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the incumbent cannot be rebased onto `task`
    /// (table-count mismatch, or a recorded split no longer legal after
    /// drift). The caller should fall back to a full replan.
    ///
    /// # Panics
    ///
    /// Panics if the simulator bundle's device count differs from the
    /// task's.
    pub fn replan(
        &self,
        sim: &CostSimulator,
        task: &ShardingTask,
        incumbent: &ShardingPlan,
    ) -> Result<IncrementalOutcome, PlanError> {
        let base = incumbent.rebase(task)?;
        let pool = WorkPool::new(self.config.threads);
        let budget = task.mem_budget_bytes();
        let batch = task.batch_size();

        let mut current = base.clone();
        let mut current_est = sim.estimate_plan(&current.device_profiles(batch));
        let mut current_score = self.score(&base, &current, &current_est, budget);
        let mut steps: Vec<DeltaStep> = Vec::new();
        let mut evaluated = 1usize;
        let mut rounds = 0usize;

        for _ in 0..self.config.max_rounds {
            let candidates = self.candidate_steps(&current, &current_est, budget, batch);
            if candidates.is_empty() {
                break;
            }
            // Pure, order-preserving construction: thread count cannot
            // change which candidates exist or their order.
            let built: Vec<Option<ShardingPlan>> = pool.map(&candidates, |&step| {
                PlanDelta {
                    steps: vec![step],
                    migration_bytes: 0,
                }
                .apply(&current)
                .ok()
            });
            let viable: Vec<(DeltaStep, ShardingPlan)> = candidates
                .iter()
                .zip(built)
                .filter_map(|(&step, plan)| plan.map(|p| (step, p)))
                .collect();
            if viable.is_empty() {
                break;
            }
            let profiles: Vec<Vec<Vec<nshard_sim::TableProfile>>> = viable
                .iter()
                .map(|(_, p)| p.device_profiles(batch))
                .collect();
            // All scoring in one serial batched call — deterministic.
            let estimates = sim.estimate_plan_batch(&profiles);
            evaluated += estimates.len();

            // First strict improvement in candidate order wins ties.
            let mut best: Option<(usize, Score)> = None;
            for (i, ((_, plan), est)) in viable.iter().zip(&estimates).enumerate() {
                let score = self.score(&base, plan, est, budget);
                if score.better_than(&best.map_or(current_score, |(_, s)| s)) {
                    best = Some((i, score));
                }
            }
            let Some((i, score)) = best else { break };
            let (step, plan) = viable.into_iter().nth(i).expect("index from enumerate");
            steps.push(step);
            current = plan;
            current_est = estimates.into_iter().nth(i).expect("index from enumerate");
            current_score = score;
            rounds += 1;
        }

        let delta = PlanDelta {
            migration_bytes: migration_bytes(&base, &current),
            steps,
        };
        Ok(IncrementalOutcome {
            plan: current,
            delta,
            estimated: current_est,
            rounds,
            evaluated_plans: evaluated,
        })
    }

    /// Lexicographic (overflow, cost + λ·migration) score of a candidate.
    fn score(
        &self,
        base: &ShardingPlan,
        plan: &ShardingPlan,
        est: &EstimatedCost,
        budget: u64,
    ) -> Score {
        let overflow_bytes = plan
            .device_bytes()
            .iter()
            .map(|&b| b.saturating_sub(budget))
            .sum();
        let moved = migration_bytes(base, plan) as f64 / BYTES_PER_GB;
        Score {
            overflow_bytes,
            objective_ms: est.total_ms() + self.config.lambda_ms_per_gb * moved,
        }
    }

    /// Candidate local moves around the current plan, in a fixed
    /// deterministic order.
    ///
    /// Donor devices are the most memory-overloaded device when any is
    /// over budget, otherwise the two predicted-compute hottest (the
    /// second donor matters once the hottest device is already lean:
    /// comm and the runner-up device then dominate the max). From each
    /// donor the top `candidates_per_device` tables by workload proxy
    /// (`batch · pooling · dim`, or bytes when repairing memory) each
    /// propose: a move to every other device, a swap with every other
    /// device's lightest table, and a split whose second half lands on
    /// the coldest device.
    fn candidate_steps(
        &self,
        plan: &ShardingPlan,
        est: &EstimatedCost,
        budget: u64,
        batch: u32,
    ) -> Vec<DeltaStep> {
        let device_bytes = plan.device_bytes();
        let num_devices = plan.num_devices();
        let over_budget = device_bytes.iter().any(|&b| b > budget);

        // Donors: most overloaded device, else the two compute-hottest.
        let donors: Vec<usize> = if over_budget {
            vec![argmax_u64(&device_bytes)]
        } else {
            let mut by_heat: Vec<usize> = (0..num_devices).collect();
            by_heat.sort_by(|&a, &b| {
                est.compute_per_device[b]
                    .partial_cmp(&est.compute_per_device[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            by_heat.truncate(2);
            by_heat
        };
        // Receiver for split second-halves: predicted-compute coldest.
        let coldest = argmin_f64(&est.compute_per_device);

        // Per-table workload proxy; bytes when repairing memory.
        let weight = |i: usize| -> f64 {
            let t = &plan.sharded_tables()[i];
            if over_budget {
                t.memory_bytes() as f64
            } else {
                f64::from(batch) * t.pooling_factor() * f64::from(t.dim())
            }
        };

        // Lightest table on each device, as swap partners.
        let mut lightest: Vec<Option<usize>> = vec![None; num_devices];
        for i in 0..plan.sharded_tables().len() {
            let d = plan.device_of()[i];
            let lighter = match lightest[d] {
                None => true,
                Some(j) => weight(i) < weight(j),
            };
            if lighter {
                lightest[d] = Some(i);
            }
        }

        let mut steps = Vec::new();
        for &donor in &donors {
            let mut donor_tables: Vec<usize> = (0..plan.sharded_tables().len())
                .filter(|&i| plan.device_of()[i] == donor)
                .collect();
            // Heaviest first; index tiebreak keeps the order total.
            donor_tables.sort_by(|&a, &b| {
                weight(b)
                    .partial_cmp(&weight(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            donor_tables.truncate(self.config.candidates_per_device);

            for &t in &donor_tables {
                for (to, partner) in lightest.iter().enumerate() {
                    if to == donor {
                        continue;
                    }
                    steps.push(DeltaStep::Move {
                        table: t,
                        from: donor,
                        to,
                    });
                    if let Some(partner) = partner {
                        steps.push(DeltaStep::Swap { a: t, b: *partner });
                    }
                }
                if num_devices > 1 {
                    let second = if coldest == donor {
                        (donor + 1) % num_devices
                    } else {
                        coldest
                    };
                    if plan.sharded_tables()[t].split_columns().is_some() {
                        steps.push(DeltaStep::Split {
                            table: t,
                            kind: SplitKind::Column,
                            second_device: second,
                        });
                    }
                    if self.config.row_wise && plan.sharded_tables()[t].split_rows().is_some() {
                        steps.push(DeltaStep::Split {
                            table: t,
                            kind: SplitKind::Row,
                            second_device: second,
                        });
                    }
                }
            }
        }
        steps
    }
}

impl Default for IncrementalPlanner {
    fn default() -> Self {
        Self::new(IncrementalConfig::default())
    }
}

fn argmin_f64(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

fn argmax_u64(xs: &[u64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
    use nshard_data::{TableConfig, TableId, TablePool};

    fn sim(d: usize) -> CostSimulator {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        CostSimulator::new(bundle)
    }

    fn t(id: u32, dim: u32, pooling: f64) -> TableConfig {
        TableConfig::new(TableId(id), dim, 1 << 16, pooling, 1.0)
    }

    fn skewed_task() -> ShardingTask {
        // All six tables start on device 0; device 1 is empty.
        ShardingTask::new(
            (0..6).map(|i| t(i, 32, 12.0)).collect(),
            2,
            nshard_sim::DEFAULT_MEM_BYTES,
            1024,
        )
    }

    fn all_on_zero(task: &ShardingTask) -> ShardingPlan {
        ShardingPlan::new(
            vec![],
            task.tables().to_vec(),
            vec![0; task.num_tables()],
            2,
        )
        .unwrap()
    }

    #[test]
    fn delta_apply_replays_moves_swaps_and_splits() {
        let task = skewed_task();
        let base = all_on_zero(&task);
        let delta = PlanDelta {
            steps: vec![
                DeltaStep::Move {
                    table: 0,
                    from: 0,
                    to: 1,
                },
                DeltaStep::Swap { a: 0, b: 1 },
                DeltaStep::Split {
                    table: 2,
                    kind: SplitKind::Column,
                    second_device: 1,
                },
            ],
            migration_bytes: 0,
        };
        let out = delta.apply(&base).unwrap();
        assert_eq!(out.sharded_tables().len(), 7);
        // Move put table 0 on device 1, then the swap exchanged 0 and 1.
        assert_eq!(out.device_of()[0], 0);
        assert_eq!(out.device_of()[1], 1);
        // Split halved table 2 and appended the second half on device 1.
        assert_eq!(out.sharded_tables()[2].dim(), 16);
        assert_eq!(out.sharded_tables()[6].dim(), 16);
        assert_eq!(out.device_of()[6], 1);
        assert_eq!(out.split_plan().len(), 1);
        // The appended split is replayable: rebasing onto the task works.
        out.rebase(&task).unwrap();
    }

    #[test]
    fn delta_apply_rejects_stale_from_device() {
        let task = skewed_task();
        let base = all_on_zero(&task);
        let delta = PlanDelta {
            steps: vec![DeltaStep::Move {
                table: 0,
                from: 1,
                to: 0,
            }],
            migration_bytes: 0,
        };
        assert!(matches!(delta.apply(&base), Err(PlanError::Invalid { .. })));
    }

    #[test]
    fn replan_improves_a_skewed_incumbent() {
        let sim = sim(2);
        let task = skewed_task();
        let base = all_on_zero(&task);
        let out = IncrementalPlanner::default()
            .replan(&sim, &task, &base)
            .unwrap();
        assert!(out.rounds > 0, "a fully skewed plan must be improvable");
        let before = sim
            .estimate_plan(&base.device_profiles(task.batch_size()))
            .total_ms();
        assert!(out.estimated.total_ms() < before);
        assert!(out.delta.migration_bytes > 0);
        // The delta replays to exactly the returned plan.
        assert_eq!(out.delta.apply(&base).unwrap(), out.plan);
    }

    #[test]
    fn replan_never_worse_than_incumbent() {
        let sim = sim(2);
        let task = skewed_task();
        let base = all_on_zero(&task);
        let out = IncrementalPlanner::default()
            .replan(&sim, &task, &base)
            .unwrap();
        let before = sim
            .estimate_plan(&base.device_profiles(task.batch_size()))
            .total_ms();
        assert!(out.estimated.total_ms() <= before + 1e-12);
    }

    #[test]
    fn balanced_incumbent_yields_empty_delta() {
        let sim = sim(2);
        let task = ShardingTask::new(
            (0..6).map(|i| t(i, 32, 12.0)).collect(),
            2,
            nshard_sim::DEFAULT_MEM_BYTES,
            1024,
        );
        let plan = ShardingPlan::new(
            vec![],
            task.tables().to_vec(),
            (0..6).map(|i| i % 2).collect(),
            2,
        )
        .unwrap();
        let out = IncrementalPlanner::default()
            .replan(&sim, &task, &plan)
            .unwrap();
        // Identical tables alternating over two devices is already
        // balanced; any move pays migration for no cost gain.
        assert!(out.delta.is_empty());
        assert_eq!(out.delta.migration_bytes, 0);
        assert_eq!(out.plan, plan);
    }

    #[test]
    fn high_lambda_pins_tables_in_place() {
        let sim = sim(2);
        let task = skewed_task();
        let base = all_on_zero(&task);
        let free = IncrementalPlanner::new(IncrementalConfig {
            lambda_ms_per_gb: 0.0,
            ..IncrementalConfig::default()
        })
        .replan(&sim, &task, &base)
        .unwrap();
        let pinned = IncrementalPlanner::new(IncrementalConfig {
            lambda_ms_per_gb: 1e12,
            ..IncrementalConfig::default()
        })
        .replan(&sim, &task, &base)
        .unwrap();
        assert!(pinned.delta.migration_bytes <= free.delta.migration_bytes);
        assert!(pinned.delta.is_empty(), "an absurd λ must forbid any move");
    }

    #[test]
    fn replan_repairs_memory_overflow_lexicographically() {
        let sim = sim(2);
        // Budget fits three tables per device; all six on device 0.
        let bytes = t(0, 32, 12.0).memory_bytes();
        let task = ShardingTask::new((0..6).map(|i| t(i, 32, 12.0)).collect(), 2, bytes * 3, 1024);
        let base = all_on_zero(&task);
        let out = IncrementalPlanner::default()
            .replan(&sim, &task, &base)
            .unwrap();
        assert!(
            out.plan.device_bytes().iter().all(|&b| b <= bytes * 3),
            "replan must repair the overflow: {:?}",
            out.plan.device_bytes()
        );
    }

    #[test]
    fn replan_is_thread_count_invariant() {
        let sim = sim(2);
        let task = skewed_task();
        let base = all_on_zero(&task);
        let serial = IncrementalPlanner::new(IncrementalConfig {
            threads: 1,
            ..IncrementalConfig::default()
        })
        .replan(&sim, &task, &base)
        .unwrap();
        let parallel = IncrementalPlanner::new(IncrementalConfig {
            threads: 8,
            ..IncrementalConfig::default()
        })
        .replan(&sim, &task, &base)
        .unwrap();
        assert_eq!(serial.plan, parallel.plan);
        assert_eq!(serial.delta, parallel.delta);
        assert_eq!(serial.estimated, parallel.estimated);
    }

    #[test]
    fn rebase_failure_surfaces_as_error() {
        let sim = sim(2);
        let task = skewed_task();
        let other = ShardingTask::new(
            (0..5).map(|i| t(i, 32, 12.0)).collect(),
            2,
            nshard_sim::DEFAULT_MEM_BYTES,
            1024,
        );
        let base = all_on_zero(&task);
        assert!(IncrementalPlanner::default()
            .replan(&sim, &other, &base)
            .is_err());
    }
}
