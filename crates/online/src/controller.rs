//! The online re-sharding loop: observe → detect → replan → apply →
//! evaluate.
//!
//! [`OnlineController`] drives a deployed sharding plan through a drifting
//! workload, one epoch at a time:
//!
//! 1. **Observe** — materialize the epoch's drifted task from the
//!    [`WorkloadDrift`] generator and rebase the incumbent plan onto it
//!    (the placement is unchanged; every shard now carries the drifted
//!    pooling factors and hash sizes).
//! 2. **Detect** — the [`DriftDetector`] prices the rebased incumbent
//!    with the pre-trained cost models and fires a typed
//!    [`ReplanTrigger`] when the plan's assumptions no longer hold.
//! 3. **Replan** — per the configured [`ReplanStrategy`]: keep the
//!    incumbent, run a full search through the [`FallbackChain`] safety
//!    net, or run the migration-aware [`IncrementalPlanner`] (falling
//!    back to the chain when the incremental result is unusable).
//! 4. **Apply** — adopt the new plan; migration bytes are charged by
//!    [`migration_bytes`] against the rebased incumbent.
//! 5. **Evaluate** — ground-truth the deployed plan on the cluster
//!    simulator (the paper's "real GPU cost" oracle), which the search
//!    itself never sees.
//!
//! Every epoch appends an [`EpochRecord`] to the returned
//! [`ReplanHistory`]; every adopted plan carries a [`PlanProvenance`]
//! whose `replan` field attributes it to the trigger kind and epoch that
//! caused it. The whole loop is bit-deterministic per seed at any thread
//! count.

use serde::{Deserialize, Serialize};

use nshard_baselines::SizeGreedy;
use nshard_core::{
    evaluate_plan, migration_bytes, FallbackChain, NeuroShard, NeuroShardConfig, PlanProvenance,
    PlanSource, ShardingPlan,
};
use nshard_cost::{CostModelBundle, CostSimulator, EstimatedCost};
use nshard_data::ShardingTask;
use nshard_sim::{GpuSpec, PlanCosts, TableProfile};

use crate::detect::{DriftDetector, DriftReport, DriftThresholds, ReplanTrigger};
use crate::drift::{mix, WorkloadDrift};
use crate::incremental::{IncrementalConfig, IncrementalPlanner, PlanDelta};

/// How the controller reacts to a fired trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplanStrategy {
    /// Never replan: ride the incumbent through all drift (the control
    /// arm of the experiment).
    Never,
    /// Replan from scratch with the full NeuroShard search through the
    /// fallback chain. Best cost, pays full migration.
    Full,
    /// Warm-start the migration-aware incremental planner; the fallback
    /// chain is the safety net when the incremental result is unusable.
    Incremental,
}

impl ReplanStrategy {
    /// Short display name (`"never"`, `"full"`, `"incremental"`).
    pub fn name(&self) -> &'static str {
        match self {
            ReplanStrategy::Never => "never",
            ReplanStrategy::Full => "full",
            ReplanStrategy::Incremental => "incremental",
        }
    }
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Drift epochs to run (epoch 0 is the initial deployment).
    pub epochs: u64,
    /// Replan strategy.
    pub strategy: ReplanStrategy,
    /// Drift-detector thresholds.
    pub thresholds: DriftThresholds,
    /// Incremental-planner knobs (used by
    /// [`ReplanStrategy::Incremental`]).
    pub incremental: IncrementalConfig,
    /// Full-search knobs (used by [`ReplanStrategy::Full`] and as the
    /// incremental strategy's fallback).
    pub search: NeuroShardConfig,
    /// Base seed for ground-truth evaluation noise (mixed with the epoch
    /// so every epoch re-measures).
    pub seed: u64,
    /// Worker threads (`0` = auto, honoring `NSHARD_THREADS`). Thread
    /// count never changes any result.
    pub threads: usize,
    /// End-of-trace escape hatch for [`ReplanStrategy::Incremental`]:
    /// when the λ-objective has stalled — some incremental replan left
    /// the predicted cost more than
    /// [`stall_improvement`](Self::stall_improvement) above the last
    /// unconstrained (full-chain) deployment's quality, and no later
    /// replan recovered — the final epoch runs one full-chain replan to
    /// clear the accumulated drift debt. Off by default; migration
    /// bytes for the cleanup replan are charged like any other.
    pub final_full_replan_on_stall: bool,
    /// Relative predicted-cost excess over the last unconstrained
    /// deployment's quality above which an incremental replan counts as
    /// stalled (see
    /// [`final_full_replan_on_stall`](Self::final_full_replan_on_stall)).
    /// Drift can make the workload intrinsically costlier, so the
    /// reference is a lower bound, not an entitlement: a false stall
    /// costs at most the one cleanup replan.
    pub stall_improvement: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            strategy: ReplanStrategy::Incremental,
            thresholds: DriftThresholds::default(),
            incremental: IncrementalConfig::default(),
            search: NeuroShardConfig::default(),
            seed: 0,
            threads: 0,
            final_full_replan_on_stall: false,
            stall_improvement: 0.05,
        }
    }
}

/// How an epoch's replan was carried out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplanAction {
    /// The trigger fired but the strategy is [`ReplanStrategy::Never`].
    Suppressed,
    /// A full search through the fallback chain produced the new plan.
    Full {
        /// The chain's full decision record, attributed to the trigger.
        provenance: PlanProvenance,
    },
    /// The incremental planner produced the new plan.
    Incremental {
        /// The replayable delta from the rebased incumbent.
        delta: PlanDelta,
        /// Candidate plans the planner scored.
        evaluated_plans: usize,
        /// Synthetic provenance attributing the plan to the trigger.
        provenance: PlanProvenance,
    },
    /// The incremental planner failed or produced an infeasible plan and
    /// the fallback chain took over.
    IncrementalFellBack {
        /// Why the incremental path was abandoned.
        reason: String,
        /// The chain's full decision record, attributed to the trigger.
        provenance: PlanProvenance,
    },
}

impl ReplanAction {
    /// The provenance of the adopted plan, if a new plan was adopted.
    pub fn provenance(&self) -> Option<&PlanProvenance> {
        match self {
            ReplanAction::Suppressed => None,
            ReplanAction::Full { provenance }
            | ReplanAction::Incremental { provenance, .. }
            | ReplanAction::IncrementalFellBack { provenance, .. } => Some(provenance),
        }
    }
}

/// The full record of one drift epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// The epoch index (0 = initial deployment).
    pub epoch: u64,
    /// The detector's observation, `None` for epoch 0 and for epochs
    /// where the incumbent could not be rebased onto the drifted task.
    pub report: Option<DriftReport>,
    /// What the controller did about the trigger, `None` when no trigger
    /// fired.
    pub action: Option<ReplanAction>,
    /// Predicted cost of the deployed plan under this epoch's workload,
    /// ms.
    pub predicted_ms: f64,
    /// Ground-truth max-device cost of the deployed plan on the cluster
    /// simulator, ms; `None` when the plan is infeasible for the epoch's
    /// task (e.g. drift pushed a never-replanned incumbent over budget).
    pub ground_truth_ms: Option<f64>,
    /// Embedding bytes moved by this epoch's replan (0 without one).
    pub migration_bytes: u64,
}

/// The controller's full run: every epoch, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanHistory {
    /// The strategy that produced this history.
    pub strategy: ReplanStrategy,
    /// Per-epoch records, index = epoch.
    pub epochs: Vec<EpochRecord>,
}

impl ReplanHistory {
    /// Total embedding bytes moved across all replans.
    pub fn total_migration_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.migration_bytes).sum()
    }

    /// Number of epochs that adopted a new plan.
    pub fn replans(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| !matches!(e.action, None | Some(ReplanAction::Suppressed)))
            .count()
    }

    /// Mean ground-truth cost over the epochs where the deployed plan was
    /// feasible, ms.
    pub fn mean_ground_truth_ms(&self) -> f64 {
        let costs: Vec<f64> = self
            .epochs
            .iter()
            .filter_map(|e| e.ground_truth_ms)
            .collect();
        if costs.is_empty() {
            f64::NAN
        } else {
            costs.iter().sum::<f64>() / costs.len() as f64
        }
    }

    /// Worst feasible ground-truth cost across epochs, ms (`None` when no
    /// epoch was feasible).
    pub fn worst_ground_truth_ms(&self) -> Option<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.ground_truth_ms)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.max(c))))
    }
}

/// Everything one epoch of the loop observed about the deployed plan,
/// handed to an [`EpochHook`] after the epoch's record is finalized.
///
/// `estimated` and `ground_truth` describe the **same** deployment priced
/// two ways — by the neural cost models and by the cluster-simulator
/// oracle — which is exactly the `(predicted, observed)` pairing the
/// continual-learning observation buffer accumulates.
#[derive(Debug)]
pub struct EpochObservation<'a> {
    /// The epoch index (0 = initial deployment).
    pub epoch: u64,
    /// The epoch's drifted task.
    pub task: &'a ShardingTask,
    /// Per-device feature profiles of the deployed plan under `task`
    /// (index = device).
    pub assignment: &'a [Vec<TableProfile>],
    /// The cost models' estimate of the deployed plan.
    pub estimated: &'a EstimatedCost,
    /// The oracle's per-device cost breakdown, `None` when the plan is
    /// memory-infeasible for the epoch's task.
    pub ground_truth: Option<&'a PlanCosts>,
    /// The drift trigger that fired this epoch, if any.
    pub trigger: Option<&'a ReplanTrigger>,
}

/// What an [`EpochHook`] asks the controller to do next.
#[derive(Debug)]
pub enum HookAction {
    /// Keep running with the current cost models.
    Continue,
    /// Swap in a new cost-model bundle before the next epoch: the
    /// controller rebuilds its simulator and full-search chain from it
    /// and re-prices the detector baseline so subsequent regression
    /// ratios compare like with like.
    SwapModels(Box<CostModelBundle>),
}

/// Observer of the epoch loop — the seam the continual-learning subsystem
/// plugs into. Called once per epoch after the [`EpochRecord`] is
/// finalized; returning [`HookAction::SwapModels`] hot-swaps the cost
/// models the loop plans with.
pub trait EpochHook {
    /// Observes one finished epoch.
    fn on_epoch(&mut self, observation: &EpochObservation<'_>) -> HookAction;
}

/// The do-nothing hook: [`OnlineController::run`] uses it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl EpochHook for NoopHook {
    fn on_epoch(&mut self, _observation: &EpochObservation<'_>) -> HookAction {
        HookAction::Continue
    }
}

/// The epoch loop. See the [module documentation](self).
pub struct OnlineController {
    drift: WorkloadDrift,
    sim: CostSimulator,
    chain: FallbackChain,
    detector: DriftDetector,
    planner: IncrementalPlanner,
    config: OnlineConfig,
}

impl OnlineController {
    /// Builds a controller from a pre-trained bundle, a drift generator
    /// and a configuration. The bundle is shared (cloned) between the
    /// detector/incremental-planner simulator and the full-search
    /// fallback chain.
    pub fn new(bundle: CostModelBundle, drift: WorkloadDrift, config: OnlineConfig) -> Self {
        let sim = CostSimulator::new(bundle.clone());
        let chain = Self::build_chain(bundle, &config);
        let mut incremental = config.incremental;
        incremental.threads = config.threads;
        // The incremental planner honors the search config's row-wise
        // setting: a disabled `use_row_wise` must disable row-split
        // candidates everywhere, not just in the full search.
        incremental.row_wise = config.search.use_row_wise;
        Self {
            drift,
            sim,
            chain,
            detector: DriftDetector::new(config.thresholds),
            planner: IncrementalPlanner::new(incremental),
            config,
        }
    }

    /// The full-search fallback chain for `bundle` under `config` — used
    /// at construction and again on every [`HookAction::SwapModels`].
    fn build_chain(bundle: CostModelBundle, config: &OnlineConfig) -> FallbackChain {
        FallbackChain::new(Box::new(NeuroShard::new(bundle, config.search)))
            .with_fallback(Box::new(SizeGreedy))
            .with_seed(config.seed)
            .with_threads(config.threads)
    }

    /// Hot-swaps the cost models the loop plans with: the simulator (and
    /// with it every prediction/encoding cache) and the full-search chain
    /// are rebuilt from `bundle`.
    fn install_bundle(&mut self, bundle: CostModelBundle) {
        self.sim = CostSimulator::new(bundle.clone());
        self.chain = Self::build_chain(bundle, &self.config);
    }

    /// The drift generator driving the run.
    pub fn drift(&self) -> &WorkloadDrift {
        &self.drift
    }

    /// The controller configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Runs the full epoch loop and returns the per-epoch history.
    ///
    /// # Errors
    ///
    /// [`nshard_core::ResilientError`] when even the initial deployment
    /// cannot be planned (every stage of the fallback chain failed).
    pub fn run(&mut self) -> Result<ReplanHistory, nshard_core::ResilientError> {
        self.run_hooked(&mut NoopHook)
    }

    /// [`OnlineController::run`] with an [`EpochHook`] observing every
    /// epoch; [`HookAction::SwapModels`] hot-swaps the cost models between
    /// epochs (the continual-learning loop's entry point).
    ///
    /// # Errors
    ///
    /// [`nshard_core::ResilientError`] when even the initial deployment
    /// cannot be planned (every stage of the fallback chain failed).
    pub fn run_hooked(
        &mut self,
        hook: &mut dyn EpochHook,
    ) -> Result<ReplanHistory, nshard_core::ResilientError> {
        let mut epochs = Vec::with_capacity(self.config.epochs as usize);

        // Epoch 0: initial deployment via the full chain.
        let task0 = self.drift.task_at(0);
        let deployed = self.chain.shard_with_provenance(&task0)?;
        let mut incumbent = deployed.plan;
        let mut deployed_task = task0.clone();
        let profiles0 = incumbent.device_profiles(task0.batch_size());
        let estimated0 = self.sim.estimate_plan(&profiles0);
        let truth0 = self.ground_truth(&task0, &incumbent, 0);
        let mut baseline_ms = estimated0.total_ms();
        epochs.push(EpochRecord {
            epoch: 0,
            report: None,
            action: None,
            predicted_ms: baseline_ms,
            ground_truth_ms: truth0.as_ref().map(PlanCosts::max_total_ms),
            migration_bytes: 0,
        });
        let hook_action = hook.on_epoch(&EpochObservation {
            epoch: 0,
            task: &task0,
            assignment: &profiles0,
            estimated: &estimated0,
            ground_truth: truth0.as_ref(),
            trigger: None,
        });
        if let HookAction::SwapModels(bundle) = hook_action {
            self.install_bundle(*bundle);
            baseline_ms = self.sim.estimate_plan(&profiles0).total_ms();
        }

        // λ-objective stall tracking for the end-of-trace escape hatch:
        // > 0 when some incremental replan under-delivered and no later
        // one recovered. The debt reference is the predicted quality of
        // the last unconstrained (full-chain) deployment — initially the
        // epoch-0 plan.
        let mut stalled_replans = 0u64;
        let mut full_quality_ms = baseline_ms;

        for epoch in 1..self.config.epochs {
            let task = self.drift.task_at(epoch);

            // Observe: the incumbent's shards under the drifted workload.
            let rebased = incumbent.rebase(&task);
            let (report, reference) = match &rebased {
                Ok(r) => {
                    let report = self.detector.observe(
                        &self.sim,
                        r,
                        &task,
                        &deployed_task,
                        baseline_ms,
                        epoch,
                    );
                    (Some(report), r.clone())
                }
                // A recorded split became illegal after drift: detection
                // cannot price the incumbent; force a full replan below.
                Err(_) => (None, incumbent.clone()),
            };

            let trigger = report.as_ref().and_then(|r| r.trigger.clone());
            // The end-of-trace escape hatch: a stalled incremental trace
            // replans through the full chain on its final epoch, trigger
            // or not, clearing the debt the patches could not.
            let escape = self.config.final_full_replan_on_stall
                && self.config.strategy == ReplanStrategy::Incremental
                && epoch + 1 == self.config.epochs
                && stalled_replans > 0;
            let must_replan = trigger.is_some() || rebased.is_err() || escape;
            let trigger_kind = trigger.as_ref().map_or(
                if rebased.is_err() {
                    "rebase_failed"
                } else {
                    "stall_escape"
                },
                |t| t.kind(),
            );

            let mut action = None;
            let mut moved = 0u64;
            if must_replan {
                match self.config.strategy {
                    ReplanStrategy::Never => {
                        action = Some(ReplanAction::Suppressed);
                    }
                    ReplanStrategy::Full => {
                        let outcome = self.chain.shard_with_provenance(&task)?;
                        moved = migration_bytes(&reference, &outcome.plan);
                        incumbent = outcome.plan;
                        action = Some(ReplanAction::Full {
                            provenance: outcome
                                .provenance
                                .attributed_to_replan(trigger_kind, epoch),
                        });
                    }
                    ReplanStrategy::Incremental if escape => {
                        let outcome = self.chain.shard_with_provenance(&task)?;
                        moved = migration_bytes(&reference, &outcome.plan);
                        incumbent = outcome.plan;
                        stalled_replans = 0;
                        action = Some(ReplanAction::Full {
                            provenance: outcome
                                .provenance
                                .attributed_to_replan(trigger_kind, epoch),
                        });
                    }
                    ReplanStrategy::Incremental => {
                        let (next, act) =
                            self.incremental_replan(&task, &incumbent, trigger_kind, epoch)?;
                        // Stall accounting against the λ-objective: a
                        // patch that beats the drifted incumbent can
                        // still ratchet the deployment away from what an
                        // unconstrained search would find, so progress
                        // is measured against the last full-chain
                        // deployment's predicted quality instead.
                        let after = self
                            .sim
                            .estimate_plan(&next.device_profiles(task.batch_size()))
                            .total_ms();
                        if matches!(act, ReplanAction::IncrementalFellBack { .. }) {
                            // The fallback chain replans unconstrained:
                            // it clears the debt by construction and
                            // becomes the new reference.
                            full_quality_ms = after;
                            stalled_replans = 0;
                        } else {
                            let debt =
                                (after - full_quality_ms) / full_quality_ms.max(f64::MIN_POSITIVE);
                            if debt > self.config.stall_improvement {
                                stalled_replans += 1;
                            } else {
                                stalled_replans = 0;
                            }
                        }
                        moved = migration_bytes(&reference, &next);
                        incumbent = next;
                        action = Some(act);
                    }
                }
            }

            // The deployed plan for this epoch, priced under its workload.
            // Without a replan the deployment is the rebased incumbent; a
            // failed rebase leaves the stale incumbent (infeasible to
            // evaluate against the drifted task's table list).
            if !matches!(
                action,
                Some(ReplanAction::Full { .. })
                    | Some(ReplanAction::Incremental { .. })
                    | Some(ReplanAction::IncrementalFellBack { .. })
            ) {
                if let Ok(r) = rebased {
                    incumbent = r;
                }
            }
            let profiles = incumbent.device_profiles(task.batch_size());
            let estimated = self.sim.estimate_plan(&profiles);
            let truth = self.ground_truth(&task, &incumbent, epoch);
            let predicted_ms = estimated.total_ms();

            epochs.push(EpochRecord {
                epoch,
                report,
                action,
                predicted_ms,
                ground_truth_ms: truth.as_ref().map(PlanCosts::max_total_ms),
                migration_bytes: moved,
            });

            let hook_action = hook.on_epoch(&EpochObservation {
                epoch,
                task: &task,
                assignment: &profiles,
                estimated: &estimated,
                ground_truth: truth.as_ref(),
                trigger: trigger.as_ref(),
            });

            // Future detection compares against this epoch's deployment.
            deployed_task = task;
            baseline_ms = predicted_ms;
            if let HookAction::SwapModels(bundle) = hook_action {
                self.install_bundle(*bundle);
                // Re-price the baseline (and the stall reference) with the
                // new models so next epoch's regression ratio is not an
                // artifact of the swap itself.
                let repriced = self
                    .sim
                    .estimate_plan(&incumbent.device_profiles(deployed_task.batch_size()))
                    .total_ms();
                full_quality_ms *= repriced / baseline_ms.max(f64::MIN_POSITIVE);
                baseline_ms = repriced;
            }
        }

        Ok(ReplanHistory {
            strategy: self.config.strategy,
            epochs,
        })
    }

    /// The incremental path with the fallback chain as safety net.
    fn incremental_replan(
        &self,
        task: &nshard_data::ShardingTask,
        incumbent: &ShardingPlan,
        trigger_kind: &str,
        epoch: u64,
    ) -> Result<(ShardingPlan, ReplanAction), nshard_core::ResilientError> {
        let fall_back = |reason: String| -> Result<(ShardingPlan, ReplanAction), _> {
            let outcome = self.chain.shard_with_provenance(task)?;
            let action = ReplanAction::IncrementalFellBack {
                reason,
                provenance: outcome.provenance.attributed_to_replan(trigger_kind, epoch),
            };
            Ok((outcome.plan, action))
        };
        match self.planner.replan(&self.sim, task, incumbent) {
            Ok(out) => {
                let feasible = out
                    .plan
                    .device_bytes()
                    .iter()
                    .all(|&b| b <= task.mem_budget_bytes());
                if !feasible {
                    return fall_back("incremental plan still over budget".into());
                }
                let provenance = PlanProvenance {
                    source: PlanSource::Primary {
                        algorithm: "incremental".into(),
                    },
                    events: Vec::new(),
                    total_retries: 0,
                    total_backoff_ms: 0,
                    replan: None,
                    failover: None,
                }
                .attributed_to_replan(trigger_kind, epoch);
                Ok((
                    out.plan,
                    ReplanAction::Incremental {
                        delta: out.delta,
                        evaluated_plans: out.evaluated_plans,
                        provenance,
                    },
                ))
            }
            Err(e) => fall_back(format!("incremental replan failed: {e}")),
        }
    }

    /// Ground-truth per-device cost breakdown of `plan` for `task`,
    /// `None` when the cluster simulator rejects the plan (memory
    /// infeasibility).
    fn ground_truth(
        &self,
        task: &ShardingTask,
        plan: &ShardingPlan,
        epoch: u64,
    ) -> Option<PlanCosts> {
        let seed = mix(self.config.seed ^ mix(epoch.wrapping_add(0x9e37_79b9)));
        evaluate_plan(task, plan, &GpuSpec::default(), seed).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, TrainSettings};
    use nshard_data::{ShardingTask, TablePool};

    fn bundle(d: usize) -> CostModelBundle {
        let pool = TablePool::synthetic_dlrm(30, 1);
        CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        )
    }

    fn small_config(strategy: ReplanStrategy) -> OnlineConfig {
        OnlineConfig {
            // Long enough to cover the standard trace's spike at epoch 10.
            epochs: 12,
            strategy,
            thresholds: DriftThresholds {
                max_cost_regression: 0.05,
                ..DriftThresholds::default()
            },
            search: NeuroShardConfig {
                n: 2,
                k: 2,
                l: 3,
                m: 3,
                ..NeuroShardConfig::default()
            },
            seed: 11,
            ..OnlineConfig::default()
        }
    }

    fn drift() -> WorkloadDrift {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let base = ShardingTask::sample(&pool, 2, 10..=10, 32, 5);
        WorkloadDrift::standard(base, 42)
    }

    #[test]
    fn never_strategy_records_suppressed_triggers_and_moves_nothing() {
        let mut controller =
            OnlineController::new(bundle(2), drift(), small_config(ReplanStrategy::Never));
        let history = controller.run().unwrap();
        assert_eq!(history.epochs.len(), 12);
        assert_eq!(history.total_migration_bytes(), 0);
        assert_eq!(history.replans(), 0);
        for e in &history.epochs {
            assert!(matches!(e.action, None | Some(ReplanAction::Suppressed)));
        }
    }

    #[test]
    fn incremental_strategy_attributes_replans_to_triggers() {
        let mut controller = OnlineController::new(
            bundle(2),
            drift(),
            small_config(ReplanStrategy::Incremental),
        );
        let history = controller.run().unwrap();
        let replanned: Vec<&EpochRecord> = history
            .epochs
            .iter()
            .filter(|e| e.action.as_ref().is_some_and(|a| a.provenance().is_some()))
            .collect();
        assert!(
            !replanned.is_empty(),
            "the standard drift trace must trigger at least one replan in 12 epochs"
        );
        for e in replanned {
            let prov = e.action.as_ref().unwrap().provenance().unwrap();
            let replan = prov.replan.as_ref().expect("replan must be attributed");
            assert_eq!(replan.epoch, e.epoch);
            assert!(
                ["cost_regression", "imbalance", "memory", "rebase_failed"]
                    .contains(&replan.trigger_kind.as_str()),
                "unexpected trigger kind {}",
                replan.trigger_kind
            );
        }
    }

    #[test]
    fn stall_escape_forces_a_final_epoch_full_replan() {
        let mut config = small_config(ReplanStrategy::Incremental);
        config.final_full_replan_on_stall = true;
        // Any predicted cost counts as debt, so the first incremental
        // replan arms the hatch and the final epoch must go through the
        // full chain.
        config.stall_improvement = f64::NEG_INFINITY;
        let mut controller = OnlineController::new(bundle(2), drift(), config);
        let history = controller.run().unwrap();
        let last = history.epochs.last().expect("history is nonempty");
        let action = last.action.as_ref().expect("escape hatch must replan");
        assert!(
            matches!(action, ReplanAction::Full { .. }),
            "final epoch must replan through the full chain, got {action:?}"
        );
        let replan = action
            .provenance()
            .and_then(|p| p.replan.as_ref())
            .expect("escape replan must be attributed");
        assert_eq!(replan.epoch, last.epoch);

        // Off by default: the plain incremental run does not end in a
        // forced full replan on this trace.
        let plain = OnlineController::new(
            bundle(2),
            drift(),
            small_config(ReplanStrategy::Incremental),
        )
        .run()
        .unwrap();
        assert!(
            !matches!(
                plain.epochs.last().unwrap().action,
                Some(ReplanAction::Full { .. })
            ),
            "hatch must not fire unless armed"
        );
    }

    #[test]
    fn controller_loop_is_seed_deterministic() {
        let a = OnlineController::new(
            bundle(2),
            drift(),
            small_config(ReplanStrategy::Incremental),
        )
        .run()
        .unwrap();
        let b = OnlineController::new(
            bundle(2),
            drift(),
            small_config(ReplanStrategy::Incremental),
        )
        .run()
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn history_summaries_are_consistent() {
        let mut controller =
            OnlineController::new(bundle(2), drift(), small_config(ReplanStrategy::Full));
        let history = controller.run().unwrap();
        assert_eq!(
            history.total_migration_bytes(),
            history
                .epochs
                .iter()
                .map(|e| e.migration_bytes)
                .sum::<u64>()
        );
        let mean = history.mean_ground_truth_ms();
        assert!(mean.is_finite(), "all epochs should be feasible here");
        assert!(history.worst_ground_truth_ms().unwrap() >= mean);
    }
}
