//! # nshard-online — workload drift and migration-aware re-sharding
//!
//! The paper shards a *static* task: table features are measured once and
//! the plan ships. Production recommendation workloads are not static —
//! pool sizes grow, hot items shift, traffic breathes diurnally — and a
//! plan that was optimal at deploy time slowly (or suddenly) is not.
//!
//! This crate closes the loop:
//!
//! * [`drift`] — a seeded, bit-deterministic **workload drift generator**
//!   evolving a task's pooling factors, hash sizes and skew over discrete
//!   epochs via composable [`DriftModel`]s (gradual growth, hotspot
//!   shift, diurnal sinusoid, sudden spike). Synthetic drift stands in
//!   for real traffic traces the same way the cluster simulator stands in
//!   for real GPUs.
//! * [`detect`] — a **drift detector** pricing the incumbent plan under
//!   the current workload with the same pre-trained cost models used by
//!   the search, firing a typed [`ReplanTrigger`] when the plan's
//!   deploy-time assumptions break.
//! * [`incremental`] — a **migration-aware incremental planner** that
//!   warm-starts from the incumbent and hill-climbs over local moves
//!   (move / swap / split), minimizing predicted cost plus a
//!   λ·migration-bytes penalty, and emits a replayable [`PlanDelta`].
//! * [`controller`] — the [`OnlineController`] epoch loop: observe →
//!   detect → replan (through the `FallbackChain` safety net) → apply →
//!   ground-truth evaluate, recording a full [`ReplanHistory`].
//!
//! Everything is bit-deterministic per seed at any thread count.
//!
//! ## Example
//!
//! ```no_run
//! use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
//! use nshard_data::{ShardingTask, TablePool};
//! use nshard_online::{OnlineConfig, OnlineController, ReplanStrategy, WorkloadDrift};
//!
//! let pool = TablePool::synthetic_dlrm(856, 2023);
//! let bundle = CostModelBundle::pretrain(
//!     &pool, 4, &CollectConfig::default(), &TrainSettings::default(), 0,
//! );
//! let base = ShardingTask::sample(&pool, 4, 20..=40, 64, 7);
//! let drift = WorkloadDrift::standard(base, 42);
//! let config = OnlineConfig {
//!     epochs: 20,
//!     strategy: ReplanStrategy::Incremental,
//!     ..OnlineConfig::default()
//! };
//! let history = OnlineController::new(bundle, drift, config).run().unwrap();
//! println!(
//!     "replans: {}, bytes moved: {}",
//!     history.replans(),
//!     history.total_migration_bytes(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod detect;
pub mod drift;
pub mod incremental;

pub use controller::{
    EpochHook, EpochObservation, EpochRecord, HookAction, NoopHook, OnlineConfig, OnlineController,
    ReplanAction, ReplanHistory, ReplanStrategy,
};
pub use detect::{DriftDetector, DriftReport, DriftThresholds, ReplanTrigger};
pub use drift::{DriftFactors, DriftModel, WorkloadDrift};
pub use incremental::{
    DeltaStep, IncrementalConfig, IncrementalOutcome, IncrementalPlanner, PlanDelta,
};
