//! Drift detection: when does the incumbent plan need a replan?
//!
//! The detector compares the deployed plan's *assumptions* (the predicted
//! cost profile it was accepted with) against the plan *re-priced under
//! the current epoch's workload* — the incumbent rebased onto the drifted
//! task and run through the pre-trained [`CostSimulator`]. No ground-truth
//! execution is involved, mirroring the paper's search-time discipline: the
//! controller only pays for a simulator evaluation after a plan ships.
//!
//! Three typed triggers, in priority order:
//!
//! 1. [`ReplanTrigger::MemoryViolation`] — drifted hash sizes pushed a
//!    device over its budget; the plan is not merely slow, it is invalid.
//! 2. [`ReplanTrigger::CostRegression`] — the predicted max-device cost
//!    regressed by more than a threshold fraction of the deploy-time cost.
//! 3. [`ReplanTrigger::Imbalance`] — the predicted per-device compute
//!    spread (max/mean) crossed a straggler threshold even if the total
//!    has not regressed yet.
//!
//! Per-table feature deltas ([`TableProfile::workload_delta`]) are reported
//! for observability but deliberately do **not** trigger on their own: a
//! feature can drift a lot while the plan stays near-optimal, and replans
//! are paid for in moved bytes.

use serde::{Deserialize, Serialize};

use nshard_core::ShardingPlan;
use nshard_cost::CostSimulator;
use nshard_data::ShardingTask;
use nshard_sim::TableProfile;

/// Thresholds that arm the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftThresholds {
    /// Fire when the predicted plan cost exceeds the deploy-time predicted
    /// cost by this fraction (e.g. `0.1` = +10%).
    pub max_cost_regression: f64,
    /// Fire when predicted max device compute exceeds the mean by this
    /// ratio (e.g. `1.35` = the slowest device is 35% above average).
    pub imbalance_ratio: f64,
}

impl Default for DriftThresholds {
    fn default() -> Self {
        Self {
            max_cost_regression: 0.10,
            imbalance_ratio: 1.35,
        }
    }
}

/// Why the detector requested a replan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReplanTrigger {
    /// A device's drifted tables no longer fit its memory budget.
    MemoryViolation {
        /// Epoch at which the violation was observed.
        epoch: u64,
        /// The overloaded device.
        device: usize,
        /// Bytes resident on that device under the drifted workload.
        bytes: u64,
        /// The per-device budget.
        budget: u64,
    },
    /// Predicted cost regressed beyond the threshold.
    CostRegression {
        /// Epoch at which the regression crossed the threshold.
        epoch: u64,
        /// Deploy-time predicted cost of the incumbent, ms.
        baseline_ms: f64,
        /// Predicted cost under the current workload, ms.
        current_ms: f64,
        /// `(current - baseline) / baseline`.
        regression: f64,
    },
    /// Predicted per-device compute spread crossed the threshold.
    Imbalance {
        /// Epoch at which the imbalance crossed the threshold.
        epoch: u64,
        /// Predicted max/mean device-compute ratio.
        ratio: f64,
    },
}

impl ReplanTrigger {
    /// Stable short name for provenance attribution (`trigger_kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            ReplanTrigger::MemoryViolation { .. } => "memory",
            ReplanTrigger::CostRegression { .. } => "cost_regression",
            ReplanTrigger::Imbalance { .. } => "imbalance",
        }
    }

    /// The epoch the trigger fired at.
    pub fn epoch(&self) -> u64 {
        match *self {
            ReplanTrigger::MemoryViolation { epoch, .. }
            | ReplanTrigger::CostRegression { epoch, .. }
            | ReplanTrigger::Imbalance { epoch, .. } => epoch,
        }
    }
}

/// The detector's full observation for one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// The observed epoch.
    pub epoch: u64,
    /// Predicted total cost of the incumbent under the current workload, ms.
    pub predicted_cost_ms: f64,
    /// Deploy-time predicted cost the incumbent was accepted with, ms.
    pub baseline_cost_ms: f64,
    /// Predicted max/mean device-compute ratio under the current workload.
    pub imbalance: f64,
    /// Largest per-table workload delta vs. the deploy-time task.
    pub max_feature_delta: f64,
    /// The highest-priority trigger that fired, if any.
    pub trigger: Option<ReplanTrigger>,
}

/// The drift detector. Stateless between calls: the deploy-time reference
/// is passed in, so one detector serves any number of concurrent plans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    thresholds: DriftThresholds,
}

impl DriftDetector {
    /// A detector with the given thresholds.
    pub fn new(thresholds: DriftThresholds) -> Self {
        Self { thresholds }
    }

    /// The armed thresholds.
    pub fn thresholds(&self) -> &DriftThresholds {
        &self.thresholds
    }

    /// Observes one epoch: prices the rebased incumbent under the current
    /// workload and fires the highest-priority trigger whose threshold is
    /// crossed.
    ///
    /// * `rebased` — the incumbent plan rebased onto the current task (see
    ///   [`ShardingPlan::rebase`]).
    /// * `task` — the current epoch's workload.
    /// * `deployed_task` — the workload the incumbent was planned for (the
    ///   feature-delta reference).
    /// * `baseline_cost_ms` — the predicted cost the incumbent was
    ///   accepted with at deploy time.
    ///
    /// # Panics
    ///
    /// Panics if the simulator bundle's device count differs from the
    /// plan's (the same contract as [`CostSimulator::estimate_plan`]).
    pub fn observe(
        &self,
        sim: &CostSimulator,
        rebased: &ShardingPlan,
        task: &ShardingTask,
        deployed_task: &ShardingTask,
        baseline_cost_ms: f64,
        epoch: u64,
    ) -> DriftReport {
        // Feature drift: per-table workload deltas vs. deploy time.
        let max_feature_delta = task
            .tables()
            .iter()
            .zip(deployed_task.tables())
            .map(|(now, then)| {
                let now: TableProfile = now.profile(task.batch_size());
                let then: TableProfile = then.profile(deployed_task.batch_size());
                now.workload_delta(&then)
            })
            .fold(0.0, f64::max);

        // Price the incumbent under the current workload.
        let est = sim.estimate_plan(&rebased.device_profiles(task.batch_size()));
        let predicted_cost_ms = est.total_ms();
        let mean_compute =
            est.compute_per_device.iter().sum::<f64>() / est.compute_per_device.len().max(1) as f64;
        let imbalance = if mean_compute > 0.0 {
            est.max_compute_ms / mean_compute
        } else {
            1.0
        };

        // Priority 1: memory. An invalid plan always triggers.
        let mut trigger = rebased
            .device_bytes()
            .iter()
            .enumerate()
            .find(|&(_, &bytes)| bytes > task.mem_budget_bytes())
            .map(|(device, &bytes)| ReplanTrigger::MemoryViolation {
                epoch,
                device,
                bytes,
                budget: task.mem_budget_bytes(),
            });

        // Priority 2: cost regression vs. the deploy-time prediction.
        if trigger.is_none() && baseline_cost_ms > 0.0 {
            let regression = (predicted_cost_ms - baseline_cost_ms) / baseline_cost_ms;
            if regression > self.thresholds.max_cost_regression {
                trigger = Some(ReplanTrigger::CostRegression {
                    epoch,
                    baseline_ms: baseline_cost_ms,
                    current_ms: predicted_cost_ms,
                    regression,
                });
            }
        }

        // Priority 3: straggler spread.
        if trigger.is_none() && imbalance > self.thresholds.imbalance_ratio {
            trigger = Some(ReplanTrigger::Imbalance {
                epoch,
                ratio: imbalance,
            });
        }

        DriftReport {
            epoch,
            predicted_cost_ms,
            baseline_cost_ms,
            imbalance,
            max_feature_delta,
            trigger,
        }
    }
}

impl Default for DriftDetector {
    fn default() -> Self {
        Self::new(DriftThresholds::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
    use nshard_data::{TableConfig, TableId, TablePool};

    fn sim(d: usize) -> CostSimulator {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        CostSimulator::new(bundle)
    }

    fn t(id: u32, dim: u32) -> TableConfig {
        TableConfig::new(TableId(id), dim, 1 << 16, 10.0, 1.0)
    }

    fn task(tables: Vec<TableConfig>) -> ShardingTask {
        ShardingTask::new(tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 1024)
    }

    fn balanced_plan(task: &ShardingTask) -> ShardingPlan {
        ShardingPlan::new(
            vec![],
            task.tables().to_vec(),
            (0..task.num_tables()).map(|i| i % 2).collect(),
            2,
        )
        .unwrap()
    }

    #[test]
    fn quiet_workload_does_not_trigger() {
        let sim = sim(2);
        let task = task((0..6).map(|i| t(i, 32)).collect());
        let plan = balanced_plan(&task);
        let baseline = sim
            .estimate_plan(&plan.device_profiles(task.batch_size()))
            .total_ms();
        let report = DriftDetector::default().observe(&sim, &plan, &task, &task, baseline, 3);
        assert_eq!(report.trigger, None);
        assert_eq!(report.epoch, 3);
        assert!(report.max_feature_delta.abs() < 1e-12);
        assert_eq!(report.baseline_cost_ms, baseline);
    }

    #[test]
    fn cost_regression_fires_with_attribution_fields() {
        let sim = sim(2);
        let deployed = task((0..6).map(|i| t(i, 32)).collect());
        let plan = balanced_plan(&deployed);
        // Current workload: every pooling factor quadrupled.
        let drifted = task(
            deployed
                .tables()
                .iter()
                .map(|c| c.with_pooling_factor(c.pooling_factor() * 4.0))
                .collect(),
        );
        let rebased = plan.rebase(&drifted).unwrap();
        let baseline = sim
            .estimate_plan(&plan.device_profiles(deployed.batch_size()))
            .total_ms();
        let report = DriftDetector::new(DriftThresholds {
            max_cost_regression: 0.05,
            imbalance_ratio: 100.0,
        })
        .observe(&sim, &rebased, &drifted, &deployed, baseline, 9);
        match report.trigger {
            Some(ReplanTrigger::CostRegression {
                epoch, regression, ..
            }) => {
                assert_eq!(epoch, 9);
                assert!(regression > 0.05);
            }
            other => panic!("expected cost regression, got {other:?}"),
        }
        assert!(report.max_feature_delta >= 3.0 - 1e-9);
        assert_eq!(report.trigger.as_ref().unwrap().kind(), "cost_regression");
    }

    #[test]
    fn memory_violation_outranks_everything() {
        let sim = sim(2);
        let deployed = task((0..4).map(|i| t(i, 32)).collect());
        let plan = balanced_plan(&deployed);
        // Rows blow up 64x and the budget is tiny.
        let drifted = ShardingTask::new(
            deployed
                .tables()
                .iter()
                .map(|c| c.with_hash_size(c.hash_size() * 64))
                .collect(),
            2,
            deployed.tables()[0].memory_bytes() * 4,
            1024,
        );
        let rebased = plan.rebase(&drifted).unwrap();
        let report = DriftDetector::default().observe(&sim, &rebased, &drifted, &deployed, 1e-6, 2);
        assert!(matches!(
            report.trigger,
            Some(ReplanTrigger::MemoryViolation { device: 0, .. })
        ));
        assert_eq!(report.trigger.as_ref().unwrap().kind(), "memory");
        assert_eq!(report.trigger.as_ref().unwrap().epoch(), 2);
    }

    #[test]
    fn imbalance_fires_when_one_device_runs_hot() {
        let sim = sim(2);
        let deployed = task((0..6).map(|i| t(i, 32)).collect());
        let plan = balanced_plan(&deployed);
        // Device 0's tables (even indices) get 8x pooling.
        let drifted = task(
            deployed
                .tables()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i % 2 == 0 {
                        c.with_pooling_factor(c.pooling_factor() * 8.0)
                    } else {
                        *c
                    }
                })
                .collect(),
        );
        let rebased = plan.rebase(&drifted).unwrap();
        // Disarm cost regression so imbalance must carry the detection.
        let report = DriftDetector::new(DriftThresholds {
            max_cost_regression: f64::INFINITY,
            imbalance_ratio: 1.2,
        })
        .observe(&sim, &rebased, &drifted, &deployed, 1.0, 5);
        assert!(matches!(
            report.trigger,
            Some(ReplanTrigger::Imbalance { ratio, .. }) if ratio > 1.2
        ));
    }

    #[test]
    fn detector_is_deterministic() {
        let sim = sim(2);
        let task = task((0..6).map(|i| t(i, 32)).collect());
        let plan = balanced_plan(&task);
        let a = DriftDetector::default().observe(&sim, &plan, &task, &task, 1.0, 1);
        let b = DriftDetector::default().observe(&sim, &plan, &task, &task, 1.0, 1);
        assert_eq!(a, b);
    }
}
