//! Sharding plan types: column-wise plans, table-wise plans and their
//! combined result.

use serde::{Deserialize, Serialize};

use nshard_data::{ShardingTask, TableConfig};
use nshard_sim::TableProfile;

/// A column-wise sharding plan `c = [c₁, c₂, ..., cₘ]` (§3.3): at step `i`,
/// the table at index `cᵢ` of the *current* table list is split into two
/// column-wise halves; the first half replaces position `cᵢ` and the second
/// is appended to the end of the list.
pub type ColumnPlan = Vec<usize>;

/// How a table is split in two by one sharding step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitKind {
    /// Halve the embedding dimension (the paper's primary mechanism).
    Column,
    /// Halve the rows and the pooling workload (the paper's stated
    /// future-work extension for partitioning large tables).
    Row,
    /// Duplicate a hot table: both "halves" keep the full rows and
    /// dimension (memory is paid on every holder) but each answers half
    /// the batch's lookups, splitting the table's compute and all-to-all
    /// traffic across its holders.
    Replicate,
}

/// One step of a generalized sharding plan: split the table at `index`
/// (into the current, growing table list) along `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitStep {
    /// Index into the current table list.
    pub index: usize,
    /// Split direction.
    pub kind: SplitKind,
}

impl SplitStep {
    /// A column-wise step.
    pub fn column(index: usize) -> Self {
        Self {
            index,
            kind: SplitKind::Column,
        }
    }

    /// A row-wise step.
    pub fn row(index: usize) -> Self {
        Self {
            index,
            kind: SplitKind::Row,
        }
    }

    /// A replication step.
    pub fn replicate(index: usize) -> Self {
        Self {
            index,
            kind: SplitKind::Replicate,
        }
    }
}

/// A generalized sharding plan mixing column- and row-wise steps.
pub type SplitPlan = Vec<SplitStep>;

/// Errors produced while constructing or validating sharding plans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A column-plan step referenced a table index that does not exist.
    ColumnIndexOutOfRange {
        /// The offending step.
        step: usize,
        /// The index referenced.
        index: usize,
        /// The table-list length at that step.
        len: usize,
    },
    /// A column-plan step tried to split a table whose halved dimension
    /// would violate the kernel lane constraint.
    UnsplittableTable {
        /// The offending step.
        step: usize,
        /// The index referenced.
        index: usize,
        /// The table's dimension.
        dim: u32,
    },
    /// No memory-feasible table-wise plan exists (the "-" cells of
    /// Table 1).
    Infeasible {
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A plan failed validation against its task.
    Invalid {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ColumnIndexOutOfRange { step, index, len } => write!(
                f,
                "column plan step {step} references table {index} but only {len} tables exist"
            ),
            PlanError::UnsplittableTable { step, index, dim } => write!(
                f,
                "column plan step {step} cannot split table {index} of dimension {dim}"
            ),
            PlanError::Infeasible { reason } => write!(f, "no feasible plan: {reason}"),
            PlanError::Invalid { reason } => write!(f, "invalid plan: {reason}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Applies a column-wise plan to a table list, producing the sharded list
/// of `T + |plan|` tables.
///
/// # Errors
///
/// [`PlanError::ColumnIndexOutOfRange`] or [`PlanError::UnsplittableTable`]
/// when a step is illegal.
///
/// ```
/// use nshard_core::apply_column_plan;
/// use nshard_data::{TableConfig, TableId};
///
/// let tables = vec![TableConfig::new(TableId(0), 64, 1000, 5.0, 1.0)];
/// let sharded = apply_column_plan(&tables, &[0, 0])?;
/// assert_eq!(sharded.len(), 3);
/// // First split: 64 → 32+32; second split of index 0: 32 → 16+16.
/// assert_eq!(sharded.iter().map(|t| t.dim()).collect::<Vec<_>>(), vec![16, 32, 16]);
/// # Ok::<(), nshard_core::PlanError>(())
/// ```
pub fn apply_column_plan(
    tables: &[TableConfig],
    plan: &[usize],
) -> Result<Vec<TableConfig>, PlanError> {
    let steps: SplitPlan = plan.iter().map(|&i| SplitStep::column(i)).collect();
    apply_split_plan(tables, &steps)
}

/// Applies a generalized (column- and/or row-wise) split plan to a table
/// list, producing the sharded list of `T + |plan|` tables.
///
/// # Errors
///
/// [`PlanError::ColumnIndexOutOfRange`] or [`PlanError::UnsplittableTable`]
/// when a step is illegal.
///
/// ```
/// use nshard_core::{apply_split_plan, plan::SplitStep};
/// use nshard_data::{TableConfig, TableId};
///
/// let tables = vec![TableConfig::new(TableId(0), 64, 1 << 20, 8.0, 1.0)];
/// let sharded = apply_split_plan(&tables, &[SplitStep::column(0), SplitStep::row(0)])?;
/// assert_eq!(sharded.len(), 3);
/// assert_eq!(sharded[0].dim(), 32);             // column-halved...
/// assert_eq!(sharded[0].hash_size(), 1 << 19);  // ...then row-halved
/// # Ok::<(), nshard_core::PlanError>(())
/// ```
pub fn apply_split_plan(
    tables: &[TableConfig],
    plan: &[SplitStep],
) -> Result<Vec<TableConfig>, PlanError> {
    let mut list = tables.to_vec();
    for (step, &SplitStep { index, kind }) in plan.iter().enumerate() {
        if index >= list.len() {
            return Err(PlanError::ColumnIndexOutOfRange {
                step,
                index,
                len: list.len(),
            });
        }
        let halves = match kind {
            SplitKind::Column => list[index].split_columns(),
            SplitKind::Row => list[index].split_rows(),
            SplitKind::Replicate => list[index].replicate(),
        };
        let (a, b) = halves.ok_or(PlanError::UnsplittableTable {
            step,
            index,
            dim: list[index].dim(),
        })?;
        list[index] = a;
        list.push(b);
    }
    Ok(list)
}

/// A complete sharding plan: the column-wise sharded table list plus the
/// device assignment of every sharded table.
///
/// # Example
///
/// ```
/// use nshard_core::ShardingPlan;
/// use nshard_data::{TableConfig, TableId};
///
/// let tables = vec![
///     TableConfig::new(TableId(0), 64, 1000, 5.0, 1.0),
///     TableConfig::new(TableId(1), 32, 2000, 3.0, 1.0),
/// ];
/// let plan = ShardingPlan::new(vec![], tables, vec![0, 1], 2)?;
/// assert_eq!(plan.num_devices(), 2);
/// assert_eq!(plan.device_tables()[0].len(), 1);
/// # Ok::<(), nshard_core::PlanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingPlan {
    split_plan: SplitPlan,
    sharded_tables: Vec<TableConfig>,
    device_of: Vec<usize>,
    num_devices: usize,
}

impl ShardingPlan {
    /// Builds a plan from its parts.
    ///
    /// # Errors
    ///
    /// [`PlanError::Invalid`] when lengths disagree or a device index is out
    /// of range.
    pub fn new(
        column_plan: ColumnPlan,
        sharded_tables: Vec<TableConfig>,
        device_of: Vec<usize>,
        num_devices: usize,
    ) -> Result<Self, PlanError> {
        let split_plan = column_plan.into_iter().map(SplitStep::column).collect();
        Self::with_split_plan(split_plan, sharded_tables, device_of, num_devices)
    }

    /// Builds a plan from a generalized (column- and/or row-wise) split
    /// plan.
    ///
    /// # Errors
    ///
    /// [`PlanError::Invalid`] when lengths disagree or a device index is out
    /// of range.
    pub fn with_split_plan(
        split_plan: SplitPlan,
        sharded_tables: Vec<TableConfig>,
        device_of: Vec<usize>,
        num_devices: usize,
    ) -> Result<Self, PlanError> {
        if sharded_tables.len() != device_of.len() {
            return Err(PlanError::Invalid {
                reason: format!(
                    "{} tables but {} device assignments",
                    sharded_tables.len(),
                    device_of.len()
                ),
            });
        }
        if num_devices == 0 {
            return Err(PlanError::Invalid {
                reason: "plan needs at least one device".into(),
            });
        }
        if let Some(&bad) = device_of.iter().find(|&&d| d >= num_devices) {
            return Err(PlanError::Invalid {
                reason: format!("device index {bad} out of range for {num_devices} devices"),
            });
        }
        Ok(Self {
            split_plan,
            sharded_tables,
            device_of,
            num_devices,
        })
    }

    /// The split plan (column- and/or row-wise steps) that produced the
    /// sharded table list.
    pub fn split_plan(&self) -> &[SplitStep] {
        &self.split_plan
    }

    /// The column-wise sharded tables, in list order.
    pub fn sharded_tables(&self) -> &[TableConfig] {
        &self.sharded_tables
    }

    /// `device_of[i]` is the device of sharded table `i`.
    pub fn device_of(&self) -> &[usize] {
        &self.device_of
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Number of column-wise sharding steps taken.
    pub fn num_column_splits(&self) -> usize {
        self.split_plan
            .iter()
            .filter(|s| s.kind == SplitKind::Column)
            .count()
    }

    /// Number of row-wise sharding steps taken.
    pub fn num_row_splits(&self) -> usize {
        self.split_plan
            .iter()
            .filter(|s| s.kind == SplitKind::Row)
            .count()
    }

    /// Number of replication steps taken.
    pub fn num_replications(&self) -> usize {
        self.split_plan
            .iter()
            .filter(|s| s.kind == SplitKind::Replicate)
            .count()
    }

    /// Tables grouped by device.
    pub fn device_tables(&self) -> Vec<Vec<TableConfig>> {
        let mut out = vec![Vec::new(); self.num_devices];
        for (table, &d) in self.sharded_tables.iter().zip(&self.device_of) {
            out[d].push(*table);
        }
        out
    }

    /// Simulator profiles grouped by device, at the given batch size.
    pub fn device_profiles(&self, batch_size: u32) -> Vec<Vec<TableProfile>> {
        let mut out = vec![Vec::new(); self.num_devices];
        for (table, &d) in self.sharded_tables.iter().zip(&self.device_of) {
            out[d].push(table.profile(batch_size));
        }
        out
    }

    /// Per-device memory use in bytes.
    pub fn device_bytes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.num_devices];
        for (table, &d) in self.sharded_tables.iter().zip(&self.device_of) {
            out[d] += table.memory_bytes();
        }
        out
    }

    /// Per-device **communication-effective** dimension sums: replicated
    /// shards count at `dim / replicas` (each holder moves only its share
    /// of the traffic); ordinary shards count their full dimension.
    pub fn device_dims(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_devices];
        for (table, &d) in self.sharded_tables.iter().zip(&self.device_of) {
            out[d] += table.comm_dim();
        }
        out
    }

    /// Rebases this plan onto a (typically drifted) task: re-applies the
    /// recorded split plan to the task's current tables and keeps the
    /// device assignment. This is how an incumbent plan is priced under a
    /// new workload — the placement is unchanged, but every shard carries
    /// the task's current pooling factors and hash sizes.
    ///
    /// The task must have the same table count as the one the plan was
    /// built for (drift evolves table *parameters*, not the table list).
    ///
    /// # Errors
    ///
    /// [`PlanError::Invalid`] on a table-count mismatch, or a split-plan
    /// error when a recorded split is no longer legal for the drifted
    /// tables (e.g. a row split of a table that shrank below the minimum
    /// shard size).
    pub fn rebase(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        let expected = task.num_tables() + self.split_plan.len();
        if expected != self.sharded_tables.len() {
            return Err(PlanError::Invalid {
                reason: format!(
                    "cannot rebase: task has {} tables but the plan shards {} into {}",
                    task.num_tables(),
                    self.sharded_tables.len() - self.split_plan.len(),
                    self.sharded_tables.len()
                ),
            });
        }
        let sharded = apply_split_plan(task.tables(), &self.split_plan)?;
        Self::with_split_plan(
            self.split_plan.clone(),
            sharded,
            self.device_of.clone(),
            self.num_devices,
        )
    }

    /// Per-`(TableId, device)` byte masses of this plan — the embedding
    /// bytes of each logical table resident on each device. Column- and
    /// row-wise shards of one table pool into the same entry, so the map is
    /// invariant to *how* a table's bytes are split, only to *where* they
    /// live.
    fn device_mass(&self) -> std::collections::HashMap<(nshard_data::TableId, usize), u64> {
        let mut mass = std::collections::HashMap::new();
        for (table, &d) in self.sharded_tables.iter().zip(&self.device_of) {
            *mass.entry((table.id(), d)).or_insert(0u64) += table.memory_bytes();
        }
        mass
    }

    /// Validates the plan against a task: same device count, every device
    /// within the memory budget, and the sharded tables derivable from the
    /// task's tables via the recorded column plan.
    ///
    /// # Errors
    ///
    /// [`PlanError::Invalid`] describing the first violated constraint.
    pub fn validate(&self, task: &ShardingTask) -> Result<(), PlanError> {
        if self.num_devices != task.num_devices() {
            return Err(PlanError::Invalid {
                reason: format!(
                    "plan has {} devices, task wants {}",
                    self.num_devices,
                    task.num_devices()
                ),
            });
        }
        let expected = apply_split_plan(task.tables(), &self.split_plan)?;
        if expected != self.sharded_tables {
            return Err(PlanError::Invalid {
                reason: "sharded tables do not match the column plan applied to the task".into(),
            });
        }
        for (d, &bytes) in self.device_bytes().iter().enumerate() {
            let budget = task.budget_of(d);
            if bytes > budget {
                return Err(PlanError::Invalid {
                    reason: format!(
                        "device {d} holds {bytes} bytes, exceeding its {budget} byte budget"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// The embedding bytes that must be *moved between devices* to transform
/// plan `from` into plan `to` — the transport cost of a re-sharding step.
///
/// Both plans should describe the same task (same logical tables and device
/// count); bytes are counted per `(TableId, device)` mass, so a table split
/// differently but left on the same device moves nothing, while a shard
/// relocated to another device moves its full byte size. The count is the
/// sum of positive per-device inflows, i.e. every byte is counted once at
/// its destination.
///
/// ```
/// use nshard_core::{migration_bytes, ShardingPlan};
/// use nshard_data::{TableConfig, TableId};
///
/// let tables = vec![
///     TableConfig::new(TableId(0), 64, 1000, 5.0, 1.0),
///     TableConfig::new(TableId(1), 32, 2000, 3.0, 1.0),
/// ];
/// let a = ShardingPlan::new(vec![], tables.clone(), vec![0, 1], 2)?;
/// let b = ShardingPlan::new(vec![], tables.clone(), vec![1, 1], 2)?;
/// assert_eq!(migration_bytes(&a, &a), 0);
/// assert_eq!(migration_bytes(&a, &b), tables[0].memory_bytes());
/// # Ok::<(), nshard_core::PlanError>(())
/// ```
pub fn migration_bytes(from: &ShardingPlan, to: &ShardingPlan) -> u64 {
    let from_mass = from.device_mass();
    to.device_mass()
        .into_iter()
        .map(|(key, to_bytes)| to_bytes.saturating_sub(from_mass.get(&key).copied().unwrap_or(0)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{DevicePool, DeviceProfile, TableId};

    fn t(id: u32, dim: u32) -> TableConfig {
        TableConfig::new(TableId(id), dim, 1000, 5.0, 1.0)
    }

    #[test]
    fn apply_empty_plan_is_identity() {
        let tables = vec![t(0, 64), t(1, 32)];
        assert_eq!(apply_column_plan(&tables, &[]).unwrap(), tables);
    }

    #[test]
    fn apply_single_split() {
        let tables = vec![t(0, 64), t(1, 32)];
        let out = apply_column_plan(&tables, &[0]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].dim(), 32);
        assert_eq!(out[1].dim(), 32);
        assert_eq!(out[2].dim(), 32);
        assert_eq!(out[2].id(), TableId(0)); // appended half keeps identity
    }

    #[test]
    fn apply_chained_splits_track_growing_list() {
        let tables = vec![t(0, 64)];
        // Split 0 (64→32,32 at [0],[1]); split 1 (the appended half).
        let out = apply_column_plan(&tables, &[0, 1]).unwrap();
        assert_eq!(
            out.iter().map(|x| x.dim()).collect::<Vec<_>>(),
            vec![32, 16, 16]
        );
    }

    #[test]
    fn out_of_range_step_errors() {
        let err = apply_column_plan(&[t(0, 64)], &[3]).unwrap_err();
        assert!(matches!(
            err,
            PlanError::ColumnIndexOutOfRange { index: 3, .. }
        ));
    }

    #[test]
    fn unsplittable_table_errors() {
        let err = apply_column_plan(&[t(0, 4)], &[0]).unwrap_err();
        assert!(matches!(err, PlanError::UnsplittableTable { dim: 4, .. }));
    }

    #[test]
    fn plan_groups_by_device() {
        let tables = vec![t(0, 64), t(1, 32), t(2, 16)];
        let plan = ShardingPlan::new(vec![], tables, vec![1, 0, 1], 2).unwrap();
        let by_dev = plan.device_tables();
        assert_eq!(by_dev[0].len(), 1);
        assert_eq!(by_dev[1].len(), 2);
        assert_eq!(plan.device_dims(), vec![32.0, 80.0]);
        let bytes = plan.device_bytes();
        assert_eq!(bytes[0], 32 * 1000 * 4);
        assert_eq!(bytes[1], (64 + 16) * 1000 * 4);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(matches!(
            ShardingPlan::new(vec![], vec![t(0, 8)], vec![0, 1], 2),
            Err(PlanError::Invalid { .. })
        ));
    }

    #[test]
    fn device_out_of_range_rejected() {
        assert!(ShardingPlan::new(vec![], vec![t(0, 8)], vec![5], 2).is_err());
    }

    #[test]
    fn validate_against_task() {
        let pool_tables = vec![t(0, 64), t(1, 32)];
        let task = ShardingTask::new(pool_tables.clone(), 2, 1 << 30, 1024);
        let sharded = apply_column_plan(&pool_tables, &[0]).unwrap();
        let plan = ShardingPlan::new(vec![0], sharded, vec![0, 1, 0], 2).unwrap();
        assert!(plan.validate(&task).is_ok());

        // Wrong device count.
        let bad = ShardingPlan::new(vec![], pool_tables.clone(), vec![0, 0], 1).unwrap();
        assert!(bad.validate(&task).is_err());
    }

    #[test]
    fn validate_catches_memory_overflow() {
        let big = TableConfig::new(TableId(0), 64, 1 << 20, 5.0, 1.0); // 256 MB
        let task = ShardingTask::new(vec![big], 1, 1024, 1024); // 1 KB budget
        let plan = ShardingPlan::new(vec![], vec![big], vec![0], 1).unwrap();
        assert!(matches!(
            plan.validate(&task),
            Err(PlanError::Invalid { .. })
        ));
    }

    #[test]
    fn rebase_carries_drifted_parameters() {
        let tables = vec![t(0, 64), t(1, 32)];
        let sharded = apply_column_plan(&tables, &[0]).unwrap();
        let plan = ShardingPlan::new(vec![0], sharded, vec![0, 1, 0], 2).unwrap();

        // Drift: table 0's pooling factor doubles, table 1's rows double.
        let drifted_tables = vec![
            tables[0].with_pooling_factor(10.0),
            tables[1].with_hash_size(2000),
        ];
        let drifted = ShardingTask::new(drifted_tables, 2, 1 << 30, 1024);
        let rebased = plan.rebase(&drifted).unwrap();
        assert_eq!(rebased.device_of(), plan.device_of());
        assert_eq!(rebased.split_plan(), plan.split_plan());
        assert_eq!(rebased.sharded_tables()[0].pooling_factor(), 10.0);
        assert_eq!(rebased.sharded_tables()[1].hash_size(), 2000);
        assert!(rebased.validate(&drifted).is_ok());
    }

    #[test]
    fn rebase_rejects_table_count_mismatch() {
        let plan = ShardingPlan::new(vec![], vec![t(0, 64)], vec![0], 1).unwrap();
        let task = ShardingTask::new(vec![t(0, 64), t(1, 32)], 1, 1 << 30, 1024);
        assert!(matches!(plan.rebase(&task), Err(PlanError::Invalid { .. })));
    }

    #[test]
    fn migration_bytes_counts_moved_mass_only() {
        let tables = vec![t(0, 64), t(1, 32), t(2, 16)];
        let a = ShardingPlan::new(vec![], tables.clone(), vec![0, 1, 1], 2).unwrap();
        // Identity moves nothing.
        assert_eq!(migration_bytes(&a, &a), 0);
        // Moving table 2 to device 0 moves exactly its bytes.
        let b = ShardingPlan::new(vec![], tables.clone(), vec![0, 1, 0], 2).unwrap();
        assert_eq!(migration_bytes(&a, &b), tables[2].memory_bytes());
        // A swap moves both tables' bytes.
        let c = ShardingPlan::new(vec![], tables.clone(), vec![1, 0, 1], 2).unwrap();
        assert_eq!(
            migration_bytes(&a, &c),
            tables[0].memory_bytes() + tables[1].memory_bytes()
        );
    }

    #[test]
    fn migration_bytes_ignores_same_device_splits() {
        let tables = vec![t(0, 64)];
        let whole = ShardingPlan::new(vec![], tables.clone(), vec![0], 1).unwrap();
        let sharded = apply_column_plan(&tables, &[0]).unwrap();
        let split = ShardingPlan::new(vec![0], sharded, vec![0, 0], 1).unwrap();
        // Splitting in place relocates nothing.
        assert_eq!(migration_bytes(&whole, &split), 0);
    }

    #[test]
    fn migration_bytes_charges_relocated_split_halves() {
        let tables = vec![t(0, 64)];
        let whole2 = ShardingPlan::new(vec![], tables.clone(), vec![0], 2).unwrap();
        let sharded = apply_column_plan(&tables, &[0]).unwrap();
        let half_moved = ShardingPlan::new(vec![0], sharded.clone(), vec![0, 1], 2).unwrap();
        // One half relocated: half the table's bytes move.
        assert_eq!(
            migration_bytes(&whole2, &half_moved),
            sharded[1].memory_bytes()
        );
    }

    #[test]
    fn replicate_step_duplicates_hot_tables() {
        let hot = TableConfig::new(TableId(0), 64, 1000, 8.0, 1.0);
        let out = apply_split_plan(&[hot], &[SplitStep::replicate(0)]).unwrap();
        assert_eq!(out.len(), 2);
        for replica in &out {
            assert_eq!(replica.dim(), 64); // full columns on every holder
            assert_eq!(replica.hash_size(), 1000); // full rows on every holder
            assert_eq!(replica.pooling_factor(), 4.0); // traffic split
            assert_eq!(replica.replicas(), 2);
            assert_eq!(replica.memory_bytes(), hot.memory_bytes());
        }
    }

    #[test]
    fn replicate_step_rejects_cold_tables() {
        let cold = TableConfig::new(TableId(0), 64, 1000, 1.5, 1.0);
        let err = apply_split_plan(&[cold], &[SplitStep::replicate(0)]).unwrap_err();
        assert!(matches!(err, PlanError::UnsplittableTable { index: 0, .. }));
    }

    #[test]
    fn num_replications_counts_only_replicate_steps() {
        let tables = vec![TableConfig::new(TableId(0), 64, 1 << 20, 8.0, 1.0)];
        let steps = vec![
            SplitStep::column(0),
            SplitStep::replicate(0),
            SplitStep::row(1),
        ];
        let sharded = apply_split_plan(&tables, &steps).unwrap();
        let plan = ShardingPlan::with_split_plan(steps, sharded, vec![0, 1, 2, 3], 4).unwrap();
        assert_eq!(plan.num_column_splits(), 1);
        assert_eq!(plan.num_replications(), 1);
        assert_eq!(plan.num_row_splits(), 1);
    }

    #[test]
    fn device_dims_weight_replicas_by_comm_share() {
        let hot = TableConfig::new(TableId(0), 64, 1000, 8.0, 1.0);
        let steps = vec![SplitStep::replicate(0)];
        let sharded = apply_split_plan(&[hot], &steps).unwrap();
        let plan = ShardingPlan::with_split_plan(steps, sharded, vec![0, 1], 2).unwrap();
        // Each of the two replicas carries half the table's traffic.
        assert_eq!(plan.device_dims(), vec![32.0, 32.0]);
        // But memory is paid in full on both holders.
        assert_eq!(plan.device_bytes(), vec![hot.memory_bytes(); 2]);
    }

    #[test]
    fn validate_respects_per_device_budgets() {
        let small = t(0, 64); // 256 KB
        let big = TableConfig::new(TableId(1), 64, 1 << 20, 5.0, 1.0); // 256 MB
        let pool = DevicePool::new(
            vec![
                DeviceProfile::new(1 << 30, 1.0, 0), // roomy
                DeviceProfile::new(1 << 20, 1.0, 0), // 1 MB: fits `small` only
            ],
            1.0,
        );
        let task = ShardingTask::new(vec![small, big], 2, 1 << 30, 1024).with_devices(pool.clone());

        let good = ShardingPlan::new(vec![], vec![small, big], vec![1, 0], 2).unwrap();
        assert!(good.validate(&task).is_ok());

        // Same plan flipped: the big table lands on the tight device.
        let bad = ShardingPlan::new(vec![], vec![small, big], vec![0, 1], 2).unwrap();
        let err = bad.validate(&task).unwrap_err();
        assert!(err.to_string().contains("device 1"));
    }

    #[test]
    fn migration_bytes_charges_full_replica_mass() {
        let hot = TableConfig::new(TableId(0), 64, 1000, 8.0, 1.0);
        let whole = ShardingPlan::new(vec![], vec![hot], vec![0], 2).unwrap();
        let steps = vec![SplitStep::replicate(0)];
        let sharded = apply_split_plan(&[hot], &steps).unwrap();
        let replicated = ShardingPlan::with_split_plan(steps, sharded, vec![0, 1], 2).unwrap();
        // Standing up the new replica ships the full table to device 1.
        assert_eq!(migration_bytes(&whole, &replicated), hot.memory_bytes());
        // Tearing it down moves nothing (bytes are counted at destinations).
        assert_eq!(migration_bytes(&replicated, &whole), 0);
    }

    #[test]
    fn replicated_plans_rebase_onto_drifted_tasks() {
        let hot = TableConfig::new(TableId(0), 64, 1000, 8.0, 1.0);
        let steps = vec![SplitStep::replicate(0)];
        let sharded = apply_split_plan(&[hot], &steps).unwrap();
        let plan = ShardingPlan::with_split_plan(steps, sharded, vec![0, 1], 2).unwrap();

        let drifted_task = ShardingTask::new(vec![hot.with_pooling_factor(16.0)], 2, 1 << 30, 1024);
        let rebased = plan.rebase(&drifted_task).unwrap();
        // The replicate step re-applies: both replicas see the drifted
        // pooling factor halved, and stay flagged as replicas.
        for replica in rebased.sharded_tables() {
            assert_eq!(replica.pooling_factor(), 8.0);
            assert_eq!(replica.replicas(), 2);
        }
        assert!(rebased.validate(&drifted_task).is_ok());
    }

    #[test]
    fn error_display() {
        let e = PlanError::Infeasible {
            reason: "tables too large".into(),
        };
        assert!(e.to_string().contains("tables too large"));
    }
}
