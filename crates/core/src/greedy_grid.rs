//! Table-wise sharding: greedy allocation with grid search over the max
//! device dimension (Algorithm 2, the inner loop).
//!
//! Two observations drive the design (§2):
//!
//! * multi-table computation costs are non-linear (Observation 2), so the
//!   allocator balances **predicted** device costs from the neural model
//!   instead of additive heuristics;
//! * the max communication cost tracks the max device dimension
//!   (Observation 3), so communication balance is enforced as a
//!   `max_dim` *constraint* whose best value is found by grid search —
//!   from `M_s` (the average device dimension) to `M_e = 1.5 · M_s` in `M`
//!   steps.
//!
//! One deliberate extension over the paper's pseudocode: an unconstrained
//! (`max_dim = ∞`) grid point is always evaluated as a fallback, so the
//! inner loop degrades gracefully to memory-only greedy allocation when
//! every finite threshold is infeasible (e.g. more tables than any device
//! can hold under `1.5 · M_s`). This never changes the optimum — the
//! fallback competes on estimated cost like any other grid point.

use serde::{Deserialize, Serialize};

use nshard_cost::{CostSimulator, DeviceScales, TableSetKey};
use nshard_data::TableConfig;
use nshard_sim::TableProfile;

use crate::plan::PlanError;
use crate::pool::WorkPool;

/// Result of one inner-loop search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSearchResult {
    /// Estimated embedding cost of the best table-wise plan, ms.
    pub estimated_cost_ms: f64,
    /// Device assignment aligned with the input (sharded) table order.
    pub device_of: Vec<usize>,
    /// The `max_dim` threshold that produced the best plan; `None` when the
    /// unconstrained fallback won.
    pub max_dim_used: Option<f64>,
}

/// The greedy grid-search allocator (Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct GreedyGridSearch<'a> {
    sim: &'a CostSimulator,
    /// Grid granularity `M` (the paper uses 11).
    m_steps: usize,
    /// When `false`, only the unconstrained pass runs — the "w/o greedy
    /// grid search" ablation of Table 3.
    use_grid: bool,
    /// Worker threads for the grid sweep; `0` = auto (see
    /// [`crate::pool::resolve_threads`]).
    threads: usize,
}

impl<'a> GreedyGridSearch<'a> {
    /// Creates an inner-loop searcher over the given cost simulator with
    /// grid granularity `m_steps`.
    pub fn new(sim: &'a CostSimulator, m_steps: usize) -> Self {
        Self {
            sim,
            m_steps: m_steps.max(1),
            use_grid: true,
            threads: 0,
        }
    }

    /// Disables the grid (ablation): a single memory-constrained greedy
    /// pass with no dimension threshold.
    pub fn without_grid(mut self) -> Self {
        self.use_grid = false;
        self
    }

    /// Sets the worker-thread count for the grid sweep (`0` = auto). The
    /// best plan is identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Searches for the best table-wise plan of `tables` (already
    /// column-wise sharded) on `num_devices` devices.
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when even the unconstrained greedy pass
    /// cannot satisfy the memory budget.
    pub fn search(
        &self,
        tables: &[TableConfig],
        num_devices: usize,
        mem_budget_bytes: u64,
        batch_size: u32,
    ) -> Result<GridSearchResult, PlanError> {
        let budgets = vec![mem_budget_bytes; num_devices];
        self.search_with_devices(tables, num_devices, &budgets, None, batch_size)
    }

    /// Heterogeneous-fleet variant of [`Self::search`]: per-device memory
    /// budgets, and optional per-device compute/bandwidth scales applied to
    /// every prediction during allocation and scoring.
    ///
    /// With uniform budgets and no scales this is **bit-identical** to
    /// [`Self::search`] (the homogeneous path multiplies and divides by
    /// exact `1.0`s, which are bitwise identities for finite floats).
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when even the unconstrained greedy pass
    /// cannot satisfy the per-device memory budgets.
    pub fn search_with_devices(
        &self,
        tables: &[TableConfig],
        num_devices: usize,
        budgets: &[u64],
        scales: Option<&DeviceScales>,
        batch_size: u32,
    ) -> Result<GridSearchResult, PlanError> {
        if num_devices == 0 {
            return Err(PlanError::Invalid {
                reason: "need at least one device".into(),
            });
        }
        if budgets.len() != num_devices {
            return Err(PlanError::Invalid {
                reason: format!(
                    "{} per-device budgets for {num_devices} devices",
                    budgets.len()
                ),
            });
        }
        if let Some(s) = scales {
            if s.len() != num_devices {
                return Err(PlanError::Invalid {
                    reason: format!("{} device scales for {num_devices} devices", s.len()),
                });
            }
        }
        let profiles: Vec<TableProfile> = tables.iter().map(|t| t.profile(batch_size)).collect();

        // Sort once, descending by predicted single-table cost (line 3) —
        // with one robustness tweak: shards larger than half the device
        // budget are placed first (largest bytes first), because they can
        // only go on near-empty devices. Without this, a big-but-cheap
        // shard (e.g. a row-wise half of a tall dim-4 table) sorts last and
        // finds every device already occupied. For paper-style workloads,
        // big tables are also costly, so this rarely changes the order.
        let mut order: Vec<usize> = (0..tables.len()).collect();
        let single_costs: Vec<f64> = self.sim.single_table_cost_batch(&profiles);
        let half_budget = budgets.iter().copied().max().unwrap_or(0) / 2;
        order.sort_by(|&a, &b| {
            let huge_a = profiles[a].memory_bytes() > half_budget;
            let huge_b = profiles[b].memory_bytes() > half_budget;
            match (huge_a, huge_b) {
                (true, true) => profiles[b].memory_bytes().cmp(&profiles[a].memory_bytes()),
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => single_costs[b]
                    .partial_cmp(&single_costs[a])
                    .expect("costs are finite"),
            }
        });

        // Grid of max_dim thresholds: M_s = average *effective* device
        // dimension (replicas count at their traffic share; slow links
        // inflate a device's effective load, so the denominator is total
        // bandwidth rather than the device count), M_e = 1.5 * M_s, plus
        // the unconstrained fallback. On homogeneous fleets this reduces
        // exactly to total_dim / num_devices.
        let total_dim: f64 = profiles.iter().map(TableProfile::comm_dim).sum();
        let total_bw: f64 = match scales {
            Some(s) => (0..num_devices).map(|g| s.bandwidth_scale(g)).sum(),
            None => (0..num_devices).map(|_| 1.0).sum(),
        };
        let m_s = total_dim / total_bw;
        let m_e = 1.5 * m_s;
        let mut thresholds: Vec<Option<f64>> = Vec::with_capacity(self.m_steps + 1);
        if self.use_grid {
            if self.m_steps == 1 {
                thresholds.push(Some(m_s));
            } else {
                let step = (m_e - m_s) / (self.m_steps as f64 - 1.0);
                for i in 0..self.m_steps {
                    thresholds.push(Some(m_s + step * i as f64));
                }
            }
        }
        thresholds.push(None); // unconstrained fallback

        // Phase 1: run the greedy allocator for every grid point, in
        // parallel. Each pass depends only on deterministic cache values,
        // so the assignments are identical at any thread count.
        let pool = WorkPool::new(self.threads);
        let passes: Vec<Option<Vec<usize>>> = pool.map(&thresholds, |&threshold| {
            self.greedy_assign(&profiles, &order, num_devices, budgets, scales, threshold)
        });

        // Phase 2: evaluate every feasible assignment with one batched
        // call into the pre-trained models, then fold in grid order (first
        // strict improvement wins — exactly the serial tie-break).
        let feasible: Vec<(Option<f64>, Vec<usize>)> = thresholds
            .into_iter()
            .zip(passes)
            .filter_map(|(threshold, pass)| pass.map(|device_of| (threshold, device_of)))
            .collect();
        let assignments: Vec<Vec<Vec<TableProfile>>> = feasible
            .iter()
            .map(|(_, device_of)| {
                let mut assignment: Vec<Vec<TableProfile>> = vec![Vec::new(); num_devices];
                for (i, &d) in device_of.iter().enumerate() {
                    assignment[d].push(profiles[i]);
                }
                assignment
            })
            .collect();
        let estimates = self.sim.estimate_plan_batch_scaled(&assignments, scales);

        let mut best: Option<GridSearchResult> = None;
        for ((threshold, device_of), est) in feasible.into_iter().zip(estimates) {
            let cost = est.total_ms();
            let better = best.as_ref().is_none_or(|b| cost < b.estimated_cost_ms);
            if better {
                best = Some(GridSearchResult {
                    estimated_cost_ms: cost,
                    device_of,
                    max_dim_used: threshold,
                });
            }
        }

        best.ok_or_else(|| PlanError::Infeasible {
            reason: format!(
                "no greedy assignment of {} tables to {num_devices} devices fits \
                 the per-device memory budgets (max {} bytes)",
                tables.len(),
                budgets.iter().copied().max().unwrap_or(0)
            ),
        })
    }

    /// One greedy pass: assign tables in `order` to the candidate device
    /// with the lowest predicted cost after the assignment (lines 8-22).
    /// Returns `None` if some table has no feasible device.
    ///
    /// All feasible devices for a table are probed with **one batched**
    /// model call over the cache misses, and each device's set key is
    /// maintained incrementally — no per-probe rehash of the whole set.
    fn greedy_assign(
        &self,
        profiles: &[TableProfile],
        order: &[usize],
        num_devices: usize,
        budgets: &[u64],
        scales: Option<&DeviceScales>,
        max_dim: Option<f64>,
    ) -> Option<Vec<usize>> {
        let mut device_tables: Vec<Vec<TableProfile>> = vec![Vec::new(); num_devices];
        let mut device_keys: Vec<TableSetKey> = vec![TableSetKey::empty(); num_devices];
        let mut device_bytes = vec![0u64; num_devices];
        let mut device_dims = vec![0.0f64; num_devices];
        let mut device_of = vec![usize::MAX; profiles.len()];
        // Reused across all placements of this pass — the probe loop
        // itself allocates nothing.
        let mut feasible: Vec<usize> = Vec::with_capacity(num_devices);
        let mut key_scratch: Vec<u64> = Vec::with_capacity(num_devices);

        // Effective dimension of a table on device `g`: its traffic share,
        // inflated by the device's link slowness. On homogeneous fleets
        // both factors are exact 1.0s, so this is bitwise `dim`.
        let eff_dim = |p: &TableProfile, g: usize| match scales {
            Some(s) => p.comm_dim() / s.bandwidth_scale(g),
            None => p.comm_dim(),
        };

        for &i in order {
            let p = &profiles[i];
            let bytes = p.memory_bytes();
            feasible.clear();
            feasible.extend((0..num_devices).filter(|&g| {
                device_bytes[g] + bytes <= budgets[g]
                    && max_dim.is_none_or(|cap| device_dims[g] + eff_dim(p, g) <= cap)
            }));
            if feasible.is_empty() {
                return None;
            }
            // Predicted device cost with the table added, all feasible
            // devices scored in one batched call straight off the
            // per-device state. Compute scales are applied *after* the
            // (raw, cacheable) prediction, mirroring the simulator.
            let costs = self.sim.appended_compute_cost_indexed(
                &device_tables,
                &device_keys,
                &feasible,
                p,
                &mut key_scratch,
            );
            let mut best_dev: Option<(usize, f64)> = None;
            for (&g, &cost) in feasible.iter().zip(&costs) {
                let cost = match scales {
                    Some(s) => cost * s.compute_scale(g),
                    None => cost,
                };
                if best_dev.is_none_or(|(_, c)| cost < c) {
                    best_dev = Some((g, cost));
                }
            }
            let (g, _) = best_dev?;
            device_tables[g].push(*p);
            device_keys[g].add(p);
            device_bytes[g] += bytes;
            device_dims[g] += eff_dim(p, g);
            device_of[i] = g;
        }
        Some(device_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
    use nshard_data::{TableConfig, TableId, TablePool};

    fn sim(d: usize) -> CostSimulator {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        CostSimulator::new(bundle)
    }

    fn t(id: u32, dim: u32) -> TableConfig {
        TableConfig::new(TableId(id), dim, 1 << 18, 10.0, 1.0)
    }

    #[test]
    fn assigns_every_table() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 5);
        let tables: Vec<TableConfig> = (0..8).map(|i| t(i, 32)).collect();
        let result = search
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        assert_eq!(result.device_of.len(), 8);
        assert!(result.device_of.iter().all(|&d| d < 2));
        assert!(result.estimated_cost_ms.is_finite());
    }

    #[test]
    fn respects_memory_budget() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3);
        // Each table is 256 KB; budget fits exactly 2 per device.
        let tables: Vec<TableConfig> = (0..4)
            .map(|i| TableConfig::new(TableId(i), 64, 1024, 5.0, 1.0))
            .collect();
        let budget = 2 * 64 * 1024 * 4;
        let result = search.search(&tables, 2, budget, 1024).unwrap();
        let mut per_dev = [0u64; 2];
        for (i, &d) in result.device_of.iter().enumerate() {
            per_dev[d] += tables[i].memory_bytes();
        }
        assert!(per_dev.iter().all(|&b| b <= budget));
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3);
        let tables = vec![t(0, 64)];
        let err = search.search(&tables, 2, 16, 1024).unwrap_err();
        assert!(matches!(err, PlanError::Infeasible { .. }));
    }

    #[test]
    fn unconstrained_fallback_rescues_tight_grids() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3);
        // 5 equal tables on 2 devices: avg device dim = 80, and a 32-dim
        // table can never make device dims exactly even; the fallback (or a
        // loose threshold) must still produce a plan.
        let tables: Vec<TableConfig> = (0..5).map(|i| t(i, 32)).collect();
        let result = search
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        assert_eq!(result.device_of.len(), 5);
    }

    #[test]
    fn without_grid_still_produces_plans() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 11).without_grid();
        let tables: Vec<TableConfig> = (0..6).map(|i| t(i, 64)).collect();
        let result = search
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        assert!(result.max_dim_used.is_none());
    }

    #[test]
    fn grid_beats_or_ties_no_grid() {
        let sim = sim(2);
        let tables: Vec<TableConfig> = (0..10)
            .map(|i| t(i, if i % 3 == 0 { 128 } else { 16 }))
            .collect();
        let with_grid = GreedyGridSearch::new(&sim, 11)
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        let without = GreedyGridSearch::new(&sim, 11)
            .without_grid()
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        assert!(with_grid.estimated_cost_ms <= without.estimated_cost_ms + 1e-9);
    }

    #[test]
    fn search_uses_the_cache() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 11);
        let tables: Vec<TableConfig> = (0..12).map(|i| t(i, 32)).collect();
        let _ = search
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        assert!(
            sim.cache().hit_rate() > 0.5,
            "hit rate {}",
            sim.cache().hit_rate()
        );
    }

    #[test]
    fn parallel_grid_is_bit_identical_to_serial() {
        let sim = sim(2);
        let tables: Vec<TableConfig> = (0..14)
            .map(|i| t(i, if i % 3 == 0 { 128 } else { 32 }))
            .collect();
        let serial = GreedyGridSearch::new(&sim, 7)
            .with_threads(1)
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        for threads in [2, 4, 8] {
            let parallel = GreedyGridSearch::new(&sim, 7)
                .with_threads(threads)
                .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
                .unwrap();
            assert_eq!(parallel, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn uniform_device_context_is_bit_identical_to_scalar_search() {
        let sim = sim(2);
        let tables: Vec<TableConfig> = (0..10)
            .map(|i| t(i, if i % 3 == 0 { 128 } else { 32 }))
            .collect();
        let search = GreedyGridSearch::new(&sim, 7);
        let scalar = search
            .search(&tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
            .unwrap();
        let budgets = [nshard_sim::DEFAULT_MEM_BYTES; 2];
        let unit = DeviceScales::new(vec![1.0; 2], vec![1.0; 2]);
        let scaled = search
            .search_with_devices(&tables, 2, &budgets, Some(&unit), 65_536)
            .unwrap();
        assert_eq!(scaled.device_of, scalar.device_of);
        assert_eq!(
            scaled.estimated_cost_ms.to_bits(),
            scalar.estimated_cost_ms.to_bits()
        );
        assert_eq!(scaled.max_dim_used, scalar.max_dim_used);
    }

    #[test]
    fn per_device_budgets_steer_big_tables() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3);
        // Two 256 KB tables; device 1 can hold at most one byte.
        let tables: Vec<TableConfig> = (0..2)
            .map(|i| TableConfig::new(TableId(i), 64, 1024, 5.0, 1.0))
            .collect();
        let budgets = [1 << 30, 1];
        let result = search
            .search_with_devices(&tables, 2, &budgets, None, 1024)
            .unwrap();
        assert_eq!(result.device_of, vec![0, 0]);
    }

    #[test]
    fn compute_scales_repel_load_from_slow_devices() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3).without_grid();
        let tables: Vec<TableConfig> = (0..8).map(|i| t(i, 32)).collect();
        let budgets = [nshard_sim::DEFAULT_MEM_BYTES; 2];
        // Device 1 is 100x slower: the allocator should load device 0
        // strictly more heavily than device 1.
        let slow = DeviceScales::new(vec![1.0, 100.0], vec![1.0, 1.0]);
        let result = search
            .search_with_devices(&tables, 2, &budgets, Some(&slow), 65_536)
            .unwrap();
        let on_fast = result.device_of.iter().filter(|&&d| d == 0).count();
        let on_slow = tables.len() - on_fast;
        assert!(
            on_fast > on_slow,
            "fast device got {on_fast} of {} tables",
            tables.len()
        );
    }

    #[test]
    fn mismatched_budget_count_is_invalid() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3);
        assert!(matches!(
            search.search_with_devices(&[t(0, 8)], 2, &[1 << 30], None, 1024),
            Err(PlanError::Invalid { .. })
        ));
    }

    #[test]
    fn zero_devices_is_invalid() {
        let sim = sim(2);
        let search = GreedyGridSearch::new(&sim, 3);
        assert!(matches!(
            search.search(&[t(0, 8)], 0, 1 << 30, 1024),
            Err(PlanError::Invalid { .. })
        ));
    }
}
