//! Graceful degradation: a fallback chain from the primary search down to
//! a guaranteed size-balanced placement.
//!
//! Production sharding cannot simply return "-" when a search fails: a
//! plan must ship. The [`FallbackChain`] runs a sequence of sharders in
//! preference order and returns the first plan that verifies, downgrading
//! step by step:
//!
//! 1. the **primary** algorithm (normally NeuroShard),
//! 2. the primary's plan **repaired** by the [`RepairEngine`] when it was
//!    rejected for memory reasons,
//! 3. each registered **fallback** algorithm (normally a greedy baseline),
//!    repaired likewise if needed,
//! 4. a built-in **size-balanced** last resort ([`size_balanced_plan`]).
//!
//! Verification failures that are *transient* (see
//! [`SimError::is_transient`], e.g. injected measurement faults) are
//! retried a bounded number of times with exponential backoff. Backoff
//! delays are **recorded, not slept**, keeping the chain deterministic and
//! instant under test; a production caller can replay them.
//!
//! Every decision — attempts, failures, retries, repairs, downgrades — is
//! recorded in a [`PlanProvenance`] attached to the returned plan, so a
//! degraded plan is always attributable.

use nshard_data::ShardingTask;
use nshard_sim::{GpuSpec, SimError};
use serde::{Deserialize, Serialize};

use crate::plan::{PlanError, ShardingPlan};
use crate::repair::{RepairConfig, RepairEngine};
use crate::ShardingAlgorithm;

/// Bounded retry with exponential backoff for transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per verification (on top of the first attempt).
    pub max_retries: u32,
    /// Backoff before the first retry, in ms; doubles each retry.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// The recorded backoff before retry `attempt` (1-based), in ms —
    /// the plain exponential schedule of the shared
    /// [`nshard_pool::Backoff`] helper (the same helper whose jittered
    /// mode paces replication reconnects in `nshard-serve`).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        nshard_pool::Backoff::exponential(self.base_backoff_ms).delay_ms(attempt)
    }
}

/// Which stage of the chain produced the accepted plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanSource {
    /// The primary algorithm's plan, verified as-is.
    Primary {
        /// Algorithm name.
        algorithm: String,
    },
    /// A plan that needed the repair engine before verifying.
    Repaired {
        /// Name of the algorithm whose plan was repaired.
        algorithm: String,
        /// Number of repair actions taken.
        repair_steps: usize,
    },
    /// A fallback algorithm's plan, verified as-is.
    Fallback {
        /// Algorithm name.
        algorithm: String,
    },
    /// The built-in size-balanced last resort.
    SizeBalanced,
}

impl PlanSource {
    /// `true` when the plan did not come from the primary algorithm
    /// unmodified.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, PlanSource::Primary { .. })
    }
}

/// One recorded decision of the chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvenanceEvent {
    /// A stage started producing a plan.
    Attempt {
        /// Algorithm name.
        algorithm: String,
    },
    /// The stage's search itself failed.
    SearchFailed {
        /// Algorithm name.
        algorithm: String,
        /// The search error, rendered.
        reason: String,
    },
    /// A transient verification failure triggered a retry.
    TransientRetry {
        /// Algorithm name.
        algorithm: String,
        /// 1-based retry number.
        attempt: u32,
        /// Recorded (not slept) backoff before this retry, ms.
        backoff_ms: u64,
        /// The transient error, rendered.
        reason: String,
    },
    /// The stage's plan failed verification for a persistent reason.
    VerifyFailed {
        /// Algorithm name.
        algorithm: String,
        /// The verification error, rendered.
        reason: String,
    },
    /// The repair engine salvaged the stage's plan.
    Repaired {
        /// Algorithm name.
        algorithm: String,
        /// Number of repair actions taken.
        steps: usize,
    },
    /// The repair engine could not salvage the stage's plan.
    RepairFailed {
        /// Algorithm name.
        algorithm: String,
        /// The repair error, rendered.
        reason: String,
    },
}

/// Why a *re*-plan was requested — set when a plan replaces an incumbent
/// because the observed workload drifted away from the incumbent's
/// assumptions (the online re-sharding loop), `None` for one-shot plans.
///
/// The `trigger_kind` is the short stable name of the drift trigger (e.g.
/// `"cost_regression"`, `"imbalance"`, `"memory"`), so a degraded or
/// migrated plan is attributable to the drift event that caused it, just
/// like fault-driven fallbacks are attributable through
/// [`ProvenanceEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplanAttribution {
    /// Stable short name of the trigger that fired.
    pub trigger_kind: String,
    /// The drift epoch at which the trigger fired.
    pub epoch: u64,
}

/// Which replica produced a plan *after a control-plane failover* — set by
/// a serving daemon that promoted itself from follower to leader when the
/// incumbent leader died, `None` for plans produced under the original
/// leader (or outside a replicated deployment entirely).
///
/// The attribution makes degraded-mode planning auditable the same way
/// [`ReplanAttribution`] makes drift-triggered replans auditable: any plan
/// minted while the control plane was recovering names the surviving node
/// and the replicated sequence number it had caught up to at promotion, so
/// an operator can tell exactly which writes the plan could (and could
/// not) have seen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverAttribution {
    /// Identity of the replica that promoted itself and produced the plan.
    pub node: String,
    /// The replicated sequence number the promoted replica had applied at
    /// promotion time — the horizon of writes this plan could observe.
    pub at_seq: u64,
    /// `true` when the promoted replica knew it was still behind the dead
    /// leader's last advertised sequence (stale-read mode): the plan may
    /// have been produced from an incomplete store.
    pub stale: bool,
}

/// The full decision record of one [`FallbackChain::shard_with_provenance`]
/// call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanProvenance {
    /// Which stage produced the accepted plan.
    pub source: PlanSource,
    /// Every decision, in order.
    pub events: Vec<ProvenanceEvent>,
    /// Total transient retries across all stages.
    pub total_retries: u32,
    /// Total recorded backoff across all stages, ms.
    pub total_backoff_ms: u64,
    /// Drift attribution when this plan replaced an incumbent in response
    /// to a workload-drift trigger; `None` for one-shot plans.
    pub replan: Option<ReplanAttribution>,
    /// Failover attribution when this plan was produced by a replica that
    /// promoted itself after the leader died; `None` otherwise.
    pub failover: Option<FailoverAttribution>,
}

impl PlanProvenance {
    /// `true` when the accepted plan is a downgrade from the primary.
    pub fn is_degraded(&self) -> bool {
        self.source.is_degraded()
    }

    /// Attributes this plan to a drift-triggered replan (builder-style) —
    /// used by the online controller so every replacement plan records the
    /// trigger kind and epoch that caused it.
    #[must_use]
    pub fn attributed_to_replan(mut self, trigger_kind: impl Into<String>, epoch: u64) -> Self {
        self.replan = Some(ReplanAttribution {
            trigger_kind: trigger_kind.into(),
            epoch,
        });
        self
    }

    /// Attributes this plan to a post-failover promoted replica
    /// (builder-style) — used by the serving control plane so every plan
    /// minted while a follower-turned-leader was recovering records who
    /// produced it and how caught-up that replica was.
    #[must_use]
    pub fn attributed_to_failover(
        mut self,
        node: impl Into<String>,
        at_seq: u64,
        stale: bool,
    ) -> Self {
        self.failover = Some(FailoverAttribution {
            node: node.into(),
            at_seq,
            stale,
        });
        self
    }
}

/// A plan plus the record of how the chain arrived at it.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The accepted, verified plan.
    pub plan: ShardingPlan,
    /// How it was obtained.
    pub provenance: PlanProvenance,
}

/// Typed failure of the whole chain: even the last resort did not verify.
/// Carries the full provenance for attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientError {
    /// The error of the final stage.
    pub cause: PlanError,
    /// Every decision the chain made before giving up. `source` is the
    /// last stage attempted. Boxed to keep the error variant small on
    /// the `Result` hot path.
    pub provenance: Box<PlanProvenance>,
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "every stage of the fallback chain failed ({} events recorded): {}",
            self.provenance.events.len(),
            self.cause
        )
    }
}

impl std::error::Error for ResilientError {}

/// Verifies a candidate plan for a task. The `u64` is a per-attempt seed so
/// retries of flaky verifiers re-measure rather than repeat the failure.
///
/// `Send + Sync` so a chain can be shared by reference across the worker
/// threads of a serving daemon (see `nshard-serve`).
pub type PlanVerifier =
    dyn Fn(&ShardingTask, &ShardingPlan, u64) -> Result<(), SimError> + Send + Sync;

/// The degradation chain. See the [module documentation](self).
///
/// The chain is `Send + Sync` (all stages must be too), so one chain can
/// serve concurrent planning requests behind an `Arc` — the contract the
/// `nshard-serve` worker pool relies on.
pub struct FallbackChain {
    primary: Box<dyn ShardingAlgorithm + Send + Sync>,
    fallbacks: Vec<Box<dyn ShardingAlgorithm + Send + Sync>>,
    retry: RetryPolicy,
    repair: RepairConfig,
    verifier: Option<Box<PlanVerifier>>,
    seed: u64,
    threads: usize,
}

impl FallbackChain {
    /// A chain with only the primary algorithm and the built-in
    /// size-balanced last resort.
    pub fn new(primary: Box<dyn ShardingAlgorithm + Send + Sync>) -> Self {
        Self {
            primary,
            fallbacks: Vec::new(),
            retry: RetryPolicy::default(),
            repair: RepairConfig::default(),
            verifier: None,
            seed: 0,
            threads: 0,
        }
    }

    /// Appends a fallback algorithm (builder-style; tried in insertion
    /// order after the primary).
    pub fn with_fallback(mut self, algo: Box<dyn ShardingAlgorithm + Send + Sync>) -> Self {
        self.fallbacks.push(algo);
        self
    }

    /// Replaces the retry policy (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the repair limits (builder-style).
    pub fn with_repair(mut self, repair: RepairConfig) -> Self {
        self.repair = repair;
        self
    }

    /// Replaces the plan verifier (builder-style). The default verifier
    /// checks memory feasibility on a healthy cluster; supply one backed by
    /// a `FaultyCluster` to verify under injected faults.
    pub fn with_verifier(mut self, verifier: Box<PlanVerifier>) -> Self {
        self.verifier = Some(verifier);
        self
    }

    /// Sets the base seed mixed into per-attempt verifier seeds
    /// (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count used by the repair engine
    /// (builder-style); `0` = auto. Repaired plans are bit-identical at
    /// any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the chain: first verified plan wins.
    ///
    /// # Errors
    ///
    /// [`ResilientError`] when every stage — including the size-balanced
    /// last resort — failed; the error carries the full [`PlanProvenance`].
    pub fn shard_with_provenance(
        &self,
        task: &ShardingTask,
    ) -> Result<ResilientOutcome, ResilientError> {
        let mut trail = Trail::default();

        let stages: Vec<&dyn ShardingAlgorithm> =
            std::iter::once(self.primary.as_ref() as &dyn ShardingAlgorithm)
                .chain(
                    self.fallbacks
                        .iter()
                        .map(|b| b.as_ref() as &dyn ShardingAlgorithm),
                )
                .collect();

        let mut last_error = None;
        for (rank, algo) in stages.iter().enumerate() {
            let name = algo.name().to_string();
            trail.events.push(ProvenanceEvent::Attempt {
                algorithm: name.clone(),
            });
            let plan = match algo.shard(task) {
                Ok(plan) => plan,
                Err(e) => {
                    trail.events.push(ProvenanceEvent::SearchFailed {
                        algorithm: name.clone(),
                        reason: e.to_string(),
                    });
                    last_error = Some(e);
                    continue;
                }
            };
            match self.verify_and_repair(task, plan, &name, &mut trail) {
                Ok((plan, repair_steps)) => {
                    let source = match (rank, repair_steps) {
                        (0, None) => PlanSource::Primary { algorithm: name },
                        (_, None) => PlanSource::Fallback { algorithm: name },
                        (_, Some(steps)) => PlanSource::Repaired {
                            algorithm: name,
                            repair_steps: steps,
                        },
                    };
                    return Ok(ResilientOutcome {
                        plan,
                        provenance: trail.into_provenance(source),
                    });
                }
                Err(e) => last_error = Some(e),
            }
        }

        // Last resort: size-balanced placement, never search-fails but may
        // still be infeasible (or rejected by a faulty verifier).
        trail.events.push(ProvenanceEvent::Attempt {
            algorithm: "size_balanced".into(),
        });
        match size_balanced_plan(task, self.repair) {
            Ok(plan) => match self.verify_and_repair(task, plan, "size_balanced", &mut trail) {
                Ok((plan, _)) => Ok(ResilientOutcome {
                    plan,
                    provenance: trail.into_provenance(PlanSource::SizeBalanced),
                }),
                Err(e) => Err(ResilientError {
                    cause: e,
                    provenance: Box::new(trail.into_provenance(PlanSource::SizeBalanced)),
                }),
            },
            Err(e) => {
                trail.events.push(ProvenanceEvent::SearchFailed {
                    algorithm: "size_balanced".into(),
                    reason: e.to_string(),
                });
                let cause = last_error.unwrap_or(e);
                Err(ResilientError {
                    cause,
                    provenance: Box::new(trail.into_provenance(PlanSource::SizeBalanced)),
                })
            }
        }
    }

    /// Verifies `plan`, retrying transient failures and repairing
    /// persistent memory failures once. Returns the accepted plan and the
    /// repair step count if repair was needed.
    fn verify_and_repair(
        &self,
        task: &ShardingTask,
        plan: ShardingPlan,
        name: &str,
        trail: &mut Trail,
    ) -> Result<(ShardingPlan, Option<usize>), PlanError> {
        match self.verify_with_retries(task, &plan, name, trail) {
            Ok(()) => Ok((plan, None)),
            Err(err) if is_repairable(&err) => {
                let engine = RepairEngine::new(self.repair).with_threads(self.threads);
                match engine.repair(task, &plan) {
                    Ok(report) => {
                        trail.events.push(ProvenanceEvent::Repaired {
                            algorithm: name.to_string(),
                            steps: report.steps.len(),
                        });
                        match self.verify_with_retries(task, &report.plan, name, trail) {
                            Ok(()) => Ok((report.plan, Some(report.steps.len()))),
                            Err(e) => {
                                trail.events.push(ProvenanceEvent::VerifyFailed {
                                    algorithm: name.to_string(),
                                    reason: e.to_string(),
                                });
                                Err(PlanError::Infeasible {
                                    reason: format!("repaired plan still rejected: {e}"),
                                })
                            }
                        }
                    }
                    Err(e) => {
                        trail.events.push(ProvenanceEvent::RepairFailed {
                            algorithm: name.to_string(),
                            reason: e.to_string(),
                        });
                        Err(e)
                    }
                }
            }
            Err(err) => {
                trail.events.push(ProvenanceEvent::VerifyFailed {
                    algorithm: name.to_string(),
                    reason: err.to_string(),
                });
                Err(PlanError::Invalid {
                    reason: err.to_string(),
                })
            }
        }
    }

    /// Runs the verifier, retrying transient failures per the policy.
    fn verify_with_retries(
        &self,
        task: &ShardingTask,
        plan: &ShardingPlan,
        name: &str,
        trail: &mut Trail,
    ) -> Result<(), SimError> {
        let mut attempt = 0u32;
        loop {
            let attempt_seed = self
                .seed
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match self.run_verifier(task, plan, attempt_seed) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    attempt += 1;
                    let backoff_ms = self.retry.backoff_ms(attempt);
                    trail.total_retries += 1;
                    trail.total_backoff_ms += backoff_ms;
                    trail.events.push(ProvenanceEvent::TransientRetry {
                        algorithm: name.to_string(),
                        attempt,
                        backoff_ms,
                        reason: e.to_string(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn run_verifier(
        &self,
        task: &ShardingTask,
        plan: &ShardingPlan,
        seed: u64,
    ) -> Result<(), SimError> {
        match &self.verifier {
            Some(v) => v(task, plan, seed),
            None => default_verifier(task, plan),
        }
    }
}

impl ShardingAlgorithm for FallbackChain {
    fn name(&self) -> &str {
        "fallback_chain"
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        self.shard_with_provenance(task)
            .map(|outcome| outcome.plan)
            .map_err(|e| e.cause)
    }
}

/// Running provenance state while the chain executes.
#[derive(Default)]
struct Trail {
    events: Vec<ProvenanceEvent>,
    total_retries: u32,
    total_backoff_ms: u64,
}

impl Trail {
    fn into_provenance(self, source: PlanSource) -> PlanProvenance {
        PlanProvenance {
            source,
            events: self.events,
            total_retries: self.total_retries,
            total_backoff_ms: self.total_backoff_ms,
            replan: None,
            failover: None,
        }
    }
}

/// Memory feasibility on a healthy cluster: the minimum bar any plan must
/// clear. Heterogeneous tasks verify against their per-device budgets.
fn default_verifier(task: &ShardingTask, plan: &ShardingPlan) -> Result<(), SimError> {
    let cluster = crate::eval::cluster_for(task, &GpuSpec::rtx_2080_ti());
    cluster.check_memory(&plan.device_profiles(task.batch_size()))
}

/// Errors the repair engine can act on (the `SimError::OutOfMemory` /
/// `SimError::DeviceOutOfRange` failure classes).
fn is_repairable(err: &SimError) -> bool {
    matches!(
        err,
        SimError::OutOfMemory { .. }
            | SimError::DeviceOutOfRange { .. }
            | SimError::InvalidPlan { .. }
    )
}

/// The guaranteed last resort: assign tables to the least-loaded device,
/// largest table first, then run the repair engine to split anything that
/// still overflows.
///
/// # Errors
///
/// [`PlanError::Infeasible`] when even with splitting the tables cannot
/// fit the cluster.
pub fn size_balanced_plan(
    task: &ShardingTask,
    repair: RepairConfig,
) -> Result<ShardingPlan, PlanError> {
    let tables = task.tables().to_vec();
    let mut order: Vec<usize> = (0..tables.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(tables[i].memory_bytes()), i));

    // Targets are picked by maximum remaining headroom against each
    // device's own budget; on uniform fleets this is exactly the classic
    // least-loaded rule (same selections, same tie-breaks).
    let budgets = task.budgets();
    let mut device_of = vec![0usize; tables.len()];
    let mut load = vec![0u64; task.num_devices()];
    for i in order {
        let target = load
            .iter()
            .zip(&budgets)
            .enumerate()
            .max_by_key(|&(d, (&b, &cap))| (cap.saturating_sub(b), std::cmp::Reverse(d)))
            .map(|(d, _)| d)
            .expect("task has at least one device");
        device_of[i] = target;
        load[target] += tables[i].memory_bytes();
    }
    let plan = ShardingPlan::new(Vec::new(), tables, device_of, task.num_devices())?;
    Ok(RepairEngine::new(repair).repair(task, &plan)?.plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{TableConfig, TableId};

    fn t(id: u32, dim: u32, rows: u64) -> TableConfig {
        TableConfig::new(TableId(id), dim, rows, 8.0, 1.0)
    }

    fn small_task() -> ShardingTask {
        let tables: Vec<TableConfig> = (0..6).map(|i| t(i, 32, 4096)).collect();
        ShardingTask::new(tables, 2, 1 << 30, 1024)
    }

    /// A sharder that always fails its search.
    struct AlwaysFails;

    impl ShardingAlgorithm for AlwaysFails {
        fn name(&self) -> &str {
            "always_fails"
        }

        fn shard(&self, _task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
            Err(PlanError::Infeasible {
                reason: "synthetic failure".into(),
            })
        }
    }

    /// A sharder that dumps every table on device 0.
    struct PileOnDeviceZero;

    impl ShardingAlgorithm for PileOnDeviceZero {
        fn name(&self) -> &str {
            "pile_on_zero"
        }

        fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
            ShardingPlan::new(
                Vec::new(),
                task.tables().to_vec(),
                vec![0; task.num_tables()],
                task.num_devices(),
            )
        }
    }

    /// A sharder that balances perfectly by round-robin.
    struct RoundRobin;

    impl ShardingAlgorithm for RoundRobin {
        fn name(&self) -> &str {
            "round_robin"
        }

        fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
            ShardingPlan::new(
                Vec::new(),
                task.tables().to_vec(),
                (0..task.num_tables())
                    .map(|i| i % task.num_devices())
                    .collect(),
                task.num_devices(),
            )
        }
    }

    #[test]
    fn healthy_primary_is_used_directly() {
        let chain = FallbackChain::new(Box::new(RoundRobin));
        let outcome = chain.shard_with_provenance(&small_task()).unwrap();
        assert_eq!(
            outcome.provenance.source,
            PlanSource::Primary {
                algorithm: "round_robin".into()
            }
        );
        assert!(!outcome.provenance.is_degraded());
        assert_eq!(outcome.provenance.total_retries, 0);
    }

    #[test]
    fn failing_primary_downgrades_to_fallback() {
        let chain = FallbackChain::new(Box::new(AlwaysFails)).with_fallback(Box::new(RoundRobin));
        let outcome = chain.shard_with_provenance(&small_task()).unwrap();
        assert_eq!(
            outcome.provenance.source,
            PlanSource::Fallback {
                algorithm: "round_robin".into()
            }
        );
        assert!(outcome.provenance.is_degraded());
        assert!(outcome
            .provenance
            .events
            .iter()
            .any(|e| matches!(e, ProvenanceEvent::SearchFailed { algorithm, .. } if algorithm == "always_fails")));
    }

    #[test]
    fn oom_plan_is_repaired_in_chain() {
        // Budget fits three of six tables per device: piling on device 0
        // overflows and must be repaired.
        let tables: Vec<TableConfig> = (0..6).map(|i| t(i, 32, 4096)).collect();
        let budget = tables[0].memory_bytes() * 3;
        let task = ShardingTask::new(tables, 2, budget, 1024);
        let chain = FallbackChain::new(Box::new(PileOnDeviceZero));
        let outcome = chain.shard_with_provenance(&task).unwrap();
        assert!(matches!(
            outcome.provenance.source,
            PlanSource::Repaired { ref algorithm, repair_steps } if algorithm == "pile_on_zero" && repair_steps > 0
        ));
        assert!(outcome.plan.validate(&task).is_ok());
    }

    #[test]
    fn size_balanced_is_the_last_resort() {
        let chain = FallbackChain::new(Box::new(AlwaysFails));
        let outcome = chain.shard_with_provenance(&small_task()).unwrap();
        assert_eq!(outcome.provenance.source, PlanSource::SizeBalanced);
        assert!(outcome.plan.validate(&small_task()).is_ok());
    }

    #[test]
    fn transient_failures_are_retried_with_recorded_backoff() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in = calls.clone();
        let chain = FallbackChain::new(Box::new(RoundRobin))
            .with_retry(RetryPolicy {
                max_retries: 3,
                base_backoff_ms: 10,
            })
            .with_verifier(Box::new(move |_task, _plan, _seed| {
                let n = calls_in.fetch_add(1, Ordering::SeqCst);
                if n < 2 {
                    Err(SimError::TransientFailure {
                        device: 0,
                        reason: "flaky".into(),
                    })
                } else {
                    Ok(())
                }
            }));
        let outcome = chain.shard_with_provenance(&small_task()).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(outcome.provenance.total_retries, 2);
        // Exponential: 10 then 20 ms, recorded but never slept.
        assert_eq!(outcome.provenance.total_backoff_ms, 30);
        assert_eq!(
            outcome.provenance.source,
            PlanSource::Primary {
                algorithm: "round_robin".into()
            }
        );
    }

    #[test]
    fn exhausted_retries_downgrade() {
        let chain = FallbackChain::new(Box::new(RoundRobin))
            .with_retry(RetryPolicy {
                max_retries: 1,
                base_backoff_ms: 5,
            })
            .with_verifier(Box::new(|_task, plan, _seed| {
                // Reject everything that is not size-balanced output by
                // failing transiently forever; accept plans with splits or
                // non-round-robin shape. Simplest: always transient-fail.
                let _ = plan;
                Err(SimError::TransientFailure {
                    device: 1,
                    reason: "permanently flaky".into(),
                })
            }));
        let err = chain.shard_with_provenance(&small_task()).unwrap_err();
        // Even the last resort cannot verify: typed error with provenance.
        assert!(err.provenance.total_retries >= 2);
        assert!(!err.provenance.events.is_empty());
        assert!(err.to_string().contains("fallback chain"));
    }

    #[test]
    fn infeasible_task_yields_typed_error_with_attribution() {
        // 1 device, tables larger than the budget even fully split.
        let tables = vec![t(0, 64, 1 << 20)];
        let budget = 1024u64;
        let task = ShardingTask::new(tables, 1, budget, 1024);
        let chain = FallbackChain::new(Box::new(RoundRobin));
        let err = chain.shard_with_provenance(&task).unwrap_err();
        assert!(matches!(
            err.cause,
            PlanError::Infeasible { .. } | PlanError::Invalid { .. }
        ));
        let attempted: Vec<&String> = err
            .provenance
            .events
            .iter()
            .filter_map(|e| match e {
                ProvenanceEvent::Attempt { algorithm } => Some(algorithm),
                _ => None,
            })
            .collect();
        assert!(attempted.iter().any(|a| a.as_str() == "round_robin"));
        assert!(attempted.iter().any(|a| a.as_str() == "size_balanced"));
    }

    #[test]
    fn chain_is_deterministic() {
        let make =
            || FallbackChain::new(Box::new(PileOnDeviceZero)).with_fallback(Box::new(RoundRobin));
        let tables: Vec<TableConfig> = (0..6).map(|i| t(i, 32, 4096)).collect();
        let budget = tables[0].memory_bytes() * 3;
        let task = ShardingTask::new(tables, 2, budget, 1024);
        let a = make().shard_with_provenance(&task).unwrap();
        let b = make().shard_with_provenance(&task).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn replan_attribution_is_recordable() {
        let chain = FallbackChain::new(Box::new(RoundRobin));
        let outcome = chain.shard_with_provenance(&small_task()).unwrap();
        assert_eq!(outcome.provenance.replan, None);
        let attributed = outcome
            .provenance
            .clone()
            .attributed_to_replan("cost_regression", 7);
        assert_eq!(
            attributed.replan,
            Some(ReplanAttribution {
                trigger_kind: "cost_regression".into(),
                epoch: 7,
            })
        );
        // Attribution does not change degradation status.
        assert_eq!(attributed.is_degraded(), outcome.provenance.is_degraded());
    }

    #[test]
    fn failover_attribution_is_recordable() {
        let chain = FallbackChain::new(Box::new(RoundRobin));
        let outcome = chain.shard_with_provenance(&small_task()).unwrap();
        assert_eq!(outcome.provenance.failover, None);
        let attributed = outcome
            .provenance
            .clone()
            .attributed_to_failover("node-1", 42, true);
        assert_eq!(
            attributed.failover,
            Some(FailoverAttribution {
                node: "node-1".into(),
                at_seq: 42,
                stale: true,
            })
        );
        assert_eq!(attributed.is_degraded(), outcome.provenance.is_degraded());
    }

    #[test]
    fn retry_backoff_uses_the_shared_helper() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 10,
        };
        let helper = nshard_pool::Backoff::exponential(10);
        for attempt in 1..20 {
            assert_eq!(policy.backoff_ms(attempt), helper.delay_ms(attempt));
        }
    }

    #[test]
    fn chain_is_shareable_across_threads() {
        // The serving daemon shares one chain behind an Arc across its
        // worker pool; a missing auto-trait bound would break that.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FallbackChain>();
    }

    #[test]
    fn chain_verifies_against_per_device_budgets() {
        use nshard_data::{DevicePool, DeviceProfile};
        // Round-robin is feasible under the scalar budget but overflows
        // the starved device of the heterogeneous pool, so the chain must
        // repair it rather than accept it as-is.
        let tables: Vec<TableConfig> = (0..6).map(|i| t(i, 32, 4096)).collect();
        let each = tables[0].memory_bytes();
        let pool = DevicePool::new(
            vec![
                DeviceProfile::new(each * 6, 1.0, 0),
                DeviceProfile::new(each, 1.0, 0),
            ],
            1.0,
        );
        let task = ShardingTask::new(tables, 2, each * 6, 1024).with_devices(pool);
        let chain = FallbackChain::new(Box::new(RoundRobin));
        let outcome = chain.shard_with_provenance(&task).unwrap();
        assert!(matches!(
            outcome.provenance.source,
            PlanSource::Repaired { .. }
        ));
        assert!(outcome.plan.validate(&task).is_ok());
        assert!(outcome.plan.device_bytes()[1] <= each);
    }

    #[test]
    fn size_balanced_plan_honors_per_device_budgets() {
        use nshard_data::{DevicePool, DeviceProfile};
        let tables: Vec<TableConfig> = (0..4).map(|i| t(i, 32, 4096)).collect();
        let each = tables[0].memory_bytes();
        let pool = DevicePool::new(
            vec![
                DeviceProfile::new(each * 3, 1.0, 0),
                DeviceProfile::new(each, 1.0, 0),
            ],
            1.0,
        );
        let task = ShardingTask::new(tables, 2, each * 3, 1024).with_devices(pool);
        let plan = size_balanced_plan(&task, RepairConfig::default()).unwrap();
        assert!(plan.validate(&task).is_ok());
        assert!(plan.device_bytes()[1] <= each);
    }

    #[test]
    fn size_balanced_plan_splits_oversized_tables() {
        let big = t(0, 128, 8192);
        let task = ShardingTask::new(vec![big], 2, big.memory_bytes() * 3 / 4, 1024);
        let plan = size_balanced_plan(&task, RepairConfig::default()).unwrap();
        assert!(plan.validate(&task).is_ok());
        assert!(plan.num_column_splits() >= 1);
    }
}
