//! Column-wise sharding with beam search (Algorithm 1, the outer loop).
//!
//! Column-wise sharding removes oversized and overly costly tables so the
//! table-wise allocator can balance, but each split *increases* total
//! computation (Observation 1) — so the search wants a balance-enabling
//! plan with as few steps as possible. The beam explores `L` levels; at
//! each level the candidates for splitting are the top-`N` most costly and
//! the top-`N` largest tables (duplicates removed), and only the `K` best
//! partial plans survive to the next level.

use serde::{Deserialize, Serialize};

use nshard_cost::{CacheStats, CostSimulator, DeviceScales};
use nshard_data::{ShardingTask, TableConfig};
use nshard_sim::TableProfile;

use crate::greedy_grid::{GreedyGridSearch, GridSearchResult};
use crate::plan::{apply_split_plan, PlanError, ShardingPlan, SplitKind, SplitPlan, SplitStep};
use crate::pool::WorkPool;

/// Score offset for memory-infeasible beam entries: far above any real
/// cost (ms), with the plan's largest shard size (bytes) added so that
/// infeasible plans closer to fitting sort first.
const INFEASIBLE_BASE: f64 = 1e15;

/// Prediction-cache statistics split by search phase (the per-phase hit
/// rates of the Table 3 ablation output).
///
/// The candidate phase is serial, so its counters are deterministic; the
/// inner phase runs concurrently, so overlapping misses on the same key
/// can shift a few counts between hits and misses across thread counts —
/// plans and costs are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchPhaseStats {
    /// Candidate ranking (single-table cost lookups in the beam expansion).
    pub candidate: CacheStats,
    /// Inner-loop plan evaluation (greedy probes + plan estimates).
    pub inner: CacheStats,
}

/// Result of a beam search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamSearchResult {
    /// The best complete sharding plan found.
    pub plan: ShardingPlan,
    /// Its estimated embedding cost (model units, ms).
    pub estimated_cost_ms: f64,
    /// Number of (column-plan, inner-search) evaluations performed.
    pub evaluated_plans: usize,
    /// Per-phase prediction-cache statistics for this run.
    pub phase_stats: SearchPhaseStats,
}

/// The beam-search driver over column-wise sharding plans.
#[derive(Debug, Clone, Copy)]
pub struct BeamSearch<'a> {
    sim: &'a CostSimulator,
    /// Candidate-set size `N` per criterion (paper: 10).
    n: usize,
    /// Beam width `K` (paper: 3).
    k: usize,
    /// Number of sharding levels `L` (paper: 10).
    l: usize,
    /// Grid granularity `M` for the inner loop (paper: 11).
    m: usize,
    use_grid: bool,
    /// Also propose row-wise splits (the paper's future-work extension).
    row_wise: bool,
    /// Also propose replicating hot tables (memory on every holder, traffic
    /// split across them).
    replication: bool,
    /// Worker threads for level evaluation; `0` = auto (see
    /// [`crate::pool::resolve_threads`]).
    threads: usize,
}

impl<'a> BeamSearch<'a> {
    /// Creates a beam search with the paper's hyperparameters
    /// `N = 10, K = 3, L = 10, M = 11`.
    pub fn new(sim: &'a CostSimulator) -> Self {
        Self {
            sim,
            n: 10,
            k: 3,
            l: 10,
            m: 11,
            use_grid: true,
            row_wise: false,
            replication: false,
            threads: 0,
        }
    }

    /// Sets the candidate-set size `N`.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n.max(1);
        self
    }

    /// Sets the beam width `K`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Sets the number of levels `L`. `L = 0` disables column-wise sharding
    /// (the "w/o beam search" ablation).
    pub fn with_l(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Sets the inner grid granularity `M`.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m.max(1);
        self
    }

    /// Disables the inner grid search (the "w/o greedy grid search"
    /// ablation).
    pub fn without_grid(mut self) -> Self {
        self.use_grid = false;
        self
    }

    /// Also proposes **row-wise** splits of the candidate tables — the
    /// extension the paper lists as future work. Row-wise splits rescue
    /// tall-skinny tables (large hash size, minimum dimension) that
    /// column-wise sharding cannot partition.
    pub fn with_row_wise(mut self, enable: bool) -> Self {
        self.row_wise = enable;
        self
    }

    /// Also proposes **replicating** hot tables: each replica costs full
    /// memory on its holder but serves only its share of the lookups, so a
    /// single skew-dominating table stops bottlenecking one device.
    pub fn with_replication(mut self, enable: bool) -> Self {
        self.replication = enable;
        self
    }

    /// Sets the worker-thread count for level evaluation (`0` = auto).
    /// Results are collected in candidate order, so the returned plan and
    /// cost are **bit-for-bit identical** at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn inner_with_threads(&self, threads: usize) -> GreedyGridSearch<'a> {
        let g = GreedyGridSearch::new(self.sim, self.m).with_threads(threads);
        if self.use_grid {
            g
        } else {
            g.without_grid()
        }
    }

    /// Runs the search for `task` and returns the best plan found.
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when no explored column-wise plan admits a
    /// memory-feasible table-wise plan.
    pub fn search(&self, task: &ShardingTask) -> Result<BeamSearchResult, PlanError> {
        // Standalone inner searches parallelize their own grid sweep; the
        // per-level jobs below are themselves parallel, so each job runs a
        // *serial* inner search to avoid oversubscription.
        let pool = WorkPool::new(self.threads);
        let inner = self.inner_with_threads(self.threads);
        let inner_serial = self.inner_with_threads(1);
        let cache = self.sim.cache();
        let mut phase_stats = SearchPhaseStats::default();
        let mut evaluated = 0usize;

        // Heterogeneous-fleet context, shared by every inner search of this
        // run. `scales` is `None` on uniform fleets, which keeps the whole
        // search on the bit-exact homogeneous path.
        let budgets = task.budgets();
        let scales = task.device_pool().and_then(DeviceScales::from_pool);
        let scales = scales.as_ref();

        // The root plan: empty, except when row-wise sharding is on —
        // then a deterministic presplit pass first row-halves any table
        // too large for every device, so row-wise splits stay reachable
        // even with the beam disabled (`L = 0`, the greedy-only config).
        let root: SplitPlan = if self.row_wise {
            self.presplit_steps(task)
        } else {
            Vec::new()
        };
        let root_tables = apply_split_plan(task.tables(), &root)
            .expect("presplit steps are constructed to be applicable");

        // Evaluate the root plan first (line 4's initial beam).
        let mut best: Option<(SplitPlan, f64, Vec<usize>)> = None;
        evaluated += 1;
        let before = cache.stats();
        if let Ok(result) = inner.search_with_devices(
            &root_tables,
            task.num_devices(),
            &budgets,
            scales,
            task.batch_size(),
        ) {
            best = Some((root.clone(), result.estimated_cost_ms, result.device_of));
        }
        phase_stats.inner.absorb(&cache.stats().since(&before));

        // Beam entries carry (plan, cost) — infeasible plans carry +inf so
        // they sort last but can still be extended toward feasibility.
        let mut beam: Vec<(SplitPlan, f64)> =
            vec![(root, best.as_ref().map_or(f64::INFINITY, |b| b.1))];

        for _level in 0..self.l {
            // Expand every beam entry's candidates serially, building the
            // level's evaluation jobs in a deterministic order.
            let before = cache.stats();
            let mut jobs: Vec<(SplitPlan, Vec<TableConfig>)> = Vec::new();
            for (col_plan, _) in &beam {
                let sharded = apply_split_plan(task.tables(), col_plan)
                    .expect("beam plans are constructed to be applicable");
                for cand in self.candidates(&sharded, task.batch_size()) {
                    let mut new_plan = col_plan.clone();
                    new_plan.push(cand);
                    match apply_split_plan(task.tables(), &new_plan) {
                        Ok(s) => jobs.push((new_plan, s)),
                        Err(_) => continue, // unsplittable candidate
                    }
                }
            }
            phase_stats.candidate.absorb(&cache.stats().since(&before));
            if jobs.is_empty() {
                break; // nothing splittable left anywhere in the beam
            }
            evaluated += jobs.len();

            // Evaluate the K×2N jobs of this level concurrently. The pool
            // returns results in job order, so the fold below visits them
            // exactly as the serial loop would.
            let before = cache.stats();
            let results: Vec<Result<GridSearchResult, PlanError>> =
                pool.map(&jobs, |(_, sharded)| {
                    inner_serial.search_with_devices(
                        sharded,
                        task.num_devices(),
                        &budgets,
                        scales,
                        task.batch_size(),
                    )
                });
            phase_stats.inner.absorb(&cache.stats().since(&before));

            let mut next: Vec<(SplitPlan, f64)> = Vec::with_capacity(jobs.len());
            for ((new_plan, new_sharded), result) in jobs.into_iter().zip(results) {
                match result {
                    Ok(result) => {
                        let improves = best
                            .as_ref()
                            .is_none_or(|(_, c, _)| result.estimated_cost_ms < *c);
                        if improves {
                            best = Some((
                                new_plan.clone(),
                                result.estimated_cost_ms,
                                result.device_of,
                            ));
                        }
                        next.push((new_plan, result.estimated_cost_ms));
                    }
                    Err(_) => {
                        // Memory-infeasible: keep the plan explorable,
                        // ranked behind every feasible plan but ahead of
                        // other infeasible plans with *larger* biggest
                        // shards — this steers the beam monotonically
                        // toward feasibility instead of pruning the
                        // oversized-table branch arbitrarily.
                        let max_bytes = new_sharded
                            .iter()
                            .map(|t| t.memory_bytes())
                            .max()
                            .unwrap_or(0);
                        next.push((new_plan, INFEASIBLE_BASE + max_bytes as f64));
                    }
                }
            }
            next.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are comparable"));
            next.truncate(self.k);
            beam = next;
        }

        let (split_plan, cost, device_of) = best.ok_or_else(|| PlanError::Infeasible {
            reason: format!(
                "no split plan within {} levels yields a memory-feasible assignment",
                self.l
            ),
        })?;
        let sharded = apply_split_plan(task.tables(), &split_plan)?;
        let plan =
            ShardingPlan::with_split_plan(split_plan, sharded, device_of, task.num_devices())?;
        Ok(BeamSearchResult {
            plan,
            estimated_cost_ms: cost,
            evaluated_plans: evaluated,
            phase_stats,
        })
    }

    /// Deterministic feasibility presplit (row-wise mode only): while the
    /// largest shard exceeds every device's memory budget, halve it —
    /// row-wise when its rows still split, column-wise otherwise. Ties
    /// break on the lowest index, so the step sequence is a pure function
    /// of the task. Returns an empty plan when every table already fits.
    fn presplit_steps(&self, task: &ShardingTask) -> SplitPlan {
        let max_budget = task.budgets().into_iter().max().unwrap_or(0);
        let mut steps: SplitPlan = Vec::new();
        let mut tables = task.tables().to_vec();
        while let Some(worst) = (0..tables.len()).max_by(|&a, &b| {
            tables[a]
                .memory_bytes()
                .cmp(&tables[b].memory_bytes())
                .then(b.cmp(&a)) // prefer the lower index on ties
        }) {
            if tables[worst].memory_bytes() <= max_budget {
                break;
            }
            let halves = tables[worst]
                .split_rows()
                .or_else(|| tables[worst].split_columns());
            let Some((a, b)) = halves else {
                break; // unsplittable: leave infeasibility to the search
            };
            let kind = if tables[worst].split_rows().is_some() {
                SplitKind::Row
            } else {
                SplitKind::Column
            };
            steps.push(SplitStep { index: worst, kind });
            tables[worst] = a;
            tables.push(b);
        }
        steps
    }

    /// Candidate split steps: top-`N` tables by predicted cost plus top-`N`
    /// by size, duplicates removed, unsplittable tables excluded (line 9).
    /// With row-wise sharding enabled, each candidate table contributes
    /// both a column step and a row step (where legal); with replication
    /// enabled, a replicate step as well.
    fn candidates(&self, tables: &[TableConfig], batch_size: u32) -> Vec<SplitStep> {
        let relevant: Vec<usize> = (0..tables.len())
            .filter(|&i| {
                tables[i].split_columns().is_some()
                    || (self.row_wise && tables[i].split_rows().is_some())
                    || (self.replication && tables[i].replicate().is_some())
            })
            .collect();
        if relevant.is_empty() {
            return Vec::new();
        }
        // One batched call scores every relevant table up front (memoized
        // under singleton set keys), so the sort comparator is O(1) —
        // no model call, no cache lookup per comparison.
        let profiles: Vec<TableProfile> = relevant
            .iter()
            .map(|&i| tables[i].profile(batch_size))
            .collect();
        let costs = self.sim.single_table_cost_batch(&profiles);
        let mut by_cost: Vec<usize> = (0..relevant.len()).collect();
        by_cost.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).expect("costs are finite"));
        let mut by_size: Vec<usize> = (0..relevant.len()).collect();
        by_size.sort_by(|&a, &b| {
            tables[relevant[b]]
                .memory_bytes()
                .cmp(&tables[relevant[a]].memory_bytes())
        });

        let mut seen = vec![false; relevant.len()];
        let mut picked: Vec<usize> = Vec::with_capacity(2 * self.n);
        for &r in by_cost
            .iter()
            .take(self.n)
            .chain(by_size.iter().take(self.n))
        {
            if !seen[r] {
                seen[r] = true;
                picked.push(relevant[r]);
            }
        }
        let mut out = Vec::with_capacity(picked.len() * 2);
        for &i in &picked {
            if tables[i].split_columns().is_some() {
                out.push(SplitStep {
                    index: i,
                    kind: SplitKind::Column,
                });
            }
            if self.row_wise && tables[i].split_rows().is_some() {
                out.push(SplitStep {
                    index: i,
                    kind: SplitKind::Row,
                });
            }
            if self.replication && tables[i].replicate().is_some() {
                out.push(SplitStep {
                    index: i,
                    kind: SplitKind::Replicate,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
    use nshard_data::{ShardingTask, TableConfig, TableId, TablePool};

    fn sim(d: usize) -> CostSimulator {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        CostSimulator::new(bundle)
    }

    fn small_task(d: usize) -> ShardingTask {
        let tables: Vec<TableConfig> = (0..8)
            .map(|i| {
                TableConfig::new(
                    TableId(i),
                    if i % 2 == 0 { 64 } else { 16 },
                    1 << 18,
                    8.0,
                    1.0,
                )
            })
            .collect();
        ShardingTask::new(tables, d, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
    }

    #[test]
    fn finds_a_valid_plan() {
        let sim = sim(2);
        let search = BeamSearch::new(&sim)
            .with_l(2)
            .with_n(3)
            .with_k(2)
            .with_m(3);
        let task = small_task(2);
        let result = search.search(&task).unwrap();
        assert!(result.plan.validate(&task).is_ok());
        assert!(result.estimated_cost_ms.is_finite());
        assert!(result.evaluated_plans >= 1);
    }

    #[test]
    fn splits_oversized_tables_to_fit() {
        let sim = sim(2);
        // One table too large for any single device: must be split.
        let big = TableConfig::new(TableId(0), 128, 4 << 20, 8.0, 1.0); // 2 GB
        let small = TableConfig::new(TableId(1), 16, 1 << 16, 4.0, 1.0);
        // 1.25 GB budget: the 2 GB table must split, and its 1 GB halves
        // plus the small table then fit comfortably.
        let task = ShardingTask::new(vec![big, small], 2, (1 << 30) + (1 << 28), 65_536);
        let search = BeamSearch::new(&sim)
            .with_l(3)
            .with_n(2)
            .with_k(2)
            .with_m(3);
        let result = search.search(&task).unwrap();
        assert!(
            !result.plan.split_plan().is_empty(),
            "must column-split the 2 GB table"
        );
        assert!(result.plan.validate(&task).is_ok());
    }

    #[test]
    fn without_beam_fails_on_oversized_tables() {
        let sim = sim(2);
        let big = TableConfig::new(TableId(0), 128, 4 << 20, 8.0, 1.0); // 2 GB
        let task = ShardingTask::new(vec![big], 2, 1 << 30, 65_536);
        let search = BeamSearch::new(&sim).with_l(0); // ablation: no col-wise sharding
        assert!(matches!(
            search.search(&task),
            Err(PlanError::Infeasible { .. })
        ));
    }

    #[test]
    fn more_levels_never_hurt() {
        let sim = sim(2);
        let task = small_task(2);
        let shallow = BeamSearch::new(&sim).with_l(0).search(&task).unwrap();
        let deep = BeamSearch::new(&sim)
            .with_l(2)
            .with_n(3)
            .with_k(2)
            .with_m(3)
            .search(&task)
            .unwrap();
        assert!(deep.estimated_cost_ms <= shallow.estimated_cost_ms + 1e-9);
    }

    #[test]
    fn candidate_count_respects_n() {
        let sim = sim(2);
        let search = BeamSearch::new(&sim).with_n(2);
        let task = small_task(2);
        let cands = search.candidates(task.tables(), task.batch_size());
        assert!(cands.len() <= 4); // 2 by cost + 2 by size, deduped
        assert!(!cands.is_empty());
    }

    #[test]
    fn row_wise_rescues_tall_skinny_tables() {
        let sim = sim(2);
        // A dim-4 table of 512 M rows = 8 GB: column-wise sharding cannot
        // split it (dim 4 is the lane minimum), so plain NeuroShard fails...
        let tall = TableConfig::new(TableId(0), 4, 512 << 20, 16.0, 1.0);
        let task = ShardingTask::new(vec![tall], 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let plain = BeamSearch::new(&sim)
            .with_l(4)
            .with_n(2)
            .with_k(2)
            .with_m(3);
        assert!(matches!(
            plain.search(&task),
            Err(PlanError::Infeasible { .. })
        ));
        // ...while the row-wise extension splits it across devices.
        let extended = plain.with_row_wise(true);
        let result = extended.search(&task).unwrap();
        assert!(result.plan.num_row_splits() >= 1);
        assert!(result.plan.validate(&task).is_ok());
    }

    #[test]
    fn row_wise_never_hurts_estimated_cost() {
        let sim = sim(2);
        let task = small_task(2);
        let plain = BeamSearch::new(&sim)
            .with_l(2)
            .with_n(3)
            .with_k(2)
            .with_m(3);
        let base = plain.search(&task).unwrap();
        let extended = plain.with_row_wise(true).search(&task).unwrap();
        assert!(extended.estimated_cost_ms <= base.estimated_cost_ms + 1e-9);
    }

    #[test]
    fn parallel_beam_is_bit_identical_to_serial() {
        let sim = sim(2);
        let task = small_task(2);
        let make = |threads| {
            BeamSearch::new(&sim)
                .with_l(2)
                .with_n(3)
                .with_k(2)
                .with_m(3)
                .with_threads(threads)
        };
        let serial = make(1).search(&task).unwrap();
        for threads in [2, 8] {
            let parallel = make(threads).search(&task).unwrap();
            assert_eq!(
                parallel.plan, serial.plan,
                "plan diverged at {threads} threads"
            );
            assert_eq!(
                parallel.estimated_cost_ms.to_bits(),
                serial.estimated_cost_ms.to_bits(),
                "cost diverged at {threads} threads"
            );
            assert_eq!(parallel.evaluated_plans, serial.evaluated_plans);
        }
    }

    #[test]
    fn phase_stats_are_populated() {
        let sim = sim(2);
        let task = small_task(2);
        let result = BeamSearch::new(&sim)
            .with_l(2)
            .with_n(3)
            .with_k(2)
            .with_m(3)
            .search(&task)
            .unwrap();
        assert!(result.phase_stats.candidate.total() > 0);
        assert!(result.phase_stats.inner.total() > 0);
        assert!(result.phase_stats.inner.hit_rate() <= 1.0);
    }

    #[test]
    fn row_wise_without_beam_presplits_tall_tables() {
        let sim = sim(2);
        // 8 GB tall-skinny table, greedy-only config (L = 0): the
        // deterministic presplit pass must row-halve it until it fits.
        let tall = TableConfig::new(TableId(0), 4, 512 << 20, 16.0, 1.0);
        let task = ShardingTask::new(vec![tall], 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let search = BeamSearch::new(&sim).with_l(0).with_row_wise(true);
        let result = search.search(&task).unwrap();
        assert!(result.plan.num_row_splits() >= 1);
        assert!(result.plan.validate(&task).is_ok());
    }

    #[test]
    fn replication_proposes_replicate_candidates() {
        let sim = sim(2);
        let search = BeamSearch::new(&sim).with_n(3).with_replication(true);
        let task = small_task(2);
        let cands = search.candidates(task.tables(), task.batch_size());
        assert!(cands.iter().any(|s| s.kind == SplitKind::Replicate));
    }

    #[test]
    fn replication_never_hurts_estimated_cost() {
        let sim = sim(2);
        let task = small_task(2);
        let plain = BeamSearch::new(&sim)
            .with_l(2)
            .with_n(3)
            .with_k(2)
            .with_m(3);
        let base = plain.search(&task).unwrap();
        let replicated = plain.with_replication(true).search(&task).unwrap();
        assert!(replicated.estimated_cost_ms <= base.estimated_cost_ms + 1e-9);
        assert!(replicated.plan.validate(&task).is_ok());
    }

    #[test]
    fn heterogeneous_task_plans_respect_per_device_budgets() {
        use nshard_data::{DevicePool, DeviceProfile};
        let sim = sim(2);
        let tables: Vec<TableConfig> = (0..6)
            .map(|i| TableConfig::new(TableId(i), 32, 1 << 16, 6.0, 1.0))
            .collect();
        let total: u64 = tables.iter().map(|t| t.memory_bytes()).sum();
        // Device 1 fits a single table; the rest must crowd onto device 0.
        let one_table = tables[0].memory_bytes();
        let pool = DevicePool::new(
            vec![
                DeviceProfile::new(total, 1.0, 0),
                DeviceProfile::new(one_table, 1.0, 0),
            ],
            1.0,
        );
        let task =
            ShardingTask::new(tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536).with_devices(pool);
        let result = BeamSearch::new(&sim)
            .with_l(1)
            .with_n(2)
            .with_k(2)
            .with_m(3)
            .search(&task)
            .unwrap();
        assert!(result.plan.validate(&task).is_ok());
        let bytes = result.plan.device_bytes();
        assert!(bytes[1] <= one_table);
    }

    #[test]
    fn hetero_parallel_beam_is_bit_identical_to_serial() {
        use nshard_data::DevicePool;
        let sim = sim(2);
        let tables: Vec<TableConfig> = (0..8)
            .map(|i| {
                TableConfig::new(
                    TableId(i),
                    if i % 2 == 0 { 64 } else { 16 },
                    1 << 18,
                    8.0,
                    1.0,
                )
            })
            .collect();
        let pool = DevicePool::two_tier(
            1,
            nshard_sim::DEFAULT_MEM_BYTES,
            1,
            nshard_sim::DEFAULT_MEM_BYTES / 2,
            2.0,
            0.25,
        );
        let task =
            ShardingTask::new(tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536).with_devices(pool);
        let make = |threads| {
            BeamSearch::new(&sim)
                .with_l(2)
                .with_n(3)
                .with_k(2)
                .with_m(3)
                .with_row_wise(true)
                .with_replication(true)
                .with_threads(threads)
        };
        let serial = make(1).search(&task).unwrap();
        for threads in [2, 8] {
            let parallel = make(threads).search(&task).unwrap();
            assert_eq!(parallel.plan, serial.plan, "diverged at {threads} threads");
            assert_eq!(
                parallel.estimated_cost_ms.to_bits(),
                serial.estimated_cost_ms.to_bits()
            );
        }
    }

    #[test]
    fn all_dim4_tables_terminate_immediately() {
        let sim = sim(2);
        let tables: Vec<TableConfig> = (0..4)
            .map(|i| TableConfig::new(TableId(i), 4, 1 << 16, 4.0, 1.0))
            .collect();
        let task = ShardingTask::new(tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let result = BeamSearch::new(&sim).with_l(5).search(&task).unwrap();
        assert!(result.plan.split_plan().is_empty());
    }
}
