//! Self-healing of memory-infeasible sharding plans.
//!
//! Search algorithms (and especially the memory-oblivious baselines of
//! Table 1) sometimes emit plans that overflow a device's embedding-memory
//! budget — the simulator rejects these with `SimError::OutOfMemory`, and
//! the paper marks the algorithm with a "-" cell. The [`RepairEngine`]
//! instead tries to *salvage* such plans: it iteratively evicts tables from
//! overflowing devices (largest-first) and re-places them on devices with
//! headroom, column-splitting tables that fit nowhere, until the plan is
//! memory-feasible or provably stuck.
//!
//! Target devices are chosen cost-model-guided when a
//! [`CostSimulator`] is supplied (minimizing the predicted compute cost of
//! the receiving device), and by minimal resulting memory load otherwise.
//! Every action is recorded in a typed [`RepairReport`] so callers — most
//! importantly the fallback chain in [`crate::fallback`] — can attribute
//! exactly what was changed.
//!
//! Repair is fully deterministic: identical inputs produce identical
//! reports.

use nshard_cost::{CostSimulator, TableSetKey};
use nshard_data::ShardingTask;
use nshard_sim::TableProfile;

use crate::plan::{PlanError, ShardingPlan, SplitStep};
use crate::pool::WorkPool;

/// Limits of the repair loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Maximum number of recorded actions (moves + splits) before the
    /// engine gives up. Bounds the loop on adversarial inputs.
    pub max_steps: usize,
    /// Whether tables that fit on no device may be column-split in place.
    pub allow_splits: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            max_steps: 256,
            allow_splits: true,
        }
    }
}

/// One recorded repair action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStep {
    /// Sharded table `table` was evicted from `from` and placed on `to`.
    Moved {
        /// Index into the sharded table list at the time of the move.
        table: usize,
        /// Source device.
        from: usize,
        /// Target device.
        to: usize,
        /// Bytes moved.
        bytes: u64,
    },
    /// Sharded table `table` on `device` was column-split in place (its
    /// second half appended to the table list, on the same device).
    Split {
        /// Index into the sharded table list at the time of the split.
        table: usize,
        /// Device holding the table.
        device: usize,
    },
}

/// The outcome of a successful repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// The repaired, memory-feasible plan.
    pub plan: ShardingPlan,
    /// Every action taken, in order.
    pub steps: Vec<RepairStep>,
    /// Total bytes above budget across devices before repair.
    pub initial_overflow_bytes: u64,
    /// `true` when the input plan referenced devices outside the task's
    /// cluster and its tables were remapped onto valid devices first
    /// (the `SimError::DeviceOutOfRange` failure class).
    pub remapped_devices: bool,
}

impl RepairReport {
    /// `true` when the input plan was already feasible and untouched.
    pub fn was_noop(&self) -> bool {
        self.steps.is_empty() && !self.remapped_devices
    }
}

/// Evicts-and-replaces tables of infeasible plans until they fit.
/// See the [module documentation](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairEngine<'a> {
    config: RepairConfig,
    cost: Option<&'a CostSimulator>,
    threads: usize,
}

impl<'a> RepairEngine<'a> {
    /// An engine with the given limits and size-heuristic target choice.
    pub fn new(config: RepairConfig) -> Self {
        Self {
            config,
            cost: None,
            threads: 0,
        }
    }

    /// Guides target-device choice with predicted compute costs
    /// (builder-style).
    pub fn with_cost_model(mut self, cost: &'a CostSimulator) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Sets the worker-thread count for candidate-device scoring (`0` =
    /// auto). Repair stays deterministic at any count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Repairs `plan` for `task`: after this returns `Ok`, the reported
    /// plan validates against the task (in particular, every device is
    /// within the memory budget).
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when no sequence of moves and splits
    /// within the configured limits makes the plan fit;
    /// [`PlanError::Invalid`] when the input plan's tables are not
    /// derivable from the task's tables.
    pub fn repair(
        &self,
        task: &ShardingTask,
        plan: &ShardingPlan,
    ) -> Result<RepairReport, PlanError> {
        let num_devices = task.num_devices();
        let budgets = task.budgets();

        let mut split_plan = plan.split_plan().to_vec();
        let mut tables = plan.sharded_tables().to_vec();
        let mut device_of = plan.device_of().to_vec();

        // Failure class 1: the plan was built for a different (larger)
        // cluster. Remap every out-of-range table onto the least-loaded
        // valid device, then fall through to memory repair.
        let mut remapped = false;
        let mut bytes_of_device = vec![0u64; num_devices];
        for (t, &d) in tables.iter().zip(&device_of) {
            if d < num_devices {
                bytes_of_device[d] += t.memory_bytes();
            }
        }
        for i in 0..tables.len() {
            if device_of[i] >= num_devices {
                let target = least_loaded(&bytes_of_device);
                device_of[i] = target;
                bytes_of_device[target] += tables[i].memory_bytes();
                remapped = true;
            }
        }

        let initial_overflow_bytes: u64 = bytes_of_device
            .iter()
            .zip(&budgets)
            .map(|(&b, &cap)| b.saturating_sub(cap))
            .sum();

        let total: u64 = tables.iter().map(|t| t.memory_bytes()).sum();
        let capacity: u64 = budgets.iter().fold(0u64, |acc, &b| acc.saturating_add(b));
        if total > capacity {
            return Err(PlanError::Infeasible {
                reason: format!(
                    "tables need {total} bytes but the cluster holds {capacity} \
                     across {num_devices} devices"
                ),
            });
        }

        let mut steps = Vec::new();
        while let Some(offender) = worst_device(&bytes_of_device, &budgets) {
            if steps.len() >= self.config.max_steps {
                return Err(PlanError::Infeasible {
                    reason: format!(
                        "repair did not converge within {} steps \
                         (device {offender} still over budget)",
                        self.config.max_steps
                    ),
                });
            }

            // Candidate evictions, largest table first.
            let mut on_device: Vec<usize> = (0..tables.len())
                .filter(|&i| device_of[i] == offender)
                .collect();
            on_device.sort_by_key(|&i| (std::cmp::Reverse(tables[i].memory_bytes()), i));

            let moved = on_device.iter().copied().find_map(|i| {
                let bytes = tables[i].memory_bytes();
                self.pick_target(
                    task,
                    &tables,
                    &device_of,
                    &bytes_of_device,
                    offender,
                    i,
                    &budgets,
                )
                .map(|to| (i, to, bytes))
            });

            if let Some((i, to, bytes)) = moved {
                device_of[i] = to;
                bytes_of_device[offender] -= bytes;
                bytes_of_device[to] += bytes;
                steps.push(RepairStep::Moved {
                    table: i,
                    from: offender,
                    to,
                    bytes,
                });
                continue;
            }

            // Nothing fits anywhere whole: split the largest splittable
            // table on the offender so smaller pieces can migrate.
            if !self.config.allow_splits || num_devices == 1 {
                return Err(PlanError::Infeasible {
                    reason: format!(
                        "device {offender} is over budget and no table can be \
                         moved{}",
                        if num_devices == 1 {
                            " (single-device cluster)"
                        } else {
                            " (splitting disabled)"
                        }
                    ),
                });
            }
            let split = on_device
                .iter()
                .copied()
                .find(|&i| tables[i].split_columns().is_some());
            match split {
                Some(i) => {
                    let (a, b) = tables[i].split_columns().expect("checked splittable");
                    tables[i] = a;
                    tables.push(b);
                    device_of.push(offender);
                    split_plan.push(SplitStep::column(i));
                    steps.push(RepairStep::Split {
                        table: i,
                        device: offender,
                    });
                }
                None => {
                    return Err(PlanError::Infeasible {
                        reason: format!(
                            "device {offender} is over budget but none of its \
                             tables can be moved or split further"
                        ),
                    });
                }
            }
        }

        let plan = ShardingPlan::with_split_plan(split_plan, tables, device_of, num_devices)?;
        plan.validate(task)?;
        Ok(RepairReport {
            plan,
            steps,
            initial_overflow_bytes,
            remapped_devices: remapped,
        })
    }

    /// Chooses the device to receive evicted table `table_idx`, or `None`
    /// when it fits nowhere. With a cost model: the feasible device whose
    /// predicted compute cost *after insertion* is lowest. Without: the
    /// feasible device with the lightest memory load.
    #[allow(clippy::too_many_arguments)]
    fn pick_target(
        &self,
        task: &ShardingTask,
        tables: &[nshard_data::TableConfig],
        device_of: &[usize],
        bytes_of_device: &[u64],
        from: usize,
        table_idx: usize,
        budgets: &[u64],
    ) -> Option<usize> {
        let bytes = tables[table_idx].memory_bytes();
        let feasible: Vec<usize> = (0..bytes_of_device.len())
            .filter(|&d| d != from && bytes_of_device[d].saturating_add(bytes) <= budgets[d])
            .collect();
        match self.cost {
            Some(cost) => {
                if feasible.is_empty() {
                    return None;
                }
                // Build each candidate device's would-be table set in
                // parallel, then score them all with one batched model
                // call; ties break toward the lower device index, like
                // the old per-device comparator.
                let pool = WorkPool::new(self.threads);
                let sets: Vec<(TableSetKey, Vec<TableProfile>)> = pool.map(&feasible, |&d| {
                    let mut profiles: Vec<TableProfile> = tables
                        .iter()
                        .zip(device_of)
                        .filter(|&(_, &dev)| dev == d)
                        .map(|(t, _)| t.profile(task.batch_size()))
                        .collect();
                    profiles.push(tables[table_idx].profile(task.batch_size()));
                    (TableSetKey::of(&profiles), profiles)
                });
                let keyed: Vec<(TableSetKey, &[TableProfile])> =
                    sets.iter().map(|(k, p)| (*k, p.as_slice())).collect();
                let costs = cost.device_compute_cost_batch(&keyed);
                let mut best: Option<(usize, f64)> = None;
                for (&d, &c) in feasible.iter().zip(&costs) {
                    if best.is_none_or(|(_, bc)| c < bc) {
                        best = Some((d, c));
                    }
                }
                best.map(|(d, _)| d)
            }
            None => feasible
                .into_iter()
                .min_by_key(|&d| (bytes_of_device[d], d)),
        }
    }
}

/// Index of the least-loaded device.
fn least_loaded(bytes: &[u64]) -> usize {
    bytes
        .iter()
        .enumerate()
        .min_by_key(|&(i, &b)| (b, i))
        .map(|(i, _)| i)
        .expect("at least one device")
}

/// The most-overloaded device (largest overflow above its own budget), or
/// `None` when everything fits.
fn worst_device(bytes: &[u64], budgets: &[u64]) -> Option<usize> {
    bytes
        .iter()
        .zip(budgets)
        .enumerate()
        .filter(|&(_, (&b, &cap))| b > cap)
        .max_by_key(|&(i, (&b, &cap))| (b - cap, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_data::{TableConfig, TableId};

    fn t(id: u32, dim: u32, rows: u64) -> TableConfig {
        TableConfig::new(TableId(id), dim, rows, 8.0, 1.0)
    }

    /// Two devices, budget fits ~2 MB each; all three 1 MB tables start on
    /// device 0 (3 MB: over budget).
    fn overloaded() -> (ShardingTask, ShardingPlan) {
        let tables = vec![t(0, 64, 4096), t(1, 64, 4096), t(2, 64, 4096)];
        let bytes_each = tables[0].memory_bytes();
        let task = ShardingTask::new(tables.clone(), 2, bytes_each * 2, 1024);
        let plan = ShardingPlan::new(vec![], tables, vec![0, 0, 0], 2).unwrap();
        (task, plan)
    }

    #[test]
    fn feasible_plan_is_a_noop() {
        let (task, _) = overloaded();
        let plan = ShardingPlan::new(vec![], task.tables().to_vec(), vec![0, 1, 0], 2).unwrap();
        let report = RepairEngine::default().repair(&task, &plan).unwrap();
        assert!(report.was_noop());
        assert_eq!(report.initial_overflow_bytes, 0);
        assert_eq!(report.plan, plan);
    }

    #[test]
    fn oom_plan_is_repaired_by_moving_tables() {
        let (task, plan) = overloaded();
        assert!(plan.validate(&task).is_err());
        let report = RepairEngine::default().repair(&task, &plan).unwrap();
        assert!(report.plan.validate(&task).is_ok());
        assert!(report.initial_overflow_bytes > 0);
        assert!(matches!(
            report.steps[0],
            RepairStep::Moved { from: 0, to: 1, .. }
        ));
    }

    #[test]
    fn repair_is_deterministic() {
        let (task, plan) = overloaded();
        let a = RepairEngine::default().repair(&task, &plan).unwrap();
        let b = RepairEngine::default().repair(&task, &plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_table_is_split_then_balanced() {
        // One table larger than any single device's budget: must split.
        let big = t(0, 128, 8192);
        let task = ShardingTask::new(vec![big], 2, big.memory_bytes() * 3 / 4, 1024);
        let plan = ShardingPlan::new(vec![], vec![big], vec![0], 2).unwrap();
        let report = RepairEngine::default().repair(&task, &plan).unwrap();
        assert!(report.plan.validate(&task).is_ok());
        assert!(report
            .steps
            .iter()
            .any(|s| matches!(s, RepairStep::Split { .. })));
        assert!(report.plan.num_column_splits() >= 1);
    }

    #[test]
    fn splitting_disabled_fails_on_oversized_table() {
        let big = t(0, 128, 8192);
        let task = ShardingTask::new(vec![big], 2, big.memory_bytes() * 3 / 4, 1024);
        let plan = ShardingPlan::new(vec![], vec![big], vec![0], 2).unwrap();
        let engine = RepairEngine::new(RepairConfig {
            allow_splits: false,
            ..RepairConfig::default()
        });
        assert!(matches!(
            engine.repair(&task, &plan),
            Err(PlanError::Infeasible { .. })
        ));
    }

    #[test]
    fn aggregate_overflow_is_rejected_fast() {
        let tables = vec![t(0, 64, 4096), t(1, 64, 4096)];
        let task = ShardingTask::new(tables.clone(), 2, tables[0].memory_bytes() / 2, 1024);
        let plan = ShardingPlan::new(vec![], tables, vec![0, 1], 2).unwrap();
        let err = RepairEngine::default().repair(&task, &plan).unwrap_err();
        assert!(matches!(err, PlanError::Infeasible { .. }));
    }

    #[test]
    fn out_of_range_devices_are_remapped() {
        // Plan built for 4 devices, task has 2: tables on devices 2 and 3
        // must come home.
        let tables = vec![
            t(0, 16, 1024),
            t(1, 16, 1024),
            t(2, 16, 1024),
            t(3, 16, 1024),
        ];
        let four_dev = ShardingPlan::new(vec![], tables.clone(), vec![0, 1, 2, 3], 4).unwrap();
        let task = ShardingTask::new(tables, 2, 1 << 30, 1024);
        let report = RepairEngine::default().repair(&task, &four_dev).unwrap();
        assert!(report.remapped_devices);
        assert!(report.plan.validate(&task).is_ok());
        assert_eq!(report.plan.num_devices(), 2);
    }

    #[test]
    fn repair_honors_per_device_budgets() {
        use nshard_data::{DevicePool, DeviceProfile};
        // Three 1 MB tables, all on the tight device (fits one).
        let tables = vec![t(0, 64, 4096), t(1, 64, 4096), t(2, 64, 4096)];
        let each = tables[0].memory_bytes();
        let pool = DevicePool::new(
            vec![
                DeviceProfile::new(each * 2, 1.0, 0),
                DeviceProfile::new(each, 1.0, 0),
            ],
            1.0,
        );
        let task = ShardingTask::new(tables.clone(), 2, each * 2, 1024).with_devices(pool);
        let plan = ShardingPlan::new(vec![], tables, vec![1, 1, 1], 2).unwrap();
        assert!(plan.validate(&task).is_err());
        let report = RepairEngine::default().repair(&task, &plan).unwrap();
        assert!(report.plan.validate(&task).is_ok());
        let bytes = report.plan.device_bytes();
        assert!(bytes[0] <= each * 2);
        assert!(bytes[1] <= each, "tight device must end within its budget");
    }

    #[test]
    fn single_device_overflow_is_infeasible() {
        let big = t(0, 64, 8192);
        let task = ShardingTask::new(vec![big], 1, big.memory_bytes() / 2, 1024);
        let plan = ShardingPlan::new(vec![], vec![big], vec![0], 1).unwrap();
        assert!(matches!(
            RepairEngine::default().repair(&task, &plan),
            Err(PlanError::Infeasible { .. })
        ));
    }
}
