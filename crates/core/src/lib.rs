//! # nshard-core — the NeuroShard online search
//!
//! The "search" half of the paper's *pre-train, and search* paradigm
//! (§3.3): given any sharding task, find the joint column-wise + table-wise
//! sharding plan minimizing the simulated embedding cost
//!
//! ```text
//! argmin_{c ∈ C, t ∈ T}  f(c, t)
//! ```
//!
//! where `f` is estimated entirely by the pre-trained cost models — no GPU
//! (here: no ground-truth simulator) execution during search.
//!
//! * [`plan`] — column-wise and table-wise plan types and their semantics,
//! * [`greedy_grid`] — the inner loop (Algorithm 2): a greedy allocator
//!   balancing predicted computation costs under a max-device-dimension
//!   constraint found by grid search,
//! * [`beam`] — the outer loop (Algorithm 1): beam search over column-wise
//!   sharding steps, candidates drawn from the most costly and the largest
//!   tables,
//! * [`neuroshard`] — the end-to-end [`NeuroShard`] sharder,
//! * [`pool`] — the scoped-thread work pool behind the parallel search
//!   (order-preserving, so parallel plans are bit-identical to serial),
//! * [`eval`] — ground-truth evaluation of finished plans (the paper's
//!   "collect real costs from GPUs" step),
//! * [`repair`] — self-healing of memory-infeasible plans
//!   (evict-and-replace, cost-model-guided),
//! * [`fallback`] — the graceful-degradation chain with bounded retries
//!   and full [`PlanProvenance`] attribution.
//!
//! ## Example
//!
//! ```no_run
//! use nshard_core::{NeuroShard, NeuroShardConfig, ShardingAlgorithm};
//! use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
//! use nshard_data::{ShardingTask, TablePool};
//!
//! let pool = TablePool::synthetic_dlrm(856, 2023);
//! let bundle = CostModelBundle::pretrain(
//!     &pool, 4, &CollectConfig::default(), &TrainSettings::default(), 0,
//! );
//! let sharder = NeuroShard::new(bundle, NeuroShardConfig::default());
//! let task = ShardingTask::sample(&pool, 4, 10..=60, 128, 7);
//! let outcome = sharder.shard_with_stats(&task).expect("task is feasible");
//! println!("estimated embedding cost: {:.2} ms", outcome.estimated_cost_ms);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beam;
pub mod eval;
pub mod fallback;
pub mod greedy_grid;
pub mod neuroshard;
pub mod plan;
pub mod pool;
pub mod repair;

pub use beam::{BeamSearch, BeamSearchResult, SearchPhaseStats};
pub use eval::{cluster_for, evaluate_plan, evaluate_plan_exact};
pub use fallback::{
    size_balanced_plan, FailoverAttribution, FallbackChain, PlanProvenance, PlanSource,
    ProvenanceEvent, ReplanAttribution, ResilientError, ResilientOutcome, RetryPolicy,
};
pub use greedy_grid::{GreedyGridSearch, GridSearchResult};
pub use neuroshard::{ConfigError, NeuroShard, NeuroShardConfig, ShardOutcome};
pub use plan::{
    apply_column_plan, apply_split_plan, migration_bytes, ColumnPlan, PlanError, ShardingPlan,
    SplitKind, SplitPlan, SplitStep,
};
pub use pool::{resolve_threads, WorkPool};
pub use repair::{RepairConfig, RepairEngine, RepairReport, RepairStep};

use nshard_data::ShardingTask;

/// A table-sharding algorithm: anything that can map a [`ShardingTask`] to
/// a [`ShardingPlan`]. Implemented by [`NeuroShard`] and by every baseline
/// in `nshard-baselines`.
pub trait ShardingAlgorithm {
    /// Short display name used in experiment tables (e.g. `"neuroshard"`).
    fn name(&self) -> &str;

    /// Produces a sharding plan for `task`.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the algorithm cannot produce a memory-feasible
    /// plan — the "-" cells of Table 1.
    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError>;
}
