//! The scoped-thread work pool behind the parallel search.
//!
//! The implementation lives in the bottom-layer [`nshard_pool`] crate so
//! the pre-training side (`nshard-nn`, `nshard-cost`) can share the exact
//! same pool without a dependency cycle; this module re-exports it under
//! the historical `nshard_core::pool` path.

pub use nshard_pool::{resolve_threads, sample_seed, splitmix64, Backoff, WorkPool, THREADS_ENV};
