//! The end-to-end NeuroShard sharder.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use nshard_cost::{CostModelBundle, CostSimulator};
use nshard_data::ShardingTask;

use crate::beam::BeamSearch;
use crate::plan::{PlanError, ShardingPlan};
use crate::ShardingAlgorithm;

/// Hyperparameters of the online search (§4, "Implementation details":
/// `N = 10, K = 3, L = 10, M = 11`) plus the ablation switches of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuroShardConfig {
    /// Candidate tables per criterion in the beam's expansion step.
    pub n: usize,
    /// Beam width.
    pub k: usize,
    /// Column-wise sharding levels.
    pub l: usize,
    /// Grid-search granularity for the max device dimension.
    pub m: usize,
    /// `false` disables column-wise sharding ("w/o beam search").
    pub use_beam: bool,
    /// `false` disables the max-dim grid ("w/o greedy grid search").
    pub use_grid: bool,
    /// `false` disables prediction caching ("w/o caching").
    pub use_cache: bool,
    /// `true` also searches **row-wise** splits (the paper's future-work
    /// extension); default `false` reproduces the paper's search space.
    /// Works with or without the beam: in the greedy-only configuration
    /// (`use_beam: false`) a deterministic presplit pass row-halves tables
    /// too large for any device before allocation.
    pub use_row_wise: bool,
    /// `true` also searches **replicated** placements of hot tables:
    /// replicas cost memory on every holder but split the table's lookup
    /// traffic. Requires `use_beam` (replicas are only proposed during
    /// beam expansion). Deserializes as `false` when absent, so persisted
    /// configs from earlier versions load unchanged.
    #[serde(default)]
    pub use_replication: bool,
    /// `false` disables batched MLP inference (one single-row forward per
    /// query — the pre-batching engine, kept as a benchmark baseline).
    /// Plans and costs are bit-identical either way.
    pub use_batch: bool,
    /// `true` runs cost-model inference through int8-quantized weights
    /// (faster, approximate; see [`nshard_cost::InferenceMode`]). Default
    /// `false` keeps the bit-exact f32 path.
    pub use_int8: bool,
    /// Worker threads for the parallel search; `0` = auto (the
    /// `NSHARD_THREADS` environment variable, then available
    /// parallelism). Plans and costs are bit-identical at any count.
    pub threads: usize,
}

impl Default for NeuroShardConfig {
    fn default() -> Self {
        Self {
            n: 10,
            k: 3,
            l: 10,
            m: 11,
            use_beam: true,
            use_grid: true,
            use_cache: true,
            use_row_wise: false,
            use_replication: false,
            use_batch: true,
            use_int8: false,
            threads: 0,
        }
    }
}

impl NeuroShardConfig {
    /// A faster configuration for tests and smoke experiments.
    pub fn smoke() -> Self {
        Self {
            n: 3,
            k: 2,
            l: 2,
            m: 3,
            ..Self::default()
        }
    }

    /// Rejects configurations whose switches silently contradict each
    /// other instead of letting them become dead config.
    ///
    /// `use_row_wise` is valid in every configuration: with the beam it
    /// expands the candidate set, and without it a deterministic presplit
    /// pass still row-halves oversized tables (ROADMAP item 4, now
    /// first-class). The one rejected combination is `use_replication:
    /// true` with `use_beam: false`: replicated placements are only
    /// proposed during beam expansion, so disabling the beam would make
    /// the replication request dead config.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ReplicationRequiresBeam`] for the combination above.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.use_replication && !self.use_beam {
            return Err(ConfigError::ReplicationRequiresBeam);
        }
        Ok(())
    }
}

/// Typed rejection of a contradictory [`NeuroShardConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// `use_replication: true` with `use_beam: false`: replicated
    /// placements are only reachable through beam expansion, so the
    /// request would be silently ignored.
    ReplicationRequiresBeam,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ReplicationRequiresBeam => write!(
                f,
                "use_replication: true requires use_beam: true — replicated placements \
                 are only explored during beam expansion, so this combination would be \
                 dead config"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The result of sharding one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOutcome {
    /// The selected plan.
    pub plan: ShardingPlan,
    /// The plan's estimated embedding cost from the cost models, ms.
    pub estimated_cost_ms: f64,
    /// Wall-clock sharding time in seconds.
    pub sharding_time_s: f64,
    /// Prediction-cache hit rate during this call.
    pub cache_hit_rate: f64,
    /// Number of inner-loop evaluations performed.
    pub evaluated_plans: usize,
    /// Per-phase cache statistics (candidate ranking vs inner search).
    pub phase_stats: crate::beam::SearchPhaseStats,
}

/// NeuroShard: pre-trained cost models + beam / greedy-grid online search.
///
/// # Example
///
/// ```no_run
/// use nshard_core::{NeuroShard, NeuroShardConfig, ShardingAlgorithm};
/// use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
/// use nshard_data::{ShardingTask, TablePool};
///
/// let pool = TablePool::synthetic_dlrm(856, 0);
/// let bundle = CostModelBundle::pretrain(
///     &pool, 4, &CollectConfig::default(), &TrainSettings::default(), 1,
/// );
/// let sharder = NeuroShard::new(bundle, NeuroShardConfig::default());
/// let task = ShardingTask::sample(&pool, 4, 10..=60, 128, 2);
/// let plan = sharder.shard(&task)?;
/// # Ok::<(), nshard_core::PlanError>(())
/// ```
#[derive(Debug)]
pub struct NeuroShard {
    sim: CostSimulator,
    config: NeuroShardConfig,
}

impl NeuroShard {
    /// Builds a sharder from a pre-trained bundle and a search
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is contradictory (see
    /// [`NeuroShardConfig::validate`]); use [`NeuroShard::try_new`] to
    /// handle the typed error instead.
    pub fn new(bundle: CostModelBundle, config: NeuroShardConfig) -> Self {
        Self::try_new(bundle, config).unwrap_or_else(|e| panic!("invalid NeuroShardConfig: {e}"))
    }

    /// [`NeuroShard::new`] returning the typed [`ConfigError`] instead of
    /// panicking on a contradictory configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when [`NeuroShardConfig::validate`] rejects
    /// `config`.
    pub fn try_new(bundle: CostModelBundle, config: NeuroShardConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut sim = CostSimulator::new(bundle);
        if !config.use_cache {
            sim = sim.with_cache_disabled();
        }
        if !config.use_batch {
            sim = sim.with_batching_disabled();
        }
        if config.use_int8 {
            sim = sim.with_inference_mode(nshard_cost::InferenceMode::Int8);
        }
        Ok(Self { sim, config })
    }

    /// The search configuration.
    pub fn config(&self) -> &NeuroShardConfig {
        &self.config
    }

    /// The cost simulator (bundle + cache).
    pub fn simulator(&self) -> &CostSimulator {
        &self.sim
    }

    /// Shards `task`, returning the plan plus search telemetry.
    ///
    /// # Errors
    ///
    /// [`PlanError::Infeasible`] when no explored plan satisfies the memory
    /// budget.
    pub fn shard_with_stats(&self, task: &ShardingTask) -> Result<ShardOutcome, PlanError> {
        let hits0 = self.sim.cache().hits();
        let misses0 = self.sim.cache().misses();
        let start = Instant::now();

        let mut search = BeamSearch::new(&self.sim)
            .with_n(self.config.n)
            .with_k(self.config.k)
            .with_l(if self.config.use_beam {
                self.config.l
            } else {
                0
            })
            .with_m(self.config.m)
            .with_row_wise(self.config.use_row_wise)
            .with_replication(self.config.use_replication)
            .with_threads(self.config.threads);
        if !self.config.use_grid {
            search = search.without_grid();
        }
        let result = search.search(task)?;

        let elapsed = start.elapsed().as_secs_f64();
        let hits = self.sim.cache().hits() - hits0;
        let misses = self.sim.cache().misses() - misses0;
        let total = hits + misses;
        Ok(ShardOutcome {
            plan: result.plan,
            estimated_cost_ms: result.estimated_cost_ms,
            sharding_time_s: elapsed,
            cache_hit_rate: if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
            evaluated_plans: result.evaluated_plans,
            phase_stats: result.phase_stats,
        })
    }
}

impl ShardingAlgorithm for NeuroShard {
    fn name(&self) -> &str {
        "neuroshard"
    }

    fn shard(&self, task: &ShardingTask) -> Result<ShardingPlan, PlanError> {
        self.shard_with_stats(task).map(|o| o.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_cost::{CollectConfig, TrainSettings};
    use nshard_data::{TableConfig, TableId, TablePool};

    fn sharder(d: usize, config: NeuroShardConfig) -> NeuroShard {
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = CostModelBundle::pretrain(
            &pool,
            d,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        NeuroShard::new(bundle, config)
    }

    fn task(d: usize) -> ShardingTask {
        let tables: Vec<TableConfig> = (0..10)
            .map(|i| {
                TableConfig::new(
                    TableId(i),
                    if i % 3 == 0 { 64 } else { 16 },
                    1 << 18,
                    8.0,
                    1.0,
                )
            })
            .collect();
        ShardingTask::new(tables, d, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
    }

    #[test]
    fn shards_with_telemetry() {
        let ns = sharder(2, NeuroShardConfig::smoke());
        let outcome = ns.shard_with_stats(&task(2)).unwrap();
        assert!(outcome.plan.validate(&task(2)).is_ok());
        assert!(outcome.sharding_time_s >= 0.0);
        assert!(outcome.evaluated_plans >= 1);
        assert!((0.0..=1.0).contains(&outcome.cache_hit_rate));
    }

    #[test]
    fn cache_hit_rate_is_high_with_cache() {
        let ns = sharder(2, NeuroShardConfig::smoke());
        let outcome = ns.shard_with_stats(&task(2)).unwrap();
        assert!(
            outcome.cache_hit_rate > 0.5,
            "hit rate {}",
            outcome.cache_hit_rate
        );
    }

    #[test]
    fn cache_hit_rate_is_zero_without_cache() {
        let config = NeuroShardConfig {
            use_cache: false,
            ..NeuroShardConfig::smoke()
        };
        let ns = sharder(2, config);
        let outcome = ns.shard_with_stats(&task(2)).unwrap();
        assert_eq!(outcome.cache_hit_rate, 0.0);
    }

    #[test]
    fn row_wise_config_is_accepted() {
        let config = NeuroShardConfig {
            use_row_wise: true,
            ..NeuroShardConfig::smoke()
        };
        let ns = sharder(2, config);
        let outcome = ns.shard_with_stats(&task(2)).unwrap();
        assert!(outcome.plan.validate(&task(2)).is_ok());
    }

    #[test]
    fn row_wise_without_beam_is_accepted_and_live() {
        // Formerly rejected as dead config (ROADMAP item 4): row-wise is
        // now first-class in the greedy-only configuration thanks to the
        // deterministic presplit pass.
        let config = NeuroShardConfig {
            use_row_wise: true,
            use_beam: false,
            ..NeuroShardConfig::smoke()
        };
        assert!(config.validate().is_ok());
        let ns = sharder(2, config);
        // An 8 GB tall-skinny table only shards row-wise; the greedy-only
        // sharder must now handle it rather than reject the config.
        let tall = TableConfig::new(TableId(0), 4, 512 << 20, 16.0, 1.0);
        let t = ShardingTask::new(vec![tall], 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let outcome = ns.shard_with_stats(&t).unwrap();
        assert!(outcome.plan.num_row_splits() >= 1);
        assert!(outcome.plan.validate(&t).is_ok());
    }

    #[test]
    fn replication_without_beam_is_rejected_with_typed_error() {
        let config = NeuroShardConfig {
            use_replication: true,
            use_beam: false,
            ..NeuroShardConfig::smoke()
        };
        assert_eq!(config.validate(), Err(ConfigError::ReplicationRequiresBeam));
        let pool = TablePool::synthetic_dlrm(30, 1);
        let bundle = CostModelBundle::pretrain(
            &pool,
            2,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            7,
        );
        let err = NeuroShard::try_new(bundle, config).err().unwrap();
        let msg = err.to_string();
        assert!(
            msg.contains("use_replication") && msg.contains("use_beam"),
            "error must name both switches: {msg}"
        );
        // The paper's default search space stays valid, including the
        // beam-less ablation without a replication request.
        assert!(NeuroShardConfig::default().validate().is_ok());
        let ablation = NeuroShardConfig {
            use_beam: false,
            ..NeuroShardConfig::smoke()
        };
        assert!(ablation.validate().is_ok());
    }

    #[test]
    fn replication_config_is_accepted_with_beam() {
        let config = NeuroShardConfig {
            use_replication: true,
            ..NeuroShardConfig::smoke()
        };
        let ns = sharder(2, config);
        let outcome = ns.shard_with_stats(&task(2)).unwrap();
        assert!(outcome.plan.validate(&task(2)).is_ok());
    }

    #[test]
    fn configs_without_replication_field_deserialize() {
        // A persisted config from before the replication switch existed.
        let legacy = serde_json::to_string(&NeuroShardConfig::smoke()).unwrap();
        let legacy = legacy.replace("\"use_replication\":false,", "");
        assert!(
            !legacy.contains("use_replication"),
            "fixture must lack the field: {legacy}"
        );
        let parsed: NeuroShardConfig = serde_json::from_str(&legacy).unwrap();
        assert!(!parsed.use_replication);
        assert_eq!(parsed, NeuroShardConfig::smoke());
    }

    #[test]
    fn int8_config_produces_valid_plan() {
        let config = NeuroShardConfig {
            use_int8: true,
            ..NeuroShardConfig::smoke()
        };
        let ns = sharder(2, config);
        assert_eq!(
            ns.simulator().inference_mode(),
            nshard_cost::InferenceMode::Int8
        );
        let outcome = ns.shard_with_stats(&task(2)).unwrap();
        assert!(outcome.plan.validate(&task(2)).is_ok());
        assert!(outcome.estimated_cost_ms.is_finite());
    }

    #[test]
    fn trait_object_usable() {
        let ns = sharder(2, NeuroShardConfig::smoke());
        let algo: &dyn ShardingAlgorithm = &ns;
        assert_eq!(algo.name(), "neuroshard");
        assert!(algo.shard(&task(2)).is_ok());
    }
}
