//! Ground-truth evaluation of sharding plans.
//!
//! After the search finishes, the paper runs the chosen plan on real GPUs
//! and reports the max per-device embedding cost ("Evaluation protocol",
//! §4). Here the ground truth is the `nshard-sim` cluster.

use nshard_data::ShardingTask;
use nshard_sim::{Cluster, GpuSpec, PlanCosts, SimError};

use crate::plan::ShardingPlan;

/// The ground-truth cluster for `task`: the GPU spec's memory budget is
/// overridden by the task's, and when the task describes a heterogeneous
/// fleet the cluster inherits its per-device memory, compute, and
/// interconnect profiles.
pub fn cluster_for(task: &ShardingTask, spec: &GpuSpec) -> Cluster {
    let cluster = Cluster::new(
        spec.with_mem_budget(task.mem_budget_bytes()),
        task.num_devices(),
        task.batch_size(),
    );
    match task.device_pool() {
        Some(pool) => cluster.with_devices(pool.clone()),
        None => cluster,
    }
}

/// Evaluates `plan` for `task` on the ground-truth cluster with measurement
/// noise (the paper's repeated-measurement protocol), returning the full
/// per-device cost breakdown.
///
/// # Errors
///
/// Propagates [`SimError`] — most importantly out-of-memory failures, which
/// mark an algorithm as unable to scale in Table 1.
pub fn evaluate_plan(
    task: &ShardingTask,
    plan: &ShardingPlan,
    spec: &GpuSpec,
    seed: u64,
) -> Result<PlanCosts, SimError> {
    cluster_for(task, spec).evaluate(&plan.device_profiles(task.batch_size()), seed)
}

/// Like [`evaluate_plan`] but without measurement noise (used by analytical
/// experiments and tests).
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn evaluate_plan_exact(
    task: &ShardingTask,
    plan: &ShardingPlan,
    spec: &GpuSpec,
) -> Result<PlanCosts, SimError> {
    cluster_for(task, spec).evaluate_exact(&plan.device_profiles(task.batch_size()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardingPlan;
    use nshard_data::{TableConfig, TableId};

    fn task() -> ShardingTask {
        let tables: Vec<TableConfig> = (0..4)
            .map(|i| TableConfig::new(TableId(i), 32, 1 << 18, 8.0, 1.0))
            .collect();
        ShardingTask::new(tables, 2, nshard_sim::DEFAULT_MEM_BYTES, 65_536)
    }

    fn plan(task: &ShardingTask) -> ShardingPlan {
        ShardingPlan::new(
            vec![],
            task.tables().to_vec(),
            vec![0, 1, 0, 1],
            task.num_devices(),
        )
        .unwrap()
    }

    #[test]
    fn evaluation_reports_per_device_costs() {
        let t = task();
        let p = plan(&t);
        let costs = evaluate_plan(&t, &p, &GpuSpec::rtx_2080_ti(), 3).unwrap();
        assert_eq!(costs.devices().len(), 2);
        assert!(costs.max_total_ms() > 0.0);
    }

    #[test]
    fn exact_evaluation_is_deterministic() {
        let t = task();
        let p = plan(&t);
        let a = evaluate_plan_exact(&t, &p, &GpuSpec::rtx_2080_ti()).unwrap();
        let b = evaluate_plan_exact(&t, &p, &GpuSpec::rtx_2080_ti()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn memory_overflow_surfaces_as_error() {
        let huge = TableConfig::new(TableId(0), 128, 32 << 20, 8.0, 1.0); // 16 GB
        let t = ShardingTask::new(vec![huge], 1, nshard_sim::DEFAULT_MEM_BYTES, 65_536);
        let p = ShardingPlan::new(vec![], vec![huge], vec![0], 1).unwrap();
        assert!(matches!(
            evaluate_plan(&t, &p, &GpuSpec::rtx_2080_ti(), 0),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn heterogeneous_budgets_reach_the_ground_truth() {
        use nshard_data::{DevicePool, DeviceProfile};
        let t = task();
        let p = plan(&t);
        // Uniform evaluation succeeds; starving device 1's budget makes
        // the same plan overflow at ground truth.
        assert!(evaluate_plan_exact(&t, &p, &GpuSpec::rtx_2080_ti()).is_ok());
        let starved = DevicePool::new(
            vec![
                DeviceProfile::new(nshard_sim::DEFAULT_MEM_BYTES, 1.0, 0),
                DeviceProfile::new(1024, 1.0, 0),
            ],
            1.0,
        );
        let hetero = t.clone().with_devices(starved);
        assert!(matches!(
            evaluate_plan_exact(&hetero, &plan(&hetero), &GpuSpec::rtx_2080_ti()),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn uniform_pool_evaluation_is_bit_identical_to_scalar() {
        use nshard_data::DevicePool;
        let t = task();
        let p = plan(&t);
        let scalar = evaluate_plan_exact(&t, &p, &GpuSpec::rtx_2080_ti()).unwrap();
        let pooled_task = t
            .clone()
            .with_devices(DevicePool::uniform(2, nshard_sim::DEFAULT_MEM_BYTES));
        let pooled = evaluate_plan_exact(&pooled_task, &p, &GpuSpec::rtx_2080_ti()).unwrap();
        assert_eq!(scalar, pooled);
    }

    #[test]
    fn task_memory_budget_overrides_spec() {
        // A plan valid under the default 4 GB budget fails under a tiny one.
        let t = task().with_mem_budget(1024);
        let p = plan(&t);
        assert!(evaluate_plan(&t, &p, &GpuSpec::rtx_2080_ti(), 0).is_err());
    }
}
