//! Random table combination generation (Algorithm 4 of the paper).
//!
//! Table combinations are the inputs to the **computation** cost
//! micro-benchmark: each combination is a set of tables co-located on one
//! GPU whose fused-kernel cost gets measured. Good coverage over the number
//! of tables per combination is what makes the pre-trained computation cost
//! model "once-for-all" (§3.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::pool::TablePool;
use crate::table::TableConfig;

/// One table combination: a multiset of tables co-located on one device.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TableCombination {
    /// The tables in the combination.
    pub tables: Vec<TableConfig>,
}

impl TableCombination {
    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the combination is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Lowers the combination to simulator profiles.
    pub fn profiles(&self, batch_size: u32) -> Vec<nshard_sim::TableProfile> {
        self.tables.iter().map(|t| t.profile(batch_size)).collect()
    }
}

/// Generates random table combinations from an (augmented) pool.
///
/// Implements Algorithm 4: for each combination, draw the table count `T`
/// uniformly from `[t_min, t_max]`, then draw `T` tables from the pool.
///
/// # Example
///
/// ```
/// use nshard_data::{augment_pool, CombinationGenerator, TablePool, PAPER_DIMS};
///
/// let pool = augment_pool(&TablePool::synthetic_dlrm(50, 1), &PAPER_DIMS);
/// let generator = CombinationGenerator::new(pool, 1, 15);
/// let combos = generator.generate(100, 42);
/// assert_eq!(combos.len(), 100);
/// assert!(combos.iter().all(|c| (1..=15).contains(&c.len())));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CombinationGenerator {
    pool: TablePool,
    t_min: usize,
    t_max: usize,
}

impl CombinationGenerator {
    /// Creates a generator drawing between `t_min` and `t_max` tables
    /// (inclusive) per combination.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty, `t_min == 0`, or `t_min > t_max`.
    pub fn new(pool: TablePool, t_min: usize, t_max: usize) -> Self {
        assert!(
            !pool.is_empty(),
            "combination generator needs a non-empty pool"
        );
        assert!(t_min > 0, "t_min must be at least 1");
        assert!(t_min <= t_max, "t_min must not exceed t_max");
        Self { pool, t_min, t_max }
    }

    /// The augmented pool this generator draws from.
    pub fn pool(&self) -> &TablePool {
        &self.pool
    }

    /// Generates `count` combinations, seeded.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<TableCombination> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.generate_one(&mut rng)).collect()
    }

    /// Generates a single combination using the supplied RNG.
    pub fn generate_one(&self, rng: &mut StdRng) -> TableCombination {
        let t = rng.random_range(self.t_min..=self.t_max);
        TableCombination {
            tables: self.pool.sample_tables(t, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment_pool;
    use crate::PAPER_DIMS;

    fn generator() -> CombinationGenerator {
        let pool = augment_pool(&TablePool::synthetic_dlrm(40, 3), &PAPER_DIMS);
        CombinationGenerator::new(pool, 1, 15)
    }

    #[test]
    fn respects_count_range() {
        let combos = generator().generate(200, 1);
        assert_eq!(combos.len(), 200);
        for c in &combos {
            assert!((1..=15).contains(&c.len()));
        }
        // Coverage: both small and large combinations should appear.
        assert!(combos.iter().any(|c| c.len() <= 3));
        assert!(combos.iter().any(|c| c.len() >= 12));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generator();
        assert_eq!(g.generate(10, 5), g.generate(10, 5));
        assert_ne!(g.generate(10, 5), g.generate(10, 6));
    }

    #[test]
    fn profiles_match_tables() {
        let combos = generator().generate(5, 2);
        for c in &combos {
            let profiles = c.profiles(65_536);
            assert_eq!(profiles.len(), c.len());
            for (p, t) in profiles.iter().zip(&c.tables) {
                assert_eq!(p.dim(), t.dim());
            }
        }
    }

    #[test]
    fn covers_varied_dimensions() {
        let combos = generator().generate(300, 9);
        let mut seen: Vec<u32> = combos
            .iter()
            .flat_map(|c| c.tables.iter().map(|t| t.dim()))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, PAPER_DIMS.to_vec());
    }

    #[test]
    #[should_panic(expected = "non-empty pool")]
    fn empty_pool_panics() {
        let _ = CombinationGenerator::new(TablePool::default(), 1, 5);
    }

    #[test]
    #[should_panic(expected = "t_min must not exceed")]
    fn inverted_range_panics() {
        let pool = TablePool::synthetic_dlrm(5, 1);
        let _ = CombinationGenerator::new(pool, 10, 5);
    }
}
