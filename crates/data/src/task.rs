//! Sharding-task generation (the evaluation grid of Table 5).
//!
//! A *sharding task* is the unit of evaluation in the paper: a set of tables
//! with sampled dimensions, a device count and a per-device memory budget.
//! For every `(num_gpus, max_dim)` pair the paper samples 100 random tasks
//! and reports the mean real embedding cost of each algorithm's plans.

use std::ops::RangeInclusive;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use nshard_sim::{DevicePool, TableProfile};

use crate::pool::TablePool;
use crate::table::TableConfig;

/// One embedding-table sharding task.
///
/// # Example
///
/// ```
/// use nshard_data::{ShardingTask, TablePool};
///
/// let pool = TablePool::synthetic_dlrm(856, 2023);
/// let task = ShardingTask::sample(&pool, 4, 10..=60, 128, 0);
/// assert_eq!(task.num_devices(), 4);
/// assert!(task.tables().iter().all(|t| t.dim() <= 128));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingTask {
    tables: Vec<TableConfig>,
    num_devices: usize,
    mem_budget_bytes: u64,
    batch_size: u32,
    /// Optional heterogeneous fleet description: per-device memory budgets,
    /// compute classes and the two-tier network. `None` — and any uniform
    /// pool — means the classic homogeneous task, where every device has
    /// `mem_budget_bytes` and baseline compute.
    #[serde(default)]
    devices: Option<DevicePool>,
}

impl ShardingTask {
    /// Builds a task from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0` or `tables` is empty.
    pub fn new(
        tables: Vec<TableConfig>,
        num_devices: usize,
        mem_budget_bytes: u64,
        batch_size: u32,
    ) -> Self {
        assert!(num_devices > 0, "a task needs at least one device");
        assert!(!tables.is_empty(), "a task needs at least one table");
        Self {
            tables,
            num_devices,
            mem_budget_bytes,
            batch_size,
            devices: None,
        }
    }

    /// Samples a task per the paper's protocol: draw the table count `T`
    /// uniformly from `t_range`, draw `T` tables from the pool, and assign
    /// each a dimension uniformly from `{4, 8, ..., max_dim}` (powers of
    /// two). Uses the paper's defaults of a 4 GB budget and batch 65 536.
    ///
    /// # Panics
    ///
    /// Panics if `max_dim < 4` or `max_dim` is not a power of two.
    pub fn sample(
        pool: &TablePool,
        num_devices: usize,
        t_range: RangeInclusive<usize>,
        max_dim: u32,
        seed: u64,
    ) -> Self {
        assert!(
            max_dim >= 4 && max_dim.is_power_of_two(),
            "max_dim must be a power of two >= 4"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rng.random_range(t_range);
        let dims: Vec<u32> = (2..=max_dim.ilog2()).map(|j| 1 << j).collect();
        let tables = pool
            .sample_tables(t, &mut rng)
            .into_iter()
            .map(|table| table.with_dim(dims[rng.random_range(0..dims.len())]))
            .collect();
        Self::new(
            tables,
            num_devices,
            nshard_sim::DEFAULT_MEM_BYTES,
            nshard_sim::DEFAULT_BATCH_SIZE,
        )
    }

    /// The task's tables.
    pub fn tables(&self) -> &[TableConfig] {
        &self.tables
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of GPU devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Per-device embedding memory budget in bytes.
    pub fn mem_budget_bytes(&self) -> u64 {
        self.mem_budget_bytes
    }

    /// Training batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Returns a copy with a different memory budget (builder-style).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Returns a copy with a different batch size (builder-style).
    pub fn with_batch_size(mut self, batch: u32) -> Self {
        self.batch_size = batch;
        self
    }

    /// Attaches a heterogeneous fleet description (builder-style). The
    /// pool's per-device budgets override `mem_budget_bytes` device by
    /// device; `mem_budget_bytes` is also updated to the pool's **largest**
    /// budget so code that only understands a scalar budget stays
    /// conservative about what *some* device can hold.
    ///
    /// # Panics
    ///
    /// Panics when the pool's size differs from the task's device count.
    pub fn with_devices(mut self, pool: DevicePool) -> Self {
        assert_eq!(
            pool.len(),
            self.num_devices,
            "device pool size must match the task's device count"
        );
        self.mem_budget_bytes = pool.max_budget();
        self.devices = Some(pool);
        self
    }

    /// The heterogeneous fleet description, if any.
    pub fn device_pool(&self) -> Option<&DevicePool> {
        self.devices.as_ref()
    }

    /// The memory budget of device `g`: its pool profile when the task is
    /// heterogeneous, the scalar budget otherwise.
    pub fn budget_of(&self, g: usize) -> u64 {
        self.devices
            .as_ref()
            .map_or(self.mem_budget_bytes, |p| p.budget_of(g))
    }

    /// Per-device memory budgets, in device order.
    pub fn budgets(&self) -> Vec<u64> {
        (0..self.num_devices).map(|g| self.budget_of(g)).collect()
    }

    /// Lowers all tables to simulator profiles at the task's batch size.
    pub fn profiles(&self) -> Vec<TableProfile> {
        self.tables
            .iter()
            .map(|t| t.profile(self.batch_size))
            .collect()
    }

    /// Total fp32 bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(TableConfig::memory_bytes).sum()
    }

    /// Whether the task can possibly fit: total bytes vs. aggregate budget.
    /// (A `true` here does not guarantee a feasible plan exists, but a
    /// `false` guarantees it does not without column-wise sharding of
    /// oversized tables.)
    pub fn aggregate_memory_feasible(&self) -> bool {
        let aggregate = self.devices.as_ref().map_or_else(
            || self.mem_budget_bytes * self.num_devices as u64,
            DevicePool::total_budget,
        );
        self.total_bytes() <= aggregate
    }
}

/// The paper's evaluation grid (Table 5): `(num_gpus, table-count range,
/// max dimension)` triples, all with a 4 GB per-GPU budget.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskGrid {
    cells: Vec<GridCell>,
}

/// One cell of the evaluation grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Number of GPUs for tasks in this cell.
    pub num_devices: usize,
    /// Minimum number of tables per task.
    pub t_min: usize,
    /// Maximum number of tables per task.
    pub t_max: usize,
    /// Maximum table dimension (`2^j`).
    pub max_dim: u32,
}

impl TaskGrid {
    /// The full 12-cell grid of Table 5: 4 GPUs × max dims {4..128} with
    /// 10–60 tables, and 8 GPUs × max dims {4..128} with 20–120 tables.
    pub fn paper() -> Self {
        let mut cells = Vec::new();
        for (d, t_min, t_max) in [(4usize, 10usize, 60usize), (8, 20, 120)] {
            for j in 2..=7u32 {
                cells.push(GridCell {
                    num_devices: d,
                    t_min,
                    t_max,
                    max_dim: 1 << j,
                });
            }
        }
        Self { cells }
    }

    /// A reduced grid for quick experiments (both GPU counts, dims 4..128,
    /// fewer tables).
    pub fn smoke() -> Self {
        Self {
            cells: vec![
                GridCell {
                    num_devices: 2,
                    t_min: 4,
                    t_max: 10,
                    max_dim: 32,
                },
                GridCell {
                    num_devices: 4,
                    t_min: 10,
                    t_max: 20,
                    max_dim: 128,
                },
            ],
        }
    }

    /// The grid cells.
    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    /// Samples `count` tasks for each cell; `tasks[i]` corresponds to
    /// `cells()[i]`. Seeds are derived per cell and per task, so the same
    /// grid + seed reproduces the same task set.
    pub fn sample_tasks(
        &self,
        pool: &TablePool,
        count: usize,
        seed: u64,
    ) -> Vec<Vec<ShardingTask>> {
        self.cells
            .iter()
            .enumerate()
            .map(|(c, cell)| {
                (0..count)
                    .map(|i| {
                        ShardingTask::sample(
                            pool,
                            cell.num_devices,
                            cell.t_min..=cell.t_max,
                            cell.max_dim,
                            seed ^ ((c as u64) << 32) ^ i as u64,
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pool() -> TablePool {
        TablePool::synthetic_dlrm(120, 99)
    }

    #[test]
    fn sample_respects_ranges() {
        let task = ShardingTask::sample(&pool(), 4, 10..=60, 128, 5);
        assert!((10..=60).contains(&task.num_tables()));
        for t in task.tables() {
            assert!(t.dim() >= 4 && t.dim() <= 128);
            assert!(t.dim().is_power_of_two());
        }
    }

    #[test]
    fn sample_is_deterministic() {
        let a = ShardingTask::sample(&pool(), 4, 10..=60, 64, 5);
        let b = ShardingTask::sample(&pool(), 4, 10..=60, 64, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn max_dim_4_yields_only_dim_4() {
        let task = ShardingTask::sample(&pool(), 4, 10..=20, 4, 1);
        assert!(task.tables().iter().all(|t| t.dim() == 4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_max_dim_panics() {
        let _ = ShardingTask::sample(&pool(), 4, 1..=2, 100, 0);
    }

    #[test]
    fn paper_grid_matches_table_5() {
        let grid = TaskGrid::paper();
        assert_eq!(grid.cells().len(), 12);
        let four: Vec<_> = grid.cells().iter().filter(|c| c.num_devices == 4).collect();
        let eight: Vec<_> = grid.cells().iter().filter(|c| c.num_devices == 8).collect();
        assert_eq!(four.len(), 6);
        assert_eq!(eight.len(), 6);
        assert!(four.iter().all(|c| c.t_min == 10 && c.t_max == 60));
        assert!(eight.iter().all(|c| c.t_min == 20 && c.t_max == 120));
        let dims: Vec<u32> = four.iter().map(|c| c.max_dim).collect();
        assert_eq!(dims, vec![4, 8, 16, 32, 64, 128]);
    }

    #[test]
    fn grid_task_sampling_shape() {
        let grid = TaskGrid::smoke();
        let tasks = grid.sample_tasks(&pool(), 3, 7);
        assert_eq!(tasks.len(), grid.cells().len());
        for (cell, cell_tasks) in grid.cells().iter().zip(&tasks) {
            assert_eq!(cell_tasks.len(), 3);
            for t in cell_tasks {
                assert_eq!(t.num_devices(), cell.num_devices);
                assert!((cell.t_min..=cell.t_max).contains(&t.num_tables()));
            }
        }
    }

    #[test]
    fn profiles_and_memory_are_consistent() {
        let task = ShardingTask::sample(&pool(), 4, 10..=20, 64, 2);
        assert_eq!(task.profiles().len(), task.num_tables());
        let by_hand: u64 = task.tables().iter().map(|t| t.memory_bytes()).sum();
        assert_eq!(task.total_bytes(), by_hand);
    }

    #[test]
    fn builder_methods() {
        let task = ShardingTask::sample(&pool(), 2, 4..=6, 8, 0)
            .with_mem_budget(1234)
            .with_batch_size(256);
        assert_eq!(task.mem_budget_bytes(), 1234);
        assert_eq!(task.batch_size(), 256);
    }

    #[test]
    fn device_pool_overrides_scalar_budgets() {
        let task = ShardingTask::sample(&pool(), 4, 10..=20, 64, 3).with_devices(
            nshard_sim::DevicePool::two_tier(2, 4 << 30, 2, 1 << 30, 1.5, 0.5),
        );
        assert_eq!(task.budget_of(0), 4 << 30);
        assert_eq!(task.budget_of(3), 1 << 30);
        assert_eq!(task.budgets(), vec![4 << 30, 4 << 30, 1 << 30, 1 << 30]);
        // The scalar budget snaps to the largest device.
        assert_eq!(task.mem_budget_bytes(), 4 << 30);
        assert!(task.device_pool().is_some());
    }

    #[test]
    fn uniform_tasks_have_scalar_budgets_everywhere() {
        let task = ShardingTask::sample(&pool(), 4, 10..=20, 64, 3).with_mem_budget(1 << 30);
        assert_eq!(task.budget_of(0), 1 << 30);
        assert_eq!(task.budget_of(3), 1 << 30);
        assert!(task.device_pool().is_none());
    }

    #[test]
    fn aggregate_feasibility_uses_pool_budgets() {
        let tables = vec![TableConfig::new(
            crate::table::TableId(0),
            64,
            1 << 22, // 1 GB
            8.0,
            1.0,
        )];
        // Scalar: 2 devices x 256 MB < 1 GB -> infeasible.
        let scalar = ShardingTask::new(tables.clone(), 2, 256 << 20, 65_536);
        assert!(!scalar.aggregate_memory_feasible());
        // Pool: one roomy device makes the aggregate feasible.
        let pooled = scalar.with_devices(nshard_sim::DevicePool::two_tier(
            1,
            2 << 30,
            1,
            256 << 20,
            1.0,
            1.0,
        ));
        assert!(pooled.aggregate_memory_feasible());
    }

    #[test]
    #[should_panic(expected = "pool size must match")]
    fn mismatched_pool_size_panics() {
        let _ = ShardingTask::sample(&pool(), 4, 10..=20, 64, 3)
            .with_devices(nshard_sim::DevicePool::uniform(2, 1 << 30));
    }

    proptest! {
        #[test]
        fn sampled_tasks_always_valid(seed: u64, j in 2u32..8) {
            let task = ShardingTask::sample(&pool(), 4, 10..=60, 1 << j, seed);
            prop_assert!(task.num_tables() >= 10);
            prop_assert!(task.tables().iter().all(|t| t.dim() <= 1 << j));
        }
    }
}
