//! # nshard-data — synthetic DLRM dataset and sharding-task generation
//!
//! The paper evaluates on Meta's public benchmark sharding dataset
//! (`fbgemm_t856_bs65536.pt`): 856 synthetic embedding tables whose index
//! distributions mirror production DLRM workloads (avg hash size ≈ 4.1 M
//! rows, avg pooling factor ≈ 15 — Table 6). That artifact is a 4 GB
//! Git-LFS download of raw lookup indices; this crate replaces it with a
//! seeded generator that reproduces the dataset's published summary
//! statistics and heavy-tailed (Zipfian) access patterns.
//!
//! On top of the table pool the crate implements the paper's synthetic-input
//! generation pipeline (§3.1 and Appendix B):
//!
//! * [`augment`] — table augmentation over a dimension set (Algorithm 3),
//! * [`combination`] — random table combinations for computation-cost
//!   benchmarking (Algorithm 4),
//! * [`placement`] — random table placements with greedy-with-randomness
//!   balance control and random start timestamps (Algorithm 5),
//! * [`task`] — the evaluation sharding tasks of Table 5 (number of GPUs ×
//!   max table dimension grid).
//!
//! ## Example
//!
//! ```
//! use nshard_data::{ShardingTask, TablePool};
//!
//! let pool = TablePool::synthetic_dlrm(856, 2023);
//! assert_eq!(pool.len(), 856);
//!
//! // One benchmark task: 10-60 tables onto 4 GPUs, dims up to 128.
//! let task = ShardingTask::sample(&pool, 4, 10..=60, 128, 7);
//! assert!(task.num_tables() >= 10 && task.num_tables() <= 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod combination;
pub mod indices;
pub mod placement;
pub mod pool;
pub mod table;
pub mod task;

pub use augment::augment_pool;
pub use combination::{CombinationGenerator, TableCombination};
pub use indices::{expected_distinct_fraction, DistributionStats, IndexGenerator};
pub use placement::{Placement, PlacementGenerator};
pub use pool::{PoolStats, TablePool};
pub use table::{TableConfig, TableId, MIN_ROW_SHARD};
pub use task::{ShardingTask, TaskGrid};

// Heterogeneous fleet descriptions live in the simulator crate (they are
// part of the ground-truth cluster model); re-exported here because tasks
// carry them.
pub use nshard_sim::{DevicePool, DeviceProfile};

/// The dimension set used for table augmentation and task sampling
/// throughout the paper: `{4, 8, 16, 32, 64, 128}`.
pub const PAPER_DIMS: [u32; 6] = [4, 8, 16, 32, 64, 128];
