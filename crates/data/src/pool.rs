//! The synthetic table pool — stand-in for Meta's benchmark dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gamma, LogNormal, Normal};
use serde::{Deserialize, Serialize};

use crate::table::{TableConfig, TableId};

/// A pool of embedding tables to draw sharding tasks from.
///
/// The paper's benchmark pool (`dlrm_datasets`) has 856 tables with
/// production-like heavy-tailed hash sizes and an average pooling factor of
/// ≈ 15 (Table 6). [`TablePool::synthetic_dlrm`] reproduces that shape with
/// seeded log-normal / gamma samplers, with row counts rescaled against the
/// 4 GB-per-GPU benchmark budget (see the method docs and DESIGN.md).
///
/// Tables in the pool have a *native* dimension of 64; benchmark tasks
/// re-sample dimensions from `{4, ..., max_dim}` per the paper's protocol,
/// and table augmentation (Algorithm 3) expands the pool across a dimension
/// set.
///
/// # Example
///
/// ```
/// use nshard_data::TablePool;
///
/// let pool = TablePool::synthetic_dlrm(856, 2023);
/// let stats = pool.stats();
/// // Heavy-tailed rows, production-like pooling factors.
/// assert!(stats.max_hash_size > 20 * stats.avg_hash_size as u64);
/// assert!(stats.avg_pooling_factor > 10.0 && stats.avg_pooling_factor < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TablePool {
    tables: Vec<TableConfig>,
}

/// Summary statistics of a pool, for the dataset-comparison table (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Number of tables.
    pub num_tables: usize,
    /// Mean hash size (rows).
    pub avg_hash_size: f64,
    /// Largest hash size.
    pub max_hash_size: u64,
    /// Mean pooling factor.
    pub avg_pooling_factor: f64,
    /// Largest pooling factor.
    pub max_pooling_factor: f64,
    /// Total fp32 bytes at native dimensions.
    pub total_bytes: u64,
}

impl TablePool {
    /// Builds a pool from explicit tables.
    pub fn from_tables(tables: Vec<TableConfig>) -> Self {
        Self { tables }
    }

    /// Generates a DLRM-like pool of `n` tables with heavy-tailed
    /// log-normal hash sizes and gamma pooling factors.
    ///
    /// The row counts are scaled so that the Table 5 benchmark grid
    /// stresses the 4 GB-per-GPU budget the way the paper's does: average
    /// tasks use well under half the aggregate memory, the tail produces
    /// tables that *must* be column-wise split at large dimensions, and
    /// splitters can always succeed. (The published dataset's raw average
    /// of 4.1 M rows per table does not reconcile with a 4 GB × 4 GPU
    /// fp32 budget at dimension 128; see DESIGN.md for the substitution
    /// note.)
    pub fn synthetic_dlrm(n: usize, seed: u64) -> Self {
        // Median 100 K rows with a heavy sigma = 2.2 tail (mean ≈ 1.1 M),
        // capped at 16 M rows: the largest dim-128 fp32 table is 8 GB —
        // twice the per-GPU budget, so it *must* be column-wise split —
        // while a typical task stays well inside the aggregate capacity.
        let sigma = 2.2;
        let mu = (1.0e5f64).ln();
        Self::generate(n, seed, mu, sigma, 16_000_000, 1.2, 12.5, 1.05, 0.12)
    }

    /// Generates a "production-scale" pool: an ultra-large DLRM with
    /// multi-terabyte embedding memory (Table 4's model has nearly a
    /// thousand tables sharded onto 128 GPUs).
    pub fn synthetic_production(n: usize, seed: u64) -> Self {
        // Median 2 M rows, sigma 1.8 (mean ≈ 10 M), capped at 32 M: a
        // thousand tables is multi-terabyte (Table 4), and the biggest
        // dim-128 table is 16 GB — half a datacenter-GPU budget, forcing
        // column-wise sharding in production while leaving the headroom
        // the paper's cluster evidently had (its baselines run on top of
        // NeuroShard's column plan without further failures).
        let sigma = 1.8;
        let mu = (2.0e6f64).ln();
        Self::generate(n, seed, mu, sigma, 32_000_000, 1.4, 14.0, 1.10, 0.15)
    }

    #[allow(clippy::too_many_arguments)]
    fn generate(
        n: usize,
        seed: u64,
        hash_mu: f64,
        hash_sigma: f64,
        hash_max: u64,
        pf_shape: f64,
        pf_scale: f64,
        alpha_mean: f64,
        alpha_sd: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hash_min = 2_000u64;
        let hash_dist = LogNormal::new(hash_mu, hash_sigma).expect("valid log-normal");
        let pf_dist = Gamma::new(pf_shape, pf_scale).expect("valid gamma");
        let alpha_dist = Normal::new(alpha_mean, alpha_sd).expect("valid normal");
        let tables = (0..n)
            .map(|i| {
                let hash_size = (hash_dist.sample(&mut rng) as u64).clamp(hash_min, hash_max);
                let pf = pf_dist.sample(&mut rng).clamp(1.0, 200.0);
                let alpha = alpha_dist.sample(&mut rng).clamp(0.6, 1.6);
                TableConfig::new(TableId(i as u32), 64, hash_size, pf, alpha)
            })
            .collect();
        Self { tables }
    }

    /// Number of tables in the pool.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The tables.
    pub fn tables(&self) -> &[TableConfig] {
        &self.tables
    }

    /// Returns the table at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&TableConfig> {
        self.tables.get(index)
    }

    /// Iterates over the tables.
    pub fn iter(&self) -> std::slice::Iter<'_, TableConfig> {
        self.tables.iter()
    }

    /// Draws `count` distinct random tables from the pool (without
    /// replacement if possible, with replacement when `count > len`).
    pub fn sample_tables(&self, count: usize, rng: &mut StdRng) -> Vec<TableConfig> {
        assert!(!self.tables.is_empty(), "cannot sample from an empty pool");
        if count <= self.tables.len() {
            // Partial Fisher-Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.tables.len()).collect();
            for i in 0..count {
                let j = rng.random_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..count].iter().map(|&i| self.tables[i]).collect()
        } else {
            (0..count)
                .map(|_| self.tables[rng.random_range(0..self.tables.len())])
                .collect()
        }
    }

    /// Summary statistics (Table 6 row).
    pub fn stats(&self) -> PoolStats {
        let n = self.tables.len().max(1) as f64;
        PoolStats {
            num_tables: self.tables.len(),
            avg_hash_size: self
                .tables
                .iter()
                .map(|t| t.hash_size() as f64)
                .sum::<f64>()
                / n,
            max_hash_size: self
                .tables
                .iter()
                .map(TableConfig::hash_size)
                .max()
                .unwrap_or(0),
            avg_pooling_factor: self
                .tables
                .iter()
                .map(TableConfig::pooling_factor)
                .sum::<f64>()
                / n,
            max_pooling_factor: self
                .tables
                .iter()
                .map(TableConfig::pooling_factor)
                .fold(0.0, f64::max),
            total_bytes: self.tables.iter().map(TableConfig::memory_bytes).sum(),
        }
    }
}

impl FromIterator<TableConfig> for TablePool {
    fn from_iter<I: IntoIterator<Item = TableConfig>>(iter: I) -> Self {
        Self {
            tables: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a TablePool {
    type Item = &'a TableConfig;
    type IntoIter = std::slice::Iter<'a, TableConfig>;

    fn into_iter(self) -> Self::IntoIter {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dlrm_pool_matches_published_stats() {
        let pool = TablePool::synthetic_dlrm(856, 42);
        let stats = pool.stats();
        assert_eq!(stats.num_tables, 856);
        // Scaled dataset: mean row count in the hundreds of thousands with
        // a heavy tail (see doc comment for why the published 4.1 M mean is
        // rescaled against the 4 GB budget).
        assert!(
            stats.avg_hash_size > 3.0e5 && stats.avg_hash_size < 3.0e6,
            "avg hash size {}",
            stats.avg_hash_size
        );
        assert!(stats.max_hash_size <= 16_000_000);
        // Table 6: avg pooling factor 15.
        assert!(
            stats.avg_pooling_factor > 10.0 && stats.avg_pooling_factor < 20.0,
            "avg pooling {}",
            stats.avg_pooling_factor
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            TablePool::synthetic_dlrm(50, 7),
            TablePool::synthetic_dlrm(50, 7)
        );
        assert_ne!(
            TablePool::synthetic_dlrm(50, 7),
            TablePool::synthetic_dlrm(50, 8)
        );
    }

    #[test]
    fn production_pool_is_larger() {
        let dlrm = TablePool::synthetic_dlrm(300, 1).stats();
        let prod = TablePool::synthetic_production(300, 1).stats();
        assert!(prod.avg_hash_size > dlrm.avg_hash_size);
    }

    #[test]
    fn production_pool_is_multi_terabyte_at_scale() {
        // Table 4's model: ~1000 tables, multi-TB memory once dims are
        // assigned. At a native dim of 64 the raw pool should already be
        // on the order of terabytes.
        let prod = TablePool::synthetic_production(1000, 3).stats();
        assert!(
            prod.total_bytes > 1_000_000_000_000,
            "total {} bytes",
            prod.total_bytes
        );
        // ...but bounded: the 128 x 32 GB cluster must be able to hold it.
        assert!(prod.total_bytes < 4_000_000_000_000u64);
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let pool = TablePool::synthetic_dlrm(100, 9);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = pool.sample_tables(40, &mut rng);
        let mut ids: Vec<u32> = sample.iter().map(|t| t.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40);
    }

    #[test]
    fn sample_with_replacement_when_oversized() {
        let pool = TablePool::synthetic_dlrm(5, 9);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pool.sample_tables(20, &mut rng).len(), 20);
    }

    #[test]
    fn collect_and_iterate() {
        let pool: TablePool = TablePool::synthetic_dlrm(10, 2).iter().copied().collect();
        assert_eq!(pool.len(), 10);
        assert_eq!((&pool).into_iter().count(), 10);
        assert!(pool.get(3).is_some());
        assert!(pool.get(99).is_none());
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn sampling_empty_pool_panics() {
        let pool = TablePool::default();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = pool.sample_tables(1, &mut rng);
    }

    proptest! {
        #[test]
        fn all_tables_have_sane_fields(seed: u64) {
            let pool = TablePool::synthetic_dlrm(30, seed);
            for t in &pool {
                prop_assert!(t.hash_size() >= 2_000);
                prop_assert!(t.hash_size() <= 16_000_000);
                prop_assert!(t.pooling_factor() >= 1.0);
                prop_assert!(t.zipf_alpha() >= 0.6 && t.zipf_alpha() <= 1.6);
                prop_assert_eq!(t.dim(), 64);
            }
        }
    }
}
