//! Random table placement generation (Algorithm 5 of the paper).
//!
//! Table placements are the inputs to the **communication** cost
//! micro-benchmark. Coverage matters along two axes (§3.1):
//!
//! 1. **Degree of balance** — a greedy-with-randomness assignment: with
//!    probability `p` (drawn once per placement) each table goes to the
//!    device with the lowest device dimension so far, otherwise to a random
//!    feasible device. `p ≈ 1` yields balanced placements, `p ≈ 0` heavily
//!    imbalanced ones.
//! 2. **Start-time skew** — each GPU joins the collective at a random
//!    timestamp in `[0, max_start_ms]`, simulating the accumulated delays
//!    of Figure 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::pool::TablePool;
use crate::table::TableConfig;

/// One benchmarked placement: tables assigned to devices plus per-device
/// collective start timestamps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Placement {
    /// `assignment[g]` holds the tables placed on GPU `g`.
    pub assignment: Vec<Vec<TableConfig>>,
    /// Per-GPU all-to-all start timestamps in ms.
    pub start_ts_ms: Vec<f64>,
    /// The greedy probability `p` this placement was generated with
    /// (recorded for analysis; higher `p` ⇒ more balanced).
    pub greedy_prob: f64,
}

impl Placement {
    /// Device dimension (sum of table dims) per GPU.
    pub fn device_dims(&self) -> Vec<f64> {
        self.assignment
            .iter()
            .map(|tables| tables.iter().map(|t| f64::from(t.dim())).sum())
            .collect()
    }

    /// Max device dimension across GPUs (the quantity of Observation 3).
    pub fn max_device_dim(&self) -> f64 {
        self.device_dims().into_iter().fold(0.0, f64::max)
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.assignment.len()
    }

    /// Total number of placed tables.
    pub fn num_tables(&self) -> usize {
        self.assignment.iter().map(Vec::len).sum()
    }
}

/// Generates random placements per Algorithm 5.
///
/// # Example
///
/// ```
/// use nshard_data::{PlacementGenerator, TablePool};
///
/// let pool = TablePool::synthetic_dlrm(100, 1);
/// let generator = PlacementGenerator::new(pool, 4, 10, 60)
///     .with_mem_budget(4 * 1024 * 1024 * 1024);
/// let placements = generator.generate(20, 42);
/// assert_eq!(placements.len(), 20);
/// assert!(placements.iter().all(|p| p.num_devices() == 4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementGenerator {
    pool: TablePool,
    num_devices: usize,
    t_min: usize,
    t_max: usize,
    mem_budget_bytes: u64,
    max_start_ms: f64,
}

impl PlacementGenerator {
    /// Creates a generator placing `t_min..=t_max` tables onto
    /// `num_devices` GPUs, with the paper's defaults of a 4 GB memory
    /// budget and start timestamps in `[0, 20]` ms.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty, `num_devices == 0`, `t_min == 0`, or
    /// `t_min > t_max`.
    pub fn new(pool: TablePool, num_devices: usize, t_min: usize, t_max: usize) -> Self {
        assert!(
            !pool.is_empty(),
            "placement generator needs a non-empty pool"
        );
        assert!(num_devices > 0, "need at least one device");
        assert!(t_min > 0 && t_min <= t_max, "invalid table-count range");
        Self {
            pool,
            num_devices,
            t_min,
            t_max,
            mem_budget_bytes: nshard_sim::DEFAULT_MEM_BYTES,
            max_start_ms: 20.0,
        }
    }

    /// Replaces the per-device memory budget (builder-style).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Replaces the maximum start-timestamp skew (builder-style).
    pub fn with_max_start_ms(mut self, ms: f64) -> Self {
        self.max_start_ms = ms.max(0.0);
        self
    }

    /// Generates `count` placements, seeded.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<Placement> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.generate_one(&mut rng)).collect()
    }

    /// Generates one placement with the supplied RNG (Algorithm 5 body).
    pub fn generate_one(&self, rng: &mut StdRng) -> Placement {
        let t = rng.random_range(self.t_min..=self.t_max);
        let mut tables = self.pool.sample_tables(t, rng);
        // Sort descending by dimension (Algorithm 5, line 6).
        tables.sort_by_key(|t| std::cmp::Reverse(t.dim()));
        let p: f64 = rng.random();

        let mut assignment: Vec<Vec<TableConfig>> = vec![Vec::new(); self.num_devices];
        let mut dims = vec![0u64; self.num_devices];
        let mut mem = vec![0u64; self.num_devices];
        for table in tables {
            let bytes = table.memory_bytes();
            let candidates: Vec<usize> = (0..self.num_devices)
                .filter(|&g| mem[g] + bytes <= self.mem_budget_bytes)
                .collect();
            if candidates.is_empty() {
                // No feasible device: drop the table (the micro-benchmark
                // only needs *a* valid placement, not this exact table).
                continue;
            }
            let g = if rng.random::<f64>() < p {
                *candidates
                    .iter()
                    .min_by_key(|&&g| dims[g])
                    .expect("candidates non-empty")
            } else {
                candidates[rng.random_range(0..candidates.len())]
            };
            dims[g] += u64::from(table.dim());
            mem[g] += bytes;
            assignment[g].push(table);
        }

        let start_ts_ms = (0..self.num_devices)
            .map(|_| rng.random::<f64>() * self.max_start_ms)
            .collect();
        Placement {
            assignment,
            start_ts_ms,
            greedy_prob: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(d: usize) -> PlacementGenerator {
        PlacementGenerator::new(TablePool::synthetic_dlrm(200, 5), d, 10, 60)
    }

    #[test]
    fn generates_requested_count_and_shape() {
        let ps = generator(4).generate(25, 1);
        assert_eq!(ps.len(), 25);
        for p in &ps {
            assert_eq!(p.num_devices(), 4);
            assert_eq!(p.start_ts_ms.len(), 4);
            assert!(p.start_ts_ms.iter().all(|&s| (0.0..=20.0).contains(&s)));
            assert!((0.0..=1.0).contains(&p.greedy_prob));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generator(4);
        assert_eq!(g.generate(5, 3), g.generate(5, 3));
        assert_ne!(g.generate(5, 3), g.generate(5, 4));
    }

    #[test]
    fn memory_budget_is_respected() {
        let budget = 64 * 1024 * 1024; // tiny: 64 MB
        let g = generator(4).with_mem_budget(budget);
        for p in g.generate(10, 7) {
            for device in &p.assignment {
                let bytes: u64 = device.iter().map(TableConfig::memory_bytes).sum();
                assert!(bytes <= budget);
            }
        }
    }

    #[test]
    fn high_greedy_prob_balances_better_on_average() {
        // Generate many placements; those with high p should have lower
        // dimension imbalance than those with low p.
        let g = generator(4);
        let ps = g.generate(300, 11);
        let imbalance = |p: &Placement| {
            let dims = p.device_dims();
            let max = dims.iter().cloned().fold(0.0, f64::max);
            let min = dims.iter().cloned().fold(f64::INFINITY, f64::min);
            max - min
        };
        let (hi, lo): (Vec<&Placement>, Vec<&Placement>) =
            ps.iter().partition(|p| p.greedy_prob > 0.8);
        let hi_ps: Vec<&&Placement> = hi.iter().filter(|p| p.greedy_prob > 0.8).collect();
        let lo_ps: Vec<&&Placement> = lo.iter().filter(|p| p.greedy_prob < 0.2).collect();
        assert!(!hi_ps.is_empty() && !lo_ps.is_empty());
        let mean = |v: &[&&Placement]| v.iter().map(|p| imbalance(p)).sum::<f64>() / v.len() as f64;
        assert!(mean(&hi_ps) < mean(&lo_ps));
    }

    #[test]
    fn max_start_can_be_customized() {
        let g = generator(2).with_max_start_ms(0.0);
        for p in g.generate(5, 1) {
            assert!(p.start_ts_ms.iter().all(|&s| s == 0.0));
        }
    }

    #[test]
    fn placement_accessors() {
        let g = generator(4);
        let p = &g.generate(1, 9)[0];
        assert_eq!(p.device_dims().len(), 4);
        assert!(p.max_device_dim() >= p.device_dims()[0]);
        assert!(p.num_tables() <= 60);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = PlacementGenerator::new(TablePool::synthetic_dlrm(5, 1), 0, 1, 2);
    }
}
