//! Embedding table configuration: the dataset-level table description.

use serde::{Deserialize, Serialize};

use nshard_sim::TableProfile;

use crate::indices::{expected_distinct_fraction, IndexGenerator};

/// Identifier of a table within a pool or a sharding task.
///
/// Column-wise shards of the same logical table share the `TableId` of the
/// original table, so plans remain traceable back to the dataset.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TableId(pub u32);

impl std::fmt::Display for TableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Full configuration of one embedding table in a sharding task.
///
/// Unlike the simulator's [`TableProfile`] (pure numbers), a `TableConfig`
/// carries the dataset identity and the generative description of its index
/// distribution, and can produce lookup-index streams for micro-benchmarks.
///
/// # Example
///
/// ```
/// use nshard_data::{TableConfig, TableId};
///
/// let table = TableConfig::new(TableId(3), 64, 1 << 22, 18.0, 1.1);
/// assert_eq!(table.dim(), 64);
/// let profile = table.profile(65_536);
/// assert_eq!(profile.dim(), 64);
/// assert!(profile.unique_frac() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableConfig {
    id: TableId,
    dim: u32,
    hash_size: u64,
    pooling_factor: f64,
    zipf_alpha: f64,
    /// Replication count of this shard: `1` for ordinary shards, `R` when
    /// the (hot) table is replicated onto `R` holders. Each replica stores
    /// the **full** rows but answers only `1/R` of the batch's lookups, so
    /// replicas carry full memory and a `1/R` communication share.
    #[serde(default = "default_replicas")]
    replicas: u32,
    /// First logical row this shard covers, for row-wise splits: a shard
    /// holds rows `[row_offset, row_offset + hash_size)` of the original
    /// table's id space. `0` for unsplit tables.
    #[serde(default)]
    row_offset: u64,
}

fn default_replicas() -> u32 {
    1
}

impl TableConfig {
    /// Creates a table configuration.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `hash_size == 0` or `pooling_factor <= 0`.
    pub fn new(
        id: TableId,
        dim: u32,
        hash_size: u64,
        pooling_factor: f64,
        zipf_alpha: f64,
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(hash_size > 0, "hash size must be positive");
        assert!(
            pooling_factor.is_finite() && pooling_factor > 0.0,
            "pooling factor must be positive"
        );
        Self {
            id,
            dim,
            hash_size,
            pooling_factor,
            zipf_alpha: zipf_alpha.max(0.0),
            replicas: 1,
            row_offset: 0,
        }
    }

    /// The table's identity within its pool.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Embedding dimension (columns).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of rows.
    pub fn hash_size(&self) -> u64 {
        self.hash_size
    }

    /// Mean pooling factor.
    pub fn pooling_factor(&self) -> f64 {
        self.pooling_factor
    }

    /// Zipf exponent of the index access distribution.
    pub fn zipf_alpha(&self) -> f64 {
        self.zipf_alpha
    }

    /// Replication count: `1` for ordinary shards, `R` for one of `R`
    /// replicas of a hot table.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Whether this shard is one replica of a replicated table.
    pub fn is_replicated(&self) -> bool {
        self.replicas > 1
    }

    /// Communication-effective dimension: each of `R` replicas carries only
    /// `1/R` of the table's all-to-all traffic. Exactly `dim` for ordinary
    /// shards (no floating-point perturbation on the `replicas == 1` path).
    pub fn comm_dim(&self) -> f64 {
        if self.replicas > 1 {
            f64::from(self.dim) / f64::from(self.replicas)
        } else {
            f64::from(self.dim)
        }
    }

    /// First logical row covered by this (possibly row-wise) shard.
    pub fn row_offset(&self) -> u64 {
        self.row_offset
    }

    /// The half-open logical row range `[start, end)` this shard covers in
    /// the original table's id space.
    pub fn row_range(&self) -> (u64, u64) {
        (self.row_offset, self.row_offset + self.hash_size)
    }

    /// Returns a copy with a different dimension (used by table augmentation
    /// and dimension sampling; Algorithm 3).
    pub fn with_dim(mut self, dim: u32) -> Self {
        assert!(dim > 0, "dimension must be positive");
        self.dim = dim;
        self
    }

    /// Returns a copy with a different hash size (workload-drift hook: a
    /// growing id space).
    pub fn with_hash_size(mut self, hash_size: u64) -> Self {
        assert!(hash_size > 0, "hash size must be positive");
        self.hash_size = hash_size;
        self
    }

    /// Returns a copy with a different pooling factor (workload-drift hook:
    /// indices-per-lookup shifting with traffic).
    pub fn with_pooling_factor(mut self, pooling_factor: f64) -> Self {
        assert!(
            pooling_factor.is_finite() && pooling_factor > 0.0,
            "pooling factor must be positive"
        );
        self.pooling_factor = pooling_factor;
        self
    }

    /// Returns a copy with a different Zipf exponent (workload-drift hook:
    /// hotspots sharpening or flattening the access distribution).
    pub fn with_zipf_alpha(mut self, zipf_alpha: f64) -> Self {
        self.zipf_alpha = zipf_alpha.max(0.0);
        self
    }

    /// Bytes of fp32 storage at the current dimension.
    pub fn memory_bytes(&self) -> u64 {
        self.hash_size * u64::from(self.dim) * 4
    }

    /// Lowers this table to the simulator profile for a given batch size.
    ///
    /// The batch-dependent unique-index fraction is derived analytically
    /// from the Zipf law, matching what one would measure from the raw
    /// benchmark indices.
    pub fn profile(&self, batch_size: u32) -> TableProfile {
        let lookups = f64::from(batch_size) * self.pooling_factor;
        let unique = expected_distinct_fraction(self.hash_size, self.zipf_alpha, lookups);
        let profile = TableProfile::new(
            self.dim,
            self.hash_size,
            self.pooling_factor,
            unique,
            self.zipf_alpha,
        );
        if self.replicas > 1 {
            profile.with_comm_share(1.0 / f64::from(self.replicas))
        } else {
            profile
        }
    }

    /// An index generator producing this table's lookup streams.
    pub fn index_generator(&self) -> IndexGenerator {
        IndexGenerator::new(self.hash_size, self.zipf_alpha)
    }

    /// Returns the two column-wise halves of this table (both keep the
    /// original [`TableId`]); `None` if the halved dimension would violate
    /// the kernel lane constraint.
    pub fn split_columns(&self) -> Option<(TableConfig, TableConfig)> {
        // Delegate legality to the simulator's profile rules.
        let half = self.dim / 2;
        if half == 0 || !half.is_multiple_of(nshard_sim::profile::DIM_LANE) {
            return None;
        }
        let a = self.with_dim(half);
        Some((a, a))
    }

    /// Returns the two row-wise halves of this table (the paper's stated
    /// future-work extension): each half keeps the full dimension but holds
    /// half the rows, and — because lookups hash across rows — receives
    /// roughly half the pooling workload.
    ///
    /// Returns `None` when the table is too small to split (fewer than
    /// [`MIN_ROW_SHARD`] rows per half, or a pooling factor that would drop
    /// below one index per lookup).
    pub fn split_rows(&self) -> Option<(TableConfig, TableConfig)> {
        let half_rows = self.hash_size / 2;
        if half_rows < MIN_ROW_SHARD || self.pooling_factor < 2.0 {
            return None;
        }
        let mut a = *self;
        a.hash_size = half_rows;
        a.pooling_factor = self.pooling_factor / 2.0;
        let mut b = a;
        b.hash_size = self.hash_size - half_rows;
        b.row_offset = self.row_offset + half_rows;
        Some((a, b))
    }

    /// Returns two replicas of this (hot) table: each keeps the **full**
    /// rows and dimension — so replication *costs* memory on every holder —
    /// but answers half the batch's lookups (half the pooling workload and
    /// half the all-to-all traffic). Placing the replicas on different
    /// devices splits a hot table's lookup traffic the way row-wise
    /// sharding cannot when the heat concentrates in few rows.
    ///
    /// Returns `None` when the per-replica pooling workload would drop
    /// below one index per lookup — replicating a cold table is pure
    /// memory waste.
    pub fn replicate(&self) -> Option<(TableConfig, TableConfig)> {
        if self.pooling_factor < 2.0 {
            return None;
        }
        let mut a = *self;
        a.pooling_factor = self.pooling_factor / 2.0;
        a.replicas = self.replicas * 2;
        Some((a, a))
    }
}

/// Minimum rows per row-wise shard: splitting below this is pointless (the
/// shard caches entirely) and would distort the cost model's feature range.
pub const MIN_ROW_SHARD: u64 = 1_000;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> TableConfig {
        TableConfig::new(TableId(7), 64, 1 << 22, 15.0, 1.1)
    }

    #[test]
    fn accessors_round_trip() {
        let t = table();
        assert_eq!(t.id(), TableId(7));
        assert_eq!(t.dim(), 64);
        assert_eq!(t.hash_size(), 1 << 22);
        assert_eq!(t.pooling_factor(), 15.0);
        assert_eq!(t.zipf_alpha(), 1.1);
    }

    #[test]
    fn with_dim_changes_only_dim() {
        let t = table().with_dim(8);
        assert_eq!(t.dim(), 8);
        assert_eq!(t.id(), TableId(7));
        assert_eq!(t.hash_size(), 1 << 22);
    }

    #[test]
    fn drift_builders_change_one_field_each() {
        let t = table()
            .with_hash_size(4096)
            .with_pooling_factor(30.0)
            .with_zipf_alpha(-0.5);
        assert_eq!(t.hash_size(), 4096);
        assert_eq!(t.pooling_factor(), 30.0);
        assert_eq!(t.zipf_alpha(), 0.0); // clamped non-negative
        assert_eq!(t.id(), TableId(7));
        assert_eq!(t.dim(), 64);
    }

    #[test]
    #[should_panic(expected = "pooling factor must be positive")]
    fn zero_pooling_factor_panics() {
        let _ = table().with_pooling_factor(0.0);
    }

    #[test]
    fn profile_unique_frac_reflects_skew() {
        let flat = TableConfig::new(TableId(0), 64, 1 << 24, 15.0, 0.0);
        let skew = TableConfig::new(TableId(0), 64, 1 << 24, 15.0, 1.5);
        assert!(skew.profile(65_536).unique_frac() < flat.profile(65_536).unique_frac());
    }

    #[test]
    fn split_keeps_id_and_memory() {
        let t = table();
        let (a, b) = t.split_columns().unwrap();
        assert_eq!(a.id(), t.id());
        assert_eq!(b.id(), t.id());
        assert_eq!(a.memory_bytes() + b.memory_bytes(), t.memory_bytes());
    }

    #[test]
    fn split_respects_lane_constraint() {
        assert!(table().with_dim(4).split_columns().is_none());
        assert!(table().with_dim(8).split_columns().is_some());
    }

    #[test]
    fn row_split_halves_rows_and_pooling() {
        let t = table();
        let (a, b) = t.split_rows().unwrap();
        assert_eq!(a.hash_size() + b.hash_size(), t.hash_size());
        assert_eq!(a.dim(), t.dim());
        assert!((a.pooling_factor() - t.pooling_factor() / 2.0).abs() < 1e-12);
        assert_eq!(a.memory_bytes() + b.memory_bytes(), t.memory_bytes());
    }

    #[test]
    fn row_split_rejects_tiny_tables() {
        let tiny = TableConfig::new(TableId(0), 4, 1500, 8.0, 1.0);
        assert!(tiny.split_rows().is_none()); // halves below MIN_ROW_SHARD
        let low_pf = TableConfig::new(TableId(0), 4, 1 << 20, 1.5, 1.0);
        assert!(low_pf.split_rows().is_none());
    }

    #[test]
    fn row_split_handles_unsplittable_dims() {
        // The motivating case: dim-4 (column-unsplittable) but huge rows.
        let tall = TableConfig::new(TableId(0), 4, 1 << 28, 8.0, 1.0);
        assert!(tall.split_columns().is_none());
        assert!(tall.split_rows().is_some());
    }

    #[test]
    fn row_split_partitions_the_row_space() {
        let t = table();
        let (a, b) = t.split_rows().unwrap();
        // The halves tile [0, hash_size) exactly: contiguous, no overlap.
        assert_eq!(a.row_range().0, 0);
        assert_eq!(a.row_range().1, b.row_range().0);
        assert_eq!(b.row_range().1, t.hash_size());
        // Splitting again keeps tiling the ORIGINAL id space.
        let (b0, b1) = b.split_rows().unwrap();
        assert_eq!(b0.row_range().0, b.row_range().0);
        assert_eq!(b0.row_range().1, b1.row_range().0);
        assert_eq!(b1.row_range().1, t.hash_size());
    }

    #[test]
    fn replicate_keeps_memory_and_halves_traffic() {
        let t = table();
        let (a, b) = t.replicate().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.replicas(), 2);
        assert!(a.is_replicated());
        // Every holder pays the table's full memory...
        assert_eq!(a.memory_bytes(), t.memory_bytes());
        assert_eq!(a.hash_size(), t.hash_size());
        // ...but serves half the lookups and moves half the traffic.
        assert!((a.pooling_factor() - t.pooling_factor() / 2.0).abs() < 1e-12);
        let p = a.profile(65_536);
        assert!((p.comm_share() - 0.5).abs() < 1e-12);
        assert!((p.comm_dim() - f64::from(t.dim()) / 2.0).abs() < 1e-12);
        // Replicating again compounds: 4 replicas, quarter share.
        let (aa, _) = a.replicate().unwrap();
        assert_eq!(aa.replicas(), 4);
        assert!((aa.profile(65_536).comm_share() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn replicate_rejects_cold_tables() {
        let cold = TableConfig::new(TableId(0), 64, 1 << 20, 1.5, 1.0);
        assert!(cold.replicate().is_none());
    }

    #[test]
    fn unreplicated_profile_has_exact_unit_comm_share() {
        let p = table().profile(65_536);
        assert_eq!(p.comm_share().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn legacy_tables_deserialize_without_new_fields() {
        // Configs serialized before replication / row offsets existed must
        // load as ordinary shards.
        let json = r#"{"id":3,"dim":64,"hash_size":1024,
                       "pooling_factor":8.0,"zipf_alpha":1.0}"#;
        let t: TableConfig = serde_json::from_str(json).unwrap();
        assert_eq!(t.replicas(), 1);
        assert_eq!(t.row_offset(), 0);
        assert!(!t.is_replicated());
    }

    #[test]
    fn display_of_table_id() {
        assert_eq!(TableId(12).to_string(), "table#12");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = TableConfig::new(TableId(0), 0, 10, 1.0, 1.0);
    }

    proptest! {
        #[test]
        fn profile_is_always_valid(
            dim_pow in 2u32..8,
            rows_pow in 8u32..28,
            pf in 0.5f64..128.0,
            alpha in 0.0f64..2.5,
        ) {
            let t = TableConfig::new(TableId(1), 1 << dim_pow, 1u64 << rows_pow, pf, alpha);
            let p = t.profile(65_536);
            prop_assert!(p.unique_frac() > 0.0 && p.unique_frac() <= 1.0);
            prop_assert_eq!(p.dim(), t.dim());
        }
    }
}
