//! Table augmentation (Algorithm 3 of the paper).
//!
//! For each table in the pool, generate one augmented table per dimension in
//! a dimension set. The augmented pool lets the pre-trained cost models
//! cover every dimension that feature selection or column-wise sharding can
//! produce, which is why NeuroShard never needs re-training when table
//! dimensions change (§3.2, "Deployment").

use crate::pool::TablePool;

/// Expands `pool` across `dims`: the result contains, for every table in
/// the pool and every dimension in `dims`, a copy of the table with that
/// dimension (Algorithm 3). Augmented copies keep the original [`crate::TableId`].
///
/// Dimensions of zero are skipped (they cannot form a valid table).
///
/// # Example
///
/// ```
/// use nshard_data::{augment_pool, TablePool, PAPER_DIMS};
///
/// let pool = TablePool::synthetic_dlrm(10, 1);
/// let augmented = augment_pool(&pool, &PAPER_DIMS);
/// assert_eq!(augmented.len(), 10 * PAPER_DIMS.len());
/// ```
pub fn augment_pool(pool: &TablePool, dims: &[u32]) -> TablePool {
    let mut tables = Vec::with_capacity(pool.len() * dims.len());
    for table in pool {
        for &dim in dims {
            if dim == 0 {
                continue;
            }
            tables.push(table.with_dim(dim));
        }
    }
    TablePool::from_tables(tables)
}

/// Convenience: checks whether every augmented dimension appears in the
/// output pool for every source table — used by tests and sanity checks.
pub fn covers_dims(pool: &TablePool, dims: &[u32]) -> bool {
    dims.iter()
        .all(|&d| d == 0 || pool.iter().any(|t| t.dim() == d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_DIMS;
    use proptest::prelude::*;

    #[test]
    fn augments_every_table_with_every_dim() {
        let pool = TablePool::synthetic_dlrm(5, 3);
        let aug = augment_pool(&pool, &PAPER_DIMS);
        assert_eq!(aug.len(), 5 * 6);
        assert!(covers_dims(&aug, &PAPER_DIMS));
        // Each source table contributes exactly PAPER_DIMS.len() copies.
        for src in &pool {
            let copies = aug.iter().filter(|t| t.id() == src.id()).count();
            assert_eq!(copies, PAPER_DIMS.len());
        }
    }

    #[test]
    fn augmented_copies_preserve_everything_but_dim() {
        let pool = TablePool::synthetic_dlrm(3, 5);
        let aug = augment_pool(&pool, &[8]);
        for (src, out) in pool.iter().zip(aug.iter()) {
            assert_eq!(out.dim(), 8);
            assert_eq!(out.hash_size(), src.hash_size());
            assert_eq!(out.pooling_factor(), src.pooling_factor());
            assert_eq!(out.zipf_alpha(), src.zipf_alpha());
        }
    }

    #[test]
    fn zero_dims_are_skipped() {
        let pool = TablePool::synthetic_dlrm(4, 1);
        let aug = augment_pool(&pool, &[0, 16]);
        assert_eq!(aug.len(), 4);
    }

    #[test]
    fn empty_inputs_yield_empty_pools() {
        assert!(augment_pool(&TablePool::default(), &PAPER_DIMS).is_empty());
        let pool = TablePool::synthetic_dlrm(4, 1);
        assert!(augment_pool(&pool, &[]).is_empty());
    }

    proptest! {
        #[test]
        fn output_size_is_product(n in 0usize..20, k in 0usize..8) {
            let pool = TablePool::synthetic_dlrm(n, 1);
            let dims: Vec<u32> = (0..k).map(|i| 4 << i).collect();
            let aug = augment_pool(&pool, &dims);
            prop_assert_eq!(aug.len(), n * k);
        }
    }
}
