//! Zipfian lookup-index generation and distribution statistics.
//!
//! The paper identifies the **indices distribution** as one of the four
//! cost-relevant table factors (§2.1): skewed access patterns cache well,
//! and the number of unique embeddings touched per batch drives memory
//! pressure. This module provides:
//!
//! * an empirical batch-index generator ([`IndexGenerator`]) producing
//!   Zipf-distributed lookup streams like the benchmark dataset's, and
//! * an analytic estimator ([`expected_distinct_fraction`]) of the expected
//!   fraction of unique indices in a batch, used to lower a table to a
//!   [`nshard_sim::TableProfile`] without materializing millions of indices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Summary statistics of a lookup-index stream, used both as cost-model
/// features and for dataset reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionStats {
    /// Number of lookups in the stream.
    pub num_lookups: usize,
    /// Fraction of lookups that hit a distinct index, in `(0, 1]`.
    pub unique_frac: f64,
    /// Share of lookups landing on the hottest 1% of touched indices.
    pub top1pct_share: f64,
    /// Maximum index value observed.
    pub max_index: u64,
}

impl DistributionStats {
    /// Computes statistics from a raw index stream.
    ///
    /// Returns `None` for an empty stream.
    pub fn from_indices(indices: &[u64]) -> Option<Self> {
        if indices.is_empty() {
            return None;
        }
        let mut sorted = indices.to_vec();
        sorted.sort_unstable();
        let mut counts: Vec<usize> = Vec::new();
        let mut run = 1usize;
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                counts.push(run);
                run = 1;
            }
        }
        counts.push(run);
        let distinct = counts.len();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = distinct.div_ceil(100);
        let top_hits: usize = counts.iter().take(top).sum();
        Some(Self {
            num_lookups: indices.len(),
            unique_frac: distinct as f64 / indices.len() as f64,
            top1pct_share: top_hits as f64 / indices.len() as f64,
            max_index: *sorted.last().expect("non-empty"),
        })
    }
}

/// Generates Zipf-distributed lookup indices for one embedding table.
///
/// A lookup of a batch touches `batch_size × pooling_factor` indices drawn
/// from `Zipf(alpha)` over `hash_size` rows, with ranks randomly permuted
/// into the index space via a multiplicative hash (real tables do not store
/// hot rows contiguously).
///
/// # Example
///
/// ```
/// use nshard_data::IndexGenerator;
///
/// let generator = IndexGenerator::new(1 << 20, 1.1);
/// let indices = generator.generate(4096, 5.0, 42);
/// assert!(indices.len() >= 4096 * 4);
/// assert!(indices.iter().all(|&i| i < 1 << 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexGenerator {
    hash_size: u64,
    alpha: f64,
}

impl IndexGenerator {
    /// Creates a generator over `hash_size` rows with Zipf exponent `alpha`
    /// (clamped to `[0, 8]`; `alpha = 0` is uniform).
    pub fn new(hash_size: u64, alpha: f64) -> Self {
        Self {
            hash_size: hash_size.max(1),
            alpha: alpha.clamp(0.0, 8.0),
        }
    }

    /// The table's hash size.
    pub fn hash_size(&self) -> u64 {
        self.hash_size
    }

    /// The Zipf exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Generates the index stream for one batch: `batch_size` lookups with
    /// a per-lookup count drawn around `pooling_factor`.
    pub fn generate(&self, batch_size: u32, pooling_factor: f64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = (f64::from(batch_size) * pooling_factor).round().max(1.0) as usize;
        (0..total).map(|_| self.sample_index(&mut rng)).collect()
    }

    /// Samples a single index.
    fn sample_index(&self, rng: &mut StdRng) -> u64 {
        let rank = if self.alpha < 1e-9 {
            rng.random_range(0..self.hash_size)
        } else {
            zipf_rank(rng, self.hash_size, self.alpha)
        };
        // Scatter ranks across the index space deterministically.
        scatter(rank, self.hash_size)
    }

    /// Empirical distribution statistics from a freshly generated stream.
    pub fn stats(&self, batch_size: u32, pooling_factor: f64, seed: u64) -> DistributionStats {
        DistributionStats::from_indices(&self.generate(batch_size, pooling_factor, seed))
            .expect("generate always returns at least one index")
    }
}

/// Samples a 0-based Zipf rank by inverse-CDF on the continuous
/// approximation (bounded Pareto), which is accurate for large `n` and
/// avoids per-sample harmonic sums.
fn zipf_rank(rng: &mut StdRng, n: u64, alpha: f64) -> u64 {
    let u: f64 = rng.random::<f64>().max(1e-15);
    let n_f = n as f64;
    let rank = if (alpha - 1.0).abs() < 1e-9 {
        // CDF(x) ∝ ln(x); invert: x = exp(u * ln(n))
        (u * n_f.ln()).exp()
    } else {
        // CDF(x) ∝ x^(1-a) - 1; invert.
        let one_minus = 1.0 - alpha;
        ((u * (n_f.powf(one_minus) - 1.0)) + 1.0).powf(1.0 / one_minus)
    };
    (rank.floor() as u64).min(n - 1)
}

/// Deterministic rank→index scatter (Fibonacci hashing within the table).
fn scatter(rank: u64, n: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n
}

/// Analytic estimate of the expected fraction of **distinct** indices among
/// `lookups` draws from `Zipf(alpha)` over `hash_size` rows.
///
/// Uses `E[distinct] = Σ_r (1 - (1 - p_r)^L)` evaluated with logarithmic
/// rank bucketing, so it is O(buckets) instead of O(hash_size).
///
/// ```
/// use nshard_data::expected_distinct_fraction;
///
/// // Uniform access over a huge table: almost every lookup is distinct.
/// let u = expected_distinct_fraction(1 << 30, 0.0, 10_000.0);
/// assert!(u > 0.95);
/// // Heavily skewed access: far fewer distinct indices.
/// let z = expected_distinct_fraction(1 << 30, 1.5, 10_000.0);
/// assert!(z < u / 2.0);
/// ```
pub fn expected_distinct_fraction(hash_size: u64, alpha: f64, lookups: f64) -> f64 {
    // The estimator is pure but libm-heavy (~300 transcendental calls), and
    // the search re-profiles the same tables constantly — memoize per
    // thread. Bit-identical: the cache stores exactly the computed value.
    thread_local! {
        static MEMO: std::cell::RefCell<std::collections::HashMap<(u64, u64, u64), f64>> =
            std::cell::RefCell::new(std::collections::HashMap::new());
    }
    let key = (hash_size, alpha.to_bits(), lookups.to_bits());
    if let Some(v) = MEMO.with(|m| m.borrow().get(&key).copied()) {
        return v;
    }
    let v = expected_distinct_fraction_uncached(hash_size, alpha, lookups);
    MEMO.with(|m| m.borrow_mut().insert(key, v));
    v
}

fn expected_distinct_fraction_uncached(hash_size: u64, alpha: f64, lookups: f64) -> f64 {
    let n = hash_size.max(1) as f64;
    let lookups = lookups.max(1.0);
    if alpha < 1e-9 {
        // Uniform: E[distinct] = n(1 - (1-1/n)^L)
        let frac = n * (1.0 - (lookups * (1.0 - 1.0 / n).ln()).exp()) / lookups;
        return frac.clamp(1.0 / lookups, 1.0);
    }
    const BUCKETS: usize = 96;
    // Normalization constant: integral approximation of sum r^-a.
    let mut norm = 0.0;
    let mut distinct = 0.0;
    let log_n = n.ln();
    let mut edges = Vec::with_capacity(BUCKETS + 1);
    for b in 0..=BUCKETS {
        edges.push((log_n * b as f64 / BUCKETS as f64).exp());
    }
    // First pass: normalization.
    let mut weights = Vec::with_capacity(BUCKETS);
    for b in 0..BUCKETS {
        let lo = edges[b];
        let hi = edges[b + 1].min(n);
        let count = (hi - lo).max(0.0);
        if count <= 0.0 && b > 0 {
            weights.push((0.0, 0.0, 0.0));
            continue;
        }
        let mid = ((lo + hi) / 2.0).max(1.0);
        let w = mid.powf(-alpha);
        let c = count.max(1.0_f64.min(n));
        norm += w * c;
        weights.push((w, c, mid));
    }
    if norm <= 0.0 {
        return 1.0;
    }
    // Second pass: expected distinct.
    for &(w, c, _) in &weights {
        if c <= 0.0 {
            continue;
        }
        let p = w / norm;
        // 1 - (1-p)^L, numerically stable via ln1p.
        let hit = 1.0 - (lookups * (-p).ln_1p()).exp();
        distinct += c * hit;
    }
    (distinct / lookups).clamp(1.0 / lookups, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generate_is_deterministic() {
        let g = IndexGenerator::new(1 << 16, 1.1);
        assert_eq!(g.generate(128, 4.0, 7), g.generate(128, 4.0, 7));
        assert_ne!(g.generate(128, 4.0, 7), g.generate(128, 4.0, 8));
    }

    #[test]
    fn indices_stay_in_range() {
        let g = IndexGenerator::new(1000, 1.2);
        for &i in &g.generate(256, 8.0, 3) {
            assert!(i < 1000);
        }
    }

    #[test]
    fn skew_reduces_unique_fraction() {
        let n = 1 << 20;
        let uniform = IndexGenerator::new(n, 0.0).stats(1024, 8.0, 1);
        let skewed = IndexGenerator::new(n, 1.5).stats(1024, 8.0, 1);
        assert!(skewed.unique_frac < uniform.unique_frac);
        assert!(skewed.top1pct_share > uniform.top1pct_share);
    }

    #[test]
    fn stats_of_constant_stream() {
        let s = DistributionStats::from_indices(&[5, 5, 5, 5]).unwrap();
        assert_eq!(s.num_lookups, 4);
        assert_eq!(s.unique_frac, 0.25);
        assert_eq!(s.max_index, 5);
        assert_eq!(s.top1pct_share, 1.0);
    }

    #[test]
    fn stats_of_distinct_stream() {
        let s = DistributionStats::from_indices(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.unique_frac, 1.0);
    }

    #[test]
    fn stats_of_empty_stream_is_none() {
        assert!(DistributionStats::from_indices(&[]).is_none());
    }

    #[test]
    fn analytic_distinct_matches_empirical_uniform() {
        let n: u64 = 1 << 14;
        let lookups = 8192.0;
        let analytic = expected_distinct_fraction(n, 0.0, lookups);
        let empirical = IndexGenerator::new(n, 0.0).stats(1024, 8.0, 42).unique_frac;
        assert!(
            (analytic - empirical).abs() < 0.05,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn analytic_distinct_matches_empirical_zipf() {
        let n: u64 = 1 << 20;
        let alpha = 1.1;
        let lookups = 16384.0;
        let analytic = expected_distinct_fraction(n, alpha, lookups);
        let empirical = IndexGenerator::new(n, alpha)
            .stats(2048, 8.0, 11)
            .unique_frac;
        assert!(
            (analytic - empirical).abs() < 0.12,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn distinct_fraction_decreases_with_lookups() {
        let n = 1 << 16;
        let mut prev = 1.1;
        for lookups in [100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0] {
            let f = expected_distinct_fraction(n, 1.0, lookups);
            assert!(f < prev, "lookups {lookups}: {f} >= {prev}");
            prev = f;
        }
    }

    #[test]
    fn distinct_fraction_increases_with_hash_size() {
        let lookups = 50_000.0;
        let small = expected_distinct_fraction(1 << 12, 1.0, lookups);
        let large = expected_distinct_fraction(1 << 26, 1.0, lookups);
        assert!(large > small);
    }

    proptest! {
        #[test]
        fn analytic_fraction_in_unit_range(
            n_pow in 4u32..30,
            alpha in 0.0f64..3.0,
            lookups in 1.0f64..1e7,
        ) {
            let f = expected_distinct_fraction(1u64 << n_pow, alpha, lookups);
            prop_assert!(f.is_finite());
            prop_assert!(f > 0.0 && f <= 1.0);
        }

        #[test]
        fn generated_lengths_track_pooling(batch in 1u32..1024, pf in 0.5f64..32.0) {
            let g = IndexGenerator::new(1 << 12, 1.0);
            let len = g.generate(batch, pf, 1).len();
            let expect = (f64::from(batch) * pf).round() as usize;
            prop_assert_eq!(len, expect.max(1));
        }
    }
}
