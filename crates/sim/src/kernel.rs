//! Fused multi-table embedding kernel cost law.
//!
//! Models the forward + backward computation cost of an FBGEMM-style fused
//! embedding lookup on one GPU, as analyzed in §2.1 of the paper. The law is
//! built so that the paper's two computation observations hold by
//! construction:
//!
//! * **Observation 1** (column-split penalty): the per-row lookup cost has a
//!   fixed component `c_row` that is independent of the dimension, plus a
//!   *sublinear* dimension term `c_elem * d^gamma` with `gamma < 1`. Halving
//!   `d` therefore keeps the fixed cost and more than half of the byte cost,
//!   so each half-table shard costs more than half of the original table.
//! * **Observation 2** (fusion non-linearity): a single fused kernel over `T`
//!   tables enjoys better SM occupancy than `T` separate launches. The fused
//!   cost is `launch + eff(T) * Σ table_work` with `eff(T) < 1` for `T > 1`,
//!   which is non-linear in the sum of single-table costs.
//!
//! The indices distribution enters through a cache-pressure penalty: a batch
//! that touches many unique rows of a huge table spills the L2 cache and
//! pays closer-to-DRAM latencies (§2.1, factors 2 and 4).

use serde::{Deserialize, Serialize};

use crate::noise::NoiseModel;
use crate::profile::TableProfile;

/// Calibration constants of the fused-kernel cost law.
///
/// The defaults are calibrated so that realistic DLRM workloads (batch size
/// 65 536, pooling factor ≈ 15, dimensions 4–128, 10–60 tables across 4
/// GPUs) land in the paper's reported cost range of roughly 15–60 ms per
/// training iteration.
///
/// # Example
///
/// ```
/// use nshard_sim::{KernelParams, TableProfile};
///
/// let params = KernelParams::rtx_2080_ti();
/// let table = TableProfile::new(64, 1 << 22, 15.0, 0.3, 1.05);
/// let full = params.multi_cost_ms(&[table], 65_536);
/// let (a, b) = table.split_columns().unwrap();
/// let half = params.multi_cost_ms(&[a], 65_536);
/// // Observation 1: a half-dimension shard costs more than half the table.
/// assert!(half > full / 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelParams {
    /// Fixed cost per row lookup, in nanoseconds (pointer chase, offset
    /// arithmetic, pooling accumulation setup).
    pub c_row_ns: f64,
    /// Per-element transfer coefficient, in nanoseconds, applied to
    /// `dim^gamma`.
    pub c_elem_ns: f64,
    /// Sublinearity exponent of the dimension term (`< 1`).
    pub gamma: f64,
    /// Fixed cost of one fused kernel launch (host + device), in ms.
    pub launch_ms: f64,
    /// Backward/forward cost ratio (gradient scatter is more expensive than
    /// the forward gather).
    pub bwd_factor: f64,
    /// Asymptotic fused-kernel efficiency: `eff(T) = floor + (1-floor)/sqrt(T)`.
    pub occupancy_floor: f64,
    /// Effective L2 cache size in bytes, controlling the cache penalty knee.
    pub l2_bytes: f64,
    /// Maximum multiplicative cache-spill penalty.
    pub cache_penalty_max: f64,
    /// Strength of the hash-size (TLB / row activation) penalty.
    pub hash_penalty_coeff: f64,
}

impl KernelParams {
    /// Calibration mimicking an RTX 2080 Ti running FBGEMM fused kernels,
    /// the paper's benchmarking hardware.
    pub fn rtx_2080_ti() -> Self {
        Self {
            c_row_ns: 0.25,
            c_elem_ns: 0.035,
            gamma: 0.80,
            launch_ms: 0.08,
            bwd_factor: 1.45,
            occupancy_floor: 0.60,
            l2_bytes: 5.5 * 1024.0 * 1024.0,
            cache_penalty_max: 0.40,
            hash_penalty_coeff: 0.008,
        }
    }

    /// Calibration mimicking a datacenter accelerator with HBM and larger
    /// caches (used by the "production" 128-GPU experiments, Table 4).
    pub fn datacenter_a100_like() -> Self {
        Self {
            c_row_ns: 0.12,
            c_elem_ns: 0.016,
            gamma: 0.82,
            launch_ms: 0.05,
            bwd_factor: 1.35,
            occupancy_floor: 0.55,
            l2_bytes: 40.0 * 1024.0 * 1024.0,
            cache_penalty_max: 0.40,
            hash_penalty_coeff: 0.010,
        }
    }

    /// Fused-kernel efficiency factor for `t` tables; 1.0 for a single
    /// table, decreasing towards [`KernelParams::occupancy_floor`].
    pub fn efficiency(&self, t: usize) -> f64 {
        if t <= 1 {
            1.0
        } else {
            self.occupancy_floor + (1.0 - self.occupancy_floor) / (t as f64).sqrt()
        }
    }

    /// Cache/memory-hierarchy penalty for one table: ≥ 1, growing with the
    /// unique working set and the hash size.
    pub fn cache_penalty(&self, table: &TableProfile, batch_size: u32) -> f64 {
        let lookups = f64::from(batch_size) * table.pooling_factor();
        // Skewed access patterns concentrate on a hot head; the effective
        // working set shrinks as the Zipf exponent grows past uniform.
        let skew_shrink = (-0.5 * (table.zipf_alpha() - 1.0).max(0.0)).exp();
        let unique_rows =
            (table.unique_frac() * lookups * skew_shrink).min(table.hash_size() as f64);
        let ws_bytes = unique_rows * f64::from(table.dim()) * 4.0;
        let spill = 1.0 + self.cache_penalty_max * (1.0 - (-ws_bytes / self.l2_bytes).exp());
        let hash_term = 1.0 + self.hash_penalty_coeff * (table.hash_size() as f64).log2();
        spill * hash_term
    }

    /// Raw (pre-fusion) forward work of one table in milliseconds.
    pub fn table_work_ms(&self, table: &TableProfile, batch_size: u32) -> f64 {
        let lookups = f64::from(batch_size) * table.pooling_factor();
        let row_ns = self.c_row_ns + self.c_elem_ns * f64::from(table.dim()).powf(self.gamma);
        lookups * row_ns * self.cache_penalty(table, batch_size) * 1e-6
    }

    /// Forward cost of a fused multi-table kernel, in milliseconds.
    ///
    /// Returns just the launch overhead for an empty table list (an empty
    /// device still joins the iteration).
    pub fn multi_forward_ms(&self, tables: &[TableProfile], batch_size: u32) -> f64 {
        let raw: f64 = tables
            .iter()
            .map(|t| self.table_work_ms(t, batch_size))
            .sum();
        self.launch_ms + raw * self.efficiency(tables.len())
    }

    /// Backward cost of a fused multi-table kernel, in milliseconds.
    pub fn multi_backward_ms(&self, tables: &[TableProfile], batch_size: u32) -> f64 {
        let raw: f64 = tables
            .iter()
            .map(|t| self.table_work_ms(t, batch_size))
            .sum();
        self.launch_ms + raw * self.bwd_factor * self.efficiency(tables.len())
    }

    /// Combined forward + backward cost (the quantity the paper's
    /// computation cost model predicts), in milliseconds.
    pub fn multi_cost_ms(&self, tables: &[TableProfile], batch_size: u32) -> f64 {
        self.multi_forward_ms(tables, batch_size) + self.multi_backward_ms(tables, batch_size)
    }

    /// Noisy "measured" combined cost, following the paper's protocol of
    /// taking the median over repeated runs.
    pub fn measure_multi_cost_ms(
        &self,
        tables: &[TableProfile],
        batch_size: u32,
        noise: &NoiseModel,
        repeats: u32,
    ) -> f64 {
        let base = self.multi_cost_ms(tables, batch_size);
        noise.median_measurement(base, repeats, profile_stream(tables))
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        Self::rtx_2080_ti()
    }
}

/// Derives a deterministic noise-stream identifier from a table combination.
pub(crate) fn profile_stream(tables: &[TableProfile]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in tables {
        for bits in [
            u64::from(t.dim()),
            t.hash_size(),
            t.pooling_factor().to_bits(),
            t.unique_frac().to_bits(),
            t.zipf_alpha().to_bits(),
        ] {
            h ^= bits;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table(dim: u32) -> TableProfile {
        TableProfile::new(dim, 1 << 22, 15.0, 0.3, 1.05)
    }

    #[test]
    fn observation_1_half_costs_more_than_half() {
        let p = KernelParams::rtx_2080_ti();
        for dim in [8u32, 16, 32, 64, 128, 256] {
            let full = p.multi_cost_ms(&[table(dim)], 65_536);
            let (a, _) = table(dim).split_columns().unwrap();
            let half = p.multi_cost_ms(&[a], 65_536);
            assert!(
                half > full / 2.0,
                "dim {dim}: half {half} <= full/2 {}",
                full / 2.0
            );
            // ...but still cheaper than the whole table.
            assert!(half < full, "dim {dim}: half {half} >= full {full}");
        }
    }

    #[test]
    fn observation_2_fused_cheaper_than_sum_of_singles() {
        let p = KernelParams::rtx_2080_ti();
        let tables: Vec<TableProfile> = [4u32, 8, 16, 32, 64, 128, 64, 32, 16, 8]
            .iter()
            .map(|&d| table(d))
            .collect();
        let fused = p.multi_cost_ms(&tables, 65_536);
        let sum: f64 = tables
            .iter()
            .map(|t| p.multi_cost_ms(std::slice::from_ref(t), 65_536))
            .sum();
        assert!(fused < sum, "fused {fused} >= sum {sum}");
        // Non-trivially cheaper: the gap should exceed launch-overhead
        // savings alone.
        let launch_savings = p.launch_ms * 2.0 * (tables.len() - 1) as f64;
        assert!(sum - fused > launch_savings * 2.0);
    }

    #[test]
    fn efficiency_is_monotone_decreasing() {
        let p = KernelParams::rtx_2080_ti();
        let mut prev = p.efficiency(1);
        assert_eq!(prev, 1.0);
        for t in 2..100 {
            let e = p.efficiency(t);
            assert!(e < prev);
            assert!(e >= p.occupancy_floor);
            prev = e;
        }
    }

    #[test]
    fn cost_increases_with_dimension() {
        let p = KernelParams::rtx_2080_ti();
        let mut prev = 0.0;
        for dim in [4u32, 8, 16, 32, 64, 128] {
            let c = p.multi_cost_ms(&[table(dim)], 65_536);
            assert!(c > prev, "dim {dim}");
            prev = c;
        }
    }

    #[test]
    fn cost_increases_with_pooling_factor() {
        let p = KernelParams::rtx_2080_ti();
        let lo = TableProfile::new(64, 1 << 22, 5.0, 0.3, 1.05);
        let hi = TableProfile::new(64, 1 << 22, 50.0, 0.3, 1.05);
        assert!(p.multi_cost_ms(&[hi], 65_536) > p.multi_cost_ms(&[lo], 65_536));
    }

    #[test]
    fn cost_increases_with_hash_size() {
        let p = KernelParams::rtx_2080_ti();
        let small = TableProfile::new(64, 1 << 16, 15.0, 0.3, 1.05);
        let large = TableProfile::new(64, 1 << 26, 15.0, 0.3, 1.05);
        assert!(p.multi_cost_ms(&[large], 65_536) > p.multi_cost_ms(&[small], 65_536));
    }

    #[test]
    fn fewer_unique_indices_cost_less() {
        let p = KernelParams::rtx_2080_ti();
        let hot = TableProfile::new(64, 1 << 24, 15.0, 0.01, 1.05);
        let cold = TableProfile::new(64, 1 << 24, 15.0, 0.9, 1.05);
        assert!(p.multi_cost_ms(&[hot], 65_536) < p.multi_cost_ms(&[cold], 65_536));
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let p = KernelParams::rtx_2080_ti();
        let ts = vec![table(64), table(32)];
        assert!(p.multi_backward_ms(&ts, 65_536) > p.multi_forward_ms(&ts, 65_536));
    }

    #[test]
    fn calibration_lands_in_paper_range() {
        // ~9 production-like tables on one GPU should cost a few ms to a few
        // tens of ms (Table 1 reports 17-60 ms totals including comm).
        let p = KernelParams::rtx_2080_ti();
        let tables: Vec<TableProfile> = (0..9)
            .map(|i| table(if i % 2 == 0 { 64 } else { 32 }))
            .collect();
        let c = p.multi_cost_ms(&tables, 65_536);
        assert!(c > 2.0 && c < 60.0, "per-GPU compute cost {c} out of range");
    }

    #[test]
    fn measured_cost_is_deterministic_and_near_exact() {
        let p = KernelParams::rtx_2080_ti();
        let ts = vec![table(64)];
        let noise = NoiseModel::new(3, 0.02);
        let a = p.measure_multi_cost_ms(&ts, 65_536, &noise, 11);
        let b = p.measure_multi_cost_ms(&ts, 65_536, &noise, 11);
        assert_eq!(a, b);
        let exact = p.multi_cost_ms(&ts, 65_536);
        assert!((a - exact).abs() / exact < 0.05);
    }

    #[test]
    fn empty_device_costs_only_launch() {
        let p = KernelParams::rtx_2080_ti();
        assert_eq!(p.multi_forward_ms(&[], 65_536), p.launch_ms);
    }

    proptest! {
        #[test]
        fn costs_are_finite_positive(
            dims in proptest::collection::vec(1u32..64, 1..20),
            batch in 1u32..200_000,
        ) {
            let p = KernelParams::rtx_2080_ti();
            let tables: Vec<TableProfile> =
                dims.iter().map(|&d| TableProfile::new(d * 4, 1 << 20, 10.0, 0.4, 1.0)).collect();
            let c = p.multi_cost_ms(&tables, batch);
            prop_assert!(c.is_finite() && c > 0.0);
        }

        #[test]
        fn observation_1_holds_generically(
            dim_pow in 3u32..8, // 8..=128, always legally splittable
            rows_pow in 10u32..26,
            pf in 1.0f64..64.0,
            uf in 0.05f64..1.0,
        ) {
            let p = KernelParams::rtx_2080_ti();
            let t = TableProfile::new(1 << dim_pow, 1u64 << rows_pow, pf, uf, 1.0);
            let full = p.multi_cost_ms(&[t], 65_536);
            let (a, _) = t.split_columns().unwrap();
            let half = p.multi_cost_ms(&[a], 65_536);
            prop_assert!(half > full / 2.0);
        }

        #[test]
        fn fused_never_exceeds_sum_of_singles(
            dims in proptest::collection::vec(1u32..32, 2..15),
        ) {
            let p = KernelParams::rtx_2080_ti();
            let tables: Vec<TableProfile> =
                dims.iter().map(|&d| TableProfile::new(d * 4, 1 << 20, 10.0, 0.4, 1.0)).collect();
            let fused = p.multi_cost_ms(&tables, 65_536);
            let sum: f64 = tables
                .iter()
                .map(|t| p.multi_cost_ms(std::slice::from_ref(t), 65_536))
                .sum();
            prop_assert!(fused <= sum);
        }
    }
}
