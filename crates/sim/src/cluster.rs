//! Multi-GPU cluster: end-to-end evaluation of a sharding plan.
//!
//! Implements the paper's evaluation protocol (§4, "Evaluation protocol"):
//! run the embedding computation and communication for a placement and
//! report the per-device embedding cost — forward computation, forward
//! all-to-all, backward all-to-all and backward computation — taking the
//! **max across devices** as the plan's cost, since the slowest device is
//! the bottleneck of synchronous training.

use serde::{Deserialize, Serialize};

use crate::comm::{CommCosts, CommParams};
use crate::device::GpuSpec;
use crate::devices::DevicePool;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::kernel::profile_stream;
use crate::noise::NoiseModel;
use crate::profile::TableProfile;

/// Number of repeated measurements used for the median, mirroring the
/// paper's 100-run protocol (kept smaller here because the median of our
/// noise model converges quickly).
const MEASURE_REPEATS: u32 = 21;

/// The embedding cost breakdown of one GPU for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceCost {
    /// Forward embedding lookup (fused kernel), ms.
    pub compute_fwd_ms: f64,
    /// Backward embedding update (fused kernel), ms.
    pub compute_bwd_ms: f64,
    /// Forward all-to-all, ms (as observed locally, including waits).
    pub comm_fwd_ms: f64,
    /// Backward all-to-all, ms.
    pub comm_bwd_ms: f64,
}

impl DeviceCost {
    /// Total embedding cost of this device, ms.
    pub fn total_ms(&self) -> f64 {
        self.compute_fwd_ms + self.compute_bwd_ms + self.comm_fwd_ms + self.comm_bwd_ms
    }

    /// Total computation (forward + backward kernels), ms.
    pub fn compute_ms(&self) -> f64 {
        self.compute_fwd_ms + self.compute_bwd_ms
    }

    /// Total communication (forward + backward all-to-all), ms.
    pub fn comm_ms(&self) -> f64 {
        self.comm_fwd_ms + self.comm_bwd_ms
    }
}

/// The evaluated cost of a full sharding plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanCosts {
    devices: Vec<DeviceCost>,
}

impl PlanCosts {
    /// Per-device cost breakdowns.
    pub fn devices(&self) -> &[DeviceCost] {
        &self.devices
    }

    /// The plan's embedding cost: max total across devices (the metric of
    /// Table 1 and Table 4).
    pub fn max_total_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(DeviceCost::total_ms)
            .fold(0.0, f64::max)
    }

    /// Mean per-device total, ms.
    pub fn mean_total_ms(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices.iter().map(DeviceCost::total_ms).sum::<f64>() / self.devices.len() as f64
    }

    /// Balance ratio in `(0, 1]`: min device total / max device total.
    /// 1.0 means perfectly balanced.
    pub fn balance(&self) -> f64 {
        let max = self.max_total_ms();
        if max == 0.0 {
            return 1.0;
        }
        let min = self
            .devices
            .iter()
            .map(DeviceCost::total_ms)
            .fold(f64::INFINITY, f64::min);
        min / max
    }

    /// Max computation cost across devices, ms.
    pub fn max_compute_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(DeviceCost::compute_ms)
            .fold(0.0, f64::max)
    }

    /// Max communication cost across devices, ms.
    pub fn max_comm_ms(&self) -> f64 {
        self.devices
            .iter()
            .map(DeviceCost::comm_ms)
            .fold(0.0, f64::max)
    }
}

/// A homogeneous cluster of `D` GPUs evaluating embedding sharding plans.
///
/// This is the reproduction's stand-in for the paper's eight-GPU 2080 Ti
/// server (and, with [`GpuSpec::datacenter`], the 128-GPU production
/// cluster).
///
/// # Example
///
/// ```
/// use nshard_sim::{Cluster, GpuSpec, TableProfile};
///
/// let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 4, 65_536);
/// let t = |d| TableProfile::new(d, 1 << 20, 12.0, 0.3, 1.0);
/// let plan = vec![vec![t(64)], vec![t(64)], vec![t(32), t(32)], vec![t(128)]];
/// let costs = cluster.evaluate(&plan, 42)?;
/// assert!(costs.max_total_ms() >= costs.mean_total_ms());
/// # Ok::<(), nshard_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    spec: GpuSpec,
    num_devices: usize,
    batch_size: u32,
    noise: NoiseModel,
    /// Optional heterogeneous fleet description. `None` (and any uniform
    /// pool) evaluates through the bit-exact homogeneous paths; serialized
    /// clusters from before heterogeneity load as `None`.
    #[serde(default)]
    devices: Option<DevicePool>,
}

impl Cluster {
    /// Creates a cluster of `num_devices` identical GPUs with ~2% default
    /// measurement noise.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`.
    pub fn new(spec: GpuSpec, num_devices: usize, batch_size: u32) -> Self {
        assert!(num_devices > 0, "a cluster needs at least one device");
        Self {
            spec,
            num_devices,
            batch_size,
            noise: NoiseModel::default(),
            devices: None,
        }
    }

    /// Replaces the measurement-noise model (builder-style).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches a heterogeneous fleet description (builder-style): the
    /// pool's per-device memory budgets override the spec's budget, kernel
    /// times scale by each device's compute multiplier, and the two-tier
    /// network reshapes the all-to-all. A uniform pool behaves exactly
    /// like `None`.
    ///
    /// # Panics
    ///
    /// Panics when the pool's size differs from the cluster's device count.
    pub fn with_devices(mut self, pool: DevicePool) -> Self {
        assert_eq!(
            pool.len(),
            self.num_devices,
            "device pool size must match the cluster's device count"
        );
        self.devices = Some(pool);
        self
    }

    /// The heterogeneous fleet description, if any.
    pub fn device_pool(&self) -> Option<&DevicePool> {
        self.devices.as_ref()
    }

    /// The memory budget of device `g`: its pool profile when the cluster
    /// is heterogeneous, the spec's budget otherwise.
    pub fn budget_of(&self, g: usize) -> u64 {
        self.devices
            .as_ref()
            .map_or(self.spec.mem_budget_bytes(), |p| p.budget_of(g))
    }

    /// The compute-time multiplier of device `g` (`1.0` when uniform).
    pub fn compute_scale_of(&self, g: usize) -> f64 {
        self.devices.as_ref().map_or(1.0, |p| p.compute_scale_of(g))
    }

    /// The node of device `g` (`0` when no pool is attached).
    pub fn node_of(&self, g: usize) -> usize {
        self.devices.as_ref().map_or(0, |p| p.node_of(g))
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Number of GPUs.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Training batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Validates that `assignment` fits this cluster's memory budgets.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidPlan`] if the assignment has the wrong number of
    /// devices; [`SimError::OutOfMemory`] for the first device whose tables
    /// exceed the budget.
    pub fn check_memory(&self, assignment: &[Vec<TableProfile>]) -> Result<(), SimError> {
        self.check_memory_with_faults(assignment, &FaultPlan::default())
    }

    /// Like [`Cluster::check_memory`], but against the *effective* budgets
    /// under `faults` (memory pressure shrinks individual devices).
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`].
    pub fn check_memory_with_faults(
        &self,
        assignment: &[Vec<TableProfile>],
        faults: &FaultPlan,
    ) -> Result<(), SimError> {
        if assignment.len() != self.num_devices {
            return Err(SimError::InvalidPlan {
                reason: format!(
                    "plan assigns {} devices but cluster has {}",
                    assignment.len(),
                    self.num_devices
                ),
            });
        }
        for (g, tables) in assignment.iter().enumerate() {
            let required: u64 = tables.iter().map(TableProfile::memory_bytes).sum();
            let budget = faults.effective_budget_bytes(g, self.budget_of(g));
            if required > budget {
                return Err(SimError::OutOfMemory {
                    device: g,
                    required_bytes: required,
                    budget_bytes: budget,
                });
            }
        }
        Ok(())
    }

    /// Device dimension (sum of communication-effective table dimensions)
    /// of each device. Replicated shards count at `dim × comm_share`; for
    /// ordinary shards this is exactly the dimension sum it always was.
    pub fn device_dims(assignment: &[Vec<TableProfile>]) -> Vec<f64> {
        assignment
            .iter()
            .map(|tables| tables.iter().map(TableProfile::comm_dim).sum())
            .collect()
    }

    /// Evaluates a sharding plan with measurement noise (median of repeated
    /// runs), the way the paper collects "real" costs from GPUs.
    ///
    /// The forward all-to-all of each GPU starts when its forward kernel
    /// finishes, so computation imbalance turns into communication waits —
    /// the accumulation effect of Figure 1.
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`].
    pub fn evaluate(
        &self,
        assignment: &[Vec<TableProfile>],
        seed: u64,
    ) -> Result<PlanCosts, SimError> {
        self.evaluate_inner(assignment, Some(seed), &FaultPlan::default())
    }

    /// Evaluates a plan with the exact analytic law (no measurement noise).
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`].
    pub fn evaluate_exact(&self, assignment: &[Vec<TableProfile>]) -> Result<PlanCosts, SimError> {
        self.evaluate_inner(assignment, None, &FaultPlan::default())
    }

    /// Like [`Cluster::evaluate`], but under injected `faults`: stragglers
    /// slow their device's kernels, degraded links cut the all-to-all
    /// bandwidth, memory pressure shrinks budgets, and transient faults can
    /// abort the measurement for some seeds.
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`], plus [`SimError::TransientFailure`]
    /// when a transient fault fires for this `seed`.
    pub fn evaluate_with_faults(
        &self,
        assignment: &[Vec<TableProfile>],
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<PlanCosts, SimError> {
        self.evaluate_inner(assignment, Some(seed), faults)
    }

    /// Like [`Cluster::evaluate_exact`], but under injected `faults`.
    /// Transient faults never fire: they model *measurement* flakiness, and
    /// the exact path is the analytic law.
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`].
    pub fn evaluate_exact_with_faults(
        &self,
        assignment: &[Vec<TableProfile>],
        faults: &FaultPlan,
    ) -> Result<PlanCosts, SimError> {
        self.evaluate_inner(assignment, None, faults)
    }

    fn evaluate_inner(
        &self,
        assignment: &[Vec<TableProfile>],
        seed: Option<u64>,
        faults: &FaultPlan,
    ) -> Result<PlanCosts, SimError> {
        self.check_memory_with_faults(assignment, faults)?;
        if let Some(s) = seed {
            if let Some(device) = faults.transient_failure(s, self.num_devices) {
                return Err(SimError::TransientFailure {
                    device,
                    reason: "injected measurement fault".into(),
                });
            }
        }
        let kernel = self.spec.kernel();
        let comm = degraded_comm(self.spec.comm(), faults);
        let comm = &comm;

        let noise = match seed {
            Some(s) => NoiseModel::new(s ^ self.noise.seed(), self.noise.sigma()),
            None => NoiseModel::disabled(),
        };

        // Per-device kernel slowdown: injected straggler faults × the
        // device's hardware class × slow-node-class faults. Every factor is
        // exactly 1.0 on a healthy homogeneous cluster, and `x * 1.0` is a
        // bitwise identity, so the legacy path is unchanged.
        let slowdown = |g: usize| {
            faults.compute_slowdown(g)
                * self.compute_scale_of(g)
                * faults.node_slowdown(self.node_of(g))
        };
        let fwd_compute: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(g, tables)| {
                let base = kernel.multi_forward_ms(tables, self.batch_size) * slowdown(g);
                noise.median_measurement(base, MEASURE_REPEATS, profile_stream(tables))
            })
            .collect();
        let bwd_compute: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(g, tables)| {
                let base = kernel.multi_backward_ms(tables, self.batch_size) * slowdown(g);
                noise.median_measurement(base, MEASURE_REPEATS, profile_stream(tables) ^ 0x1)
            })
            .collect();

        let dims = Self::device_dims(assignment);
        // Backward comm starts synchronously (the dense backward between the
        // two collectives is data-parallel and identical across devices).
        let bwd_starts = vec![0.0; dims.len()];
        let (comm_costs, bwd_comm): (CommCosts, Vec<f64>) = match self.tiered_bw_scales(faults) {
            // Two-tier network (or asymmetric link faults): per-device
            // bandwidth scales through the tiered comm law.
            Some(scales) => {
                // Forward comm starts when each device's forward kernel
                // completes.
                let fwd = comm.measure_costs_ms_tiered(
                    &dims,
                    &fwd_compute,
                    &scales,
                    self.batch_size,
                    &noise,
                    MEASURE_REPEATS,
                );
                let bwd = comm
                    .measure_costs_ms_tiered(
                        &dims,
                        &bwd_starts,
                        &scales,
                        self.batch_size,
                        &noise,
                        MEASURE_REPEATS,
                    )
                    .bwd;
                (fwd, bwd)
            }
            // Flat network: the original (fixture-pinned) code path.
            None => {
                let fwd = comm.measure_costs_ms(
                    &dims,
                    &fwd_compute,
                    self.batch_size,
                    &noise,
                    MEASURE_REPEATS,
                );
                let bwd = comm
                    .measure_costs_ms(&dims, &bwd_starts, self.batch_size, &noise, MEASURE_REPEATS)
                    .bwd;
                (fwd, bwd)
            }
        };

        let devices = (0..self.num_devices)
            .map(|g| DeviceCost {
                compute_fwd_ms: fwd_compute[g],
                compute_bwd_ms: bwd_compute[g],
                comm_fwd_ms: comm_costs.fwd[g],
                comm_bwd_ms: bwd_comm[g],
            })
            .collect();
        Ok(PlanCosts { devices })
    }

    /// Per-device bandwidth scales when the network is *not* flat — from
    /// the pool's two-tier topology and/or asymmetric inter-node link
    /// faults. `None` on a flat healthy network, routing evaluation
    /// through the bit-exact uniform comm path.
    fn tiered_bw_scales(&self, faults: &FaultPlan) -> Option<Vec<f64>> {
        let pool_tiered = self
            .devices
            .as_ref()
            .is_some_and(|p| !p.has_uniform_bandwidth());
        let fault_tiered = faults.has_node_link_faults();
        if !pool_tiered && !fault_tiered {
            return None;
        }
        Some(
            (0..self.num_devices)
                .map(|g| {
                    let pool_scale = self.devices.as_ref().map_or(1.0, |p| p.bw_scale_of(g));
                    pool_scale * faults.node_link_scale(self.node_of(g))
                })
                .collect(),
        )
    }
}

/// The communication parameters with the fault plan's bandwidth cut
/// applied (identity for a healthy fabric).
fn degraded_comm(comm: &CommParams, faults: &FaultPlan) -> CommParams {
    let scale = faults.bandwidth_scale();
    CommParams {
        base_bw_gbps: comm.base_bw_gbps * scale,
        ..*comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::DeviceProfile;
    use proptest::prelude::*;

    fn t(dim: u32) -> TableProfile {
        TableProfile::new(dim, 1 << 20, 12.0, 0.3, 1.05)
    }

    fn cluster(d: usize) -> Cluster {
        Cluster::new(GpuSpec::rtx_2080_ti(), d, 65_536)
    }

    #[test]
    fn balanced_plan_beats_skewed_plan() {
        let c = cluster(4);
        let balanced = vec![
            vec![t(64); 3],
            vec![t(64); 3],
            vec![t(64); 3],
            vec![t(64); 3],
        ];
        let skewed = vec![vec![t(64); 9], vec![t(64)], vec![t(64)], vec![t(64)]];
        let b = c.evaluate_exact(&balanced).unwrap();
        let s = c.evaluate_exact(&skewed).unwrap();
        assert!(b.max_total_ms() < s.max_total_ms());
        assert!(b.balance() > s.balance());
    }

    #[test]
    fn memory_overflow_is_reported() {
        let c = cluster(2);
        // One table of 32M rows x 128 dims x 4B = 16 GB >> 4 GB budget.
        let huge = TableProfile::new(128, 32 << 20, 12.0, 0.3, 1.05);
        let err = c.evaluate(&[vec![huge], vec![]], 0).unwrap_err();
        match err {
            SimError::OutOfMemory { device, .. } => assert_eq!(device, 0),
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn exactly_at_budget_is_feasible() {
        // required == budget must pass: the budget is an inclusive bound.
        let table = t(64);
        let c = Cluster::new(
            GpuSpec::rtx_2080_ti().with_mem_budget(table.memory_bytes()),
            2,
            65_536,
        );
        c.check_memory(&[vec![table], vec![table]]).unwrap();
    }

    #[test]
    fn one_byte_over_budget_is_attributed() {
        let table = t(64);
        let c = Cluster::new(
            GpuSpec::rtx_2080_ti().with_mem_budget(table.memory_bytes() - 1),
            2,
            65_536,
        );
        let err = c.check_memory(&[vec![], vec![table]]).unwrap_err();
        match err {
            SimError::OutOfMemory {
                device,
                required_bytes,
                budget_bytes,
            } => {
                assert_eq!(device, 1);
                assert_eq!(required_bytes, table.memory_bytes());
                assert_eq!(budget_bytes, table.memory_bytes() - 1);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn empty_devices_occupy_zero_bytes() {
        // Devices with no tables pass the memory check even at budget 0,
        // and an all-empty plan evaluates without error.
        let c = Cluster::new(GpuSpec::rtx_2080_ti().with_mem_budget(0), 2, 65_536);
        c.check_memory(&[vec![], vec![]]).unwrap();
        let roomy = cluster(2);
        let costs = roomy.evaluate_exact(&[vec![], vec![]]).unwrap();
        assert_eq!(costs.devices().len(), 2);
    }

    #[test]
    fn wrong_device_count_is_rejected() {
        let c = cluster(4);
        assert!(matches!(
            c.evaluate(&[vec![t(8)]], 0),
            Err(SimError::InvalidPlan { .. })
        ));
    }

    #[test]
    fn exact_evaluation_is_deterministic() {
        let c = cluster(4);
        let plan = vec![vec![t(64)], vec![t(32)], vec![t(16)], vec![t(128)]];
        assert_eq!(c.evaluate_exact(&plan), c.evaluate_exact(&plan));
    }

    #[test]
    fn measured_evaluation_is_seed_deterministic() {
        let c = cluster(2);
        let plan = vec![vec![t(64)], vec![t(32)]];
        assert_eq!(c.evaluate(&plan, 9).unwrap(), c.evaluate(&plan, 9).unwrap());
        assert_ne!(
            c.evaluate(&plan, 9).unwrap(),
            c.evaluate(&plan, 10).unwrap()
        );
    }

    #[test]
    fn measured_close_to_exact() {
        let c = cluster(4);
        let plan = vec![
            vec![t(64), t(32)],
            vec![t(32)],
            vec![t(16), t(8)],
            vec![t(128)],
        ];
        let exact = c.evaluate_exact(&plan).unwrap().max_total_ms();
        let meas = c.evaluate(&plan, 5).unwrap().max_total_ms();
        assert!((exact - meas).abs() / exact < 0.1);
    }

    #[test]
    fn device_dims_sums_dimensions() {
        let plan = vec![vec![t(64), t(32)], vec![]];
        assert_eq!(Cluster::device_dims(&plan), vec![96.0, 0.0]);
    }

    #[test]
    fn compute_imbalance_propagates_into_comm_waits() {
        let c = cluster(2).with_noise(NoiseModel::disabled());
        // Device 0 heavy compute, device 1 light: device 1 must wait for 0
        // before the forward all-to-all, so its fwd comm cost is larger.
        let plan = vec![vec![t(64); 8], vec![t(64)]];
        let costs = c.evaluate_exact(&plan).unwrap();
        let d = costs.devices();
        assert!(d[1].comm_fwd_ms > d[0].comm_fwd_ms);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = Cluster::new(GpuSpec::rtx_2080_ti(), 0, 65_536);
    }

    #[test]
    fn plan_costs_accessors_consistent() {
        let c = cluster(4);
        let plan = vec![vec![t(64)], vec![t(64)], vec![t(64)], vec![t(64)]];
        let costs = c.evaluate_exact(&plan).unwrap();
        assert_eq!(costs.devices().len(), 4);
        assert!(costs.max_total_ms() >= costs.mean_total_ms());
        assert!(costs.balance() > 0.0 && costs.balance() <= 1.0);
        let d0 = costs.devices()[0];
        assert!((d0.total_ms() - (d0.compute_ms() + d0.comm_ms())).abs() < 1e-12);
    }

    #[test]
    fn uniform_pool_is_bit_identical_to_no_pool() {
        let plain = cluster(4);
        let pooled = cluster(4).with_devices(DevicePool::uniform(
            4,
            GpuSpec::rtx_2080_ti().mem_budget_bytes(),
        ));
        let plan = vec![vec![t(64), t(32)], vec![t(64)], vec![t(16)], vec![t(128)]];
        assert_eq!(plain.evaluate_exact(&plan), pooled.evaluate_exact(&plan));
        assert_eq!(
            plain.evaluate(&plan, 17).unwrap(),
            pooled.evaluate(&plan, 17).unwrap()
        );
    }

    #[test]
    fn slow_device_class_scales_its_compute() {
        let budget = GpuSpec::rtx_2080_ti().mem_budget_bytes();
        // Flat network (inter scale 1.0): only the compute multiplier acts.
        let pool = DevicePool::two_tier(1, budget, 1, budget, 2.0, 1.0);
        let hetero = cluster(2)
            .with_devices(pool)
            .with_noise(NoiseModel::disabled());
        let plain = cluster(2).with_noise(NoiseModel::disabled());
        let plan = vec![vec![t(64)], vec![t(64)]];
        let h = hetero.evaluate_exact(&plan).unwrap();
        let p = plain.evaluate_exact(&plan).unwrap();
        // Device 0 (fast class) keeps its kernel time bit-for-bit.
        assert_eq!(
            h.devices()[0].compute_fwd_ms.to_bits(),
            p.devices()[0].compute_fwd_ms.to_bits()
        );
        // Device 1 (slow class) runs exactly 2x slower kernels.
        assert!(
            (h.devices()[1].compute_fwd_ms - 2.0 * p.devices()[1].compute_fwd_ms).abs() < 1e-12
        );
        assert!(
            (h.devices()[1].compute_bwd_ms - 2.0 * p.devices()[1].compute_bwd_ms).abs() < 1e-12
        );
        assert!(h.max_total_ms() > p.max_total_ms());
    }

    #[test]
    fn two_tier_network_raises_comm_costs() {
        let budget = GpuSpec::rtx_2080_ti().mem_budget_bytes();
        let flat = cluster(4)
            .with_devices(DevicePool::two_tier(2, budget, 2, budget, 1.0, 1.0))
            .with_noise(NoiseModel::disabled());
        let tiered = cluster(4)
            .with_devices(DevicePool::two_tier(2, budget, 2, budget, 1.0, 0.25))
            .with_noise(NoiseModel::disabled());
        let plan = vec![vec![t(64)], vec![t(64)], vec![t(64)], vec![t(64)]];
        let f = flat.evaluate_exact(&plan).unwrap();
        let s = tiered.evaluate_exact(&plan).unwrap();
        for (a, b) in s.devices().iter().zip(f.devices()) {
            assert!((a.compute_fwd_ms - b.compute_fwd_ms).abs() < 1e-12);
            assert!(a.comm_fwd_ms > b.comm_fwd_ms);
            assert!(a.comm_bwd_ms > b.comm_bwd_ms);
        }
    }

    #[test]
    fn per_device_budgets_are_enforced() {
        let table = t(64);
        let pool = DevicePool::new(
            vec![
                DeviceProfile::new(2 * table.memory_bytes(), 1.0, 0),
                DeviceProfile::new(table.memory_bytes() - 1, 1.0, 0),
            ],
            1.0,
        );
        let c = cluster(2).with_devices(pool);
        assert_eq!(c.budget_of(0), 2 * table.memory_bytes());
        // The same load fits the roomy device and overflows the tight one.
        c.check_memory(&[vec![table], vec![]]).unwrap();
        match c.check_memory(&[vec![], vec![table]]) {
            Err(SimError::OutOfMemory { device, .. }) => assert_eq!(device, 1),
            other => panic!("expected OutOfMemory on device 1, got {other:?}"),
        }
    }

    #[test]
    fn replicated_shards_shrink_comm_dims_only() {
        // comm_share weights device_dims but leaves memory accounting alone.
        let full = t(64);
        let replica = t(64).with_comm_share(0.5);
        let dims = Cluster::device_dims(&[vec![replica], vec![full]]);
        assert_eq!(dims, vec![32.0, 64.0]);
        assert_eq!(replica.memory_bytes(), full.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "pool size must match")]
    fn mismatched_pool_size_panics() {
        let _ = cluster(4).with_devices(DevicePool::uniform(2, 1 << 30));
    }

    proptest! {
        #[test]
        fn max_total_is_max_of_devices(
            dims in proptest::collection::vec(1u32..32, 4..24),
        ) {
            let c = cluster(4).with_noise(NoiseModel::disabled());
            let mut plan = vec![Vec::new(); 4];
            for (i, d) in dims.iter().enumerate() {
                plan[i % 4].push(t(d * 4));
            }
            let costs = c.evaluate_exact(&plan).unwrap();
            let max_by_hand = costs
                .devices()
                .iter()
                .map(DeviceCost::total_ms)
                .fold(0.0, f64::max);
            prop_assert_eq!(costs.max_total_ms(), max_by_hand);
        }
    }
}
