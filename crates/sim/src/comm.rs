//! All-to-all communication cost model.
//!
//! Models the forward (embedding exchange) and backward (gradient exchange)
//! all-to-all collectives of distributed DLRM training (§2.2 of the paper).
//!
//! Two properties are built in:
//!
//! * **Observation 3** — the max communication cost across GPUs grows with
//!   the max *device dimension* (the sum of the embedding dimensions placed
//!   on a device): the collective is gated by the participant that moves the
//!   most bytes, and a GPU's bytes are `batch × device_dim × 4 × (D-1)/D`.
//! * **Straggler skew** (Figure 1, right) — GPUs join the collective at
//!   different timestamps; early joiners pay the wait for the last one, so
//!   the locally measured communication latency differs per GPU even for a
//!   perfectly balanced placement.

use serde::{Deserialize, Serialize};

use crate::noise::NoiseModel;

/// Calibration constants of the all-to-all cost law.
///
/// # Example
///
/// ```
/// use nshard_sim::CommParams;
///
/// let params = CommParams::pcie_server();
/// // Balanced placement, simultaneous start, 4 GPUs:
/// let costs = params.forward_costs_ms(&[320.0, 320.0, 320.0, 320.0], &[0.0; 4], 65_536);
/// assert_eq!(costs.len(), 4);
/// // All GPUs see the same latency when balanced and synchronized.
/// assert!((costs[0] - costs[3]).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommParams {
    /// Fixed per-peer latency term in ms (link setup, kernel launch).
    pub alpha_ms: f64,
    /// Point-to-point bandwidth in GB/s before congestion.
    pub base_bw_gbps: f64,
    /// Congestion growth per additional participant: effective bandwidth is
    /// `base / (1 + coeff * (D - 1))`.
    pub congestion_coeff: f64,
    /// Weight of the *collective-wide max* byte count vs. a GPU's own byte
    /// count in its locally observed latency (1.0 = fully gated by the
    /// slowest participant).
    pub straggler_weight: f64,
    /// Backward-pass bandwidth multiplier (gradient all-to-all is slightly
    /// slower: atomics + different message layout).
    pub bwd_bw_scale: f64,
    /// Backward-pass fixed per-peer latency in ms.
    pub bwd_alpha_ms: f64,
}

impl CommParams {
    /// Calibration mimicking the paper's 8-GPU PCIe server (2080 Ti, no
    /// NVLink).
    pub fn pcie_server() -> Self {
        Self {
            alpha_ms: 0.030,
            base_bw_gbps: 16.0,
            congestion_coeff: 0.08,
            straggler_weight: 0.75,
            bwd_bw_scale: 0.92,
            bwd_alpha_ms: 0.035,
        }
    }

    /// Calibration mimicking an RDMA training cluster (Table 4's production
    /// platform).
    pub fn rdma_cluster() -> Self {
        Self {
            alpha_ms: 0.012,
            base_bw_gbps: 90.0,
            congestion_coeff: 0.015,
            straggler_weight: 0.80,
            bwd_bw_scale: 0.95,
            bwd_alpha_ms: 0.015,
        }
    }

    /// Effective per-GPU bandwidth in bytes/ms for a collective of `d`
    /// participants.
    pub fn effective_bw_bytes_per_ms(&self, d: usize) -> f64 {
        let gbps = self.base_bw_gbps / (1.0 + self.congestion_coeff * (d.saturating_sub(1)) as f64);
        gbps * 1e9 / 1e3
    }

    /// Bytes a GPU with device dimension `device_dim` contributes to one
    /// all-to-all (what it sends to its `D-1` peers).
    pub fn bytes_for_device(&self, device_dim: f64, batch_size: u32, d: usize) -> f64 {
        if d <= 1 {
            return 0.0;
        }
        let frac_remote = (d as f64 - 1.0) / d as f64;
        f64::from(batch_size) * device_dim * 4.0 * frac_remote
    }

    fn costs_ms(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        batch_size: u32,
        alpha_ms: f64,
        bw_scale: f64,
    ) -> Vec<f64> {
        let d = device_dims.len();
        assert_eq!(
            d,
            start_ts_ms.len(),
            "device_dims and start_ts_ms must have the same length"
        );
        if d == 0 {
            return Vec::new();
        }
        if d == 1 {
            // Single GPU: nothing to exchange.
            return vec![0.0];
        }
        let ready = start_ts_ms.iter().cloned().fold(f64::MIN, f64::max);
        let bw = self.effective_bw_bytes_per_ms(d) * bw_scale;
        let bytes: Vec<f64> = device_dims
            .iter()
            .map(|&dim| self.bytes_for_device(dim, batch_size, d))
            .collect();
        let max_bytes = bytes.iter().cloned().fold(0.0, f64::max);
        let setup = alpha_ms * (d as f64 - 1.0);
        device_dims
            .iter()
            .enumerate()
            .map(|(g, _)| {
                let wait = ready - start_ts_ms[g];
                let xfer = (self.straggler_weight * max_bytes
                    + (1.0 - self.straggler_weight) * bytes[g])
                    / bw;
                wait + setup + xfer
            })
            .collect()
    }

    /// The two-tier variant of [`CommParams::costs_ms`]: device `g`'s link
    /// runs at `bw_scales[g] ×` the collective's effective bandwidth (a
    /// device whose peers are mostly on other nodes has a small scale — see
    /// [`crate::DevicePool::bw_scale_of`]). The straggler term is gated by
    /// the slowest *transfer* (bytes over the device's own bandwidth), not
    /// the largest byte count: on a two-tier network a device can move
    /// fewer bytes yet still be the one everyone waits for.
    ///
    /// This is a separate code path from the uniform law on purpose:
    /// `(sw·max_bytes + (1-sw)·bytes_g) / bw` and
    /// `sw·(max_bytes/bw) + (1-sw)·(bytes_g/bw)` differ in the last ulp,
    /// and the uniform path's bits are pinned by golden fixtures.
    fn costs_ms_tiered(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        bw_scales: &[f64],
        batch_size: u32,
        alpha_ms: f64,
        bw_scale: f64,
    ) -> Vec<f64> {
        let d = device_dims.len();
        assert_eq!(
            d,
            start_ts_ms.len(),
            "device_dims and start_ts_ms must have the same length"
        );
        assert_eq!(
            d,
            bw_scales.len(),
            "device_dims and bw_scales must have the same length"
        );
        if d == 0 {
            return Vec::new();
        }
        if d == 1 {
            return vec![0.0];
        }
        let ready = start_ts_ms.iter().cloned().fold(f64::MIN, f64::max);
        let bw = self.effective_bw_bytes_per_ms(d) * bw_scale;
        let xfer_ms: Vec<f64> = device_dims
            .iter()
            .zip(bw_scales)
            .map(|(&dim, &s)| self.bytes_for_device(dim, batch_size, d) / (bw * s))
            .collect();
        let max_xfer = xfer_ms.iter().cloned().fold(0.0, f64::max);
        let setup = alpha_ms * (d as f64 - 1.0);
        xfer_ms
            .iter()
            .enumerate()
            .map(|(g, &t)| {
                let wait = ready - start_ts_ms[g];
                wait + setup + self.straggler_weight * max_xfer + (1.0 - self.straggler_weight) * t
            })
            .collect()
    }

    /// Per-GPU forward all-to-all latency on a two-tier network (see
    /// [`CommParams::costs_ms_tiered`] for the law).
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn forward_costs_ms_tiered(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        bw_scales: &[f64],
        batch_size: u32,
    ) -> Vec<f64> {
        self.costs_ms_tiered(
            device_dims,
            start_ts_ms,
            bw_scales,
            batch_size,
            self.alpha_ms,
            1.0,
        )
    }

    /// Per-GPU backward all-to-all latency on a two-tier network.
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn backward_costs_ms_tiered(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        bw_scales: &[f64],
        batch_size: u32,
    ) -> Vec<f64> {
        self.costs_ms_tiered(
            device_dims,
            start_ts_ms,
            bw_scales,
            batch_size,
            self.bwd_alpha_ms,
            self.bwd_bw_scale,
        )
    }

    /// Noisy "measured" two-tier forward and backward latencies, median
    /// over `repeats` runs. The noise stream folds the bandwidth scales in
    /// so distinct topologies draw distinct noise.
    pub fn measure_costs_ms_tiered(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        bw_scales: &[f64],
        batch_size: u32,
        noise: &NoiseModel,
        repeats: u32,
    ) -> CommCosts {
        let stream = comm_stream(device_dims, start_ts_ms) ^ comm_stream(bw_scales, &[]);
        let fwd = self
            .forward_costs_ms_tiered(device_dims, start_ts_ms, bw_scales, batch_size)
            .into_iter()
            .enumerate()
            .map(|(g, c)| noise.median_measurement(c, repeats, stream ^ (g as u64)))
            .collect();
        let bwd = self
            .backward_costs_ms_tiered(device_dims, start_ts_ms, bw_scales, batch_size)
            .into_iter()
            .enumerate()
            .map(|(g, c)| {
                noise.median_measurement(c, repeats, stream ^ (g as u64) ^ 0x8000_0000_0000_0000)
            })
            .collect();
        CommCosts { fwd, bwd }
    }

    /// Per-GPU forward all-to-all latency in ms, as observed locally by each
    /// GPU (wait-for-stragglers + setup + transfer).
    ///
    /// # Panics
    ///
    /// Panics if `device_dims` and `start_ts_ms` have different lengths.
    pub fn forward_costs_ms(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        batch_size: u32,
    ) -> Vec<f64> {
        self.costs_ms(device_dims, start_ts_ms, batch_size, self.alpha_ms, 1.0)
    }

    /// Per-GPU backward all-to-all latency in ms.
    ///
    /// # Panics
    ///
    /// Panics if `device_dims` and `start_ts_ms` have different lengths.
    pub fn backward_costs_ms(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        batch_size: u32,
    ) -> Vec<f64> {
        self.costs_ms(
            device_dims,
            start_ts_ms,
            batch_size,
            self.bwd_alpha_ms,
            self.bwd_bw_scale,
        )
    }

    /// Noisy "measured" forward and backward per-GPU latencies, median over
    /// `repeats` runs.
    pub fn measure_costs_ms(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        batch_size: u32,
        noise: &NoiseModel,
        repeats: u32,
    ) -> CommCosts {
        let stream = comm_stream(device_dims, start_ts_ms);
        let fwd = self
            .forward_costs_ms(device_dims, start_ts_ms, batch_size)
            .into_iter()
            .enumerate()
            .map(|(g, c)| noise.median_measurement(c, repeats, stream ^ (g as u64)))
            .collect();
        let bwd = self
            .backward_costs_ms(device_dims, start_ts_ms, batch_size)
            .into_iter()
            .enumerate()
            .map(|(g, c)| {
                noise.median_measurement(c, repeats, stream ^ (g as u64) ^ 0x8000_0000_0000_0000)
            })
            .collect();
        CommCosts { fwd, bwd }
    }
}

impl Default for CommParams {
    fn default() -> Self {
        Self::pcie_server()
    }
}

/// Per-GPU forward and backward all-to-all latencies for one placement.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CommCosts {
    /// Forward all-to-all latency per GPU, ms.
    pub fwd: Vec<f64>,
    /// Backward all-to-all latency per GPU, ms.
    pub bwd: Vec<f64>,
}

impl CommCosts {
    /// Max forward latency across GPUs (the bottleneck the paper balances).
    pub fn max_fwd_ms(&self) -> f64 {
        self.fwd.iter().cloned().fold(0.0, f64::max)
    }

    /// Max backward latency across GPUs.
    pub fn max_bwd_ms(&self) -> f64 {
        self.bwd.iter().cloned().fold(0.0, f64::max)
    }
}

fn comm_stream(device_dims: &[f64], starts: &[f64]) -> u64 {
    let mut h: u64 = 0x811c_9dc5;
    for v in device_dims.iter().chain(starts) {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn observation_3_max_cost_grows_with_max_device_dim() {
        let p = CommParams::pcie_server();
        // Keep total dims constant, increase imbalance → max device dim grows.
        let balanced = p.forward_costs_ms(&[300.0, 300.0, 300.0, 300.0], &[0.0; 4], 65_536);
        let skewed = p.forward_costs_ms(&[600.0, 200.0, 200.0, 200.0], &[0.0; 4], 65_536);
        let very_skewed = p.forward_costs_ms(&[900.0, 100.0, 100.0, 100.0], &[0.0; 4], 65_536);
        let max = |v: &Vec<f64>| v.iter().cloned().fold(0.0, f64::max);
        assert!(max(&balanced) < max(&skewed));
        assert!(max(&skewed) < max(&very_skewed));
    }

    #[test]
    fn early_starters_pay_the_wait() {
        let p = CommParams::pcie_server();
        let costs = p.forward_costs_ms(&[300.0; 4], &[0.0, 5.0, 0.0, 0.0], 65_536);
        // GPU 1 started 5 ms late; the others wait 5 ms longer.
        assert!((costs[0] - costs[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn single_gpu_has_zero_comm() {
        let p = CommParams::pcie_server();
        assert_eq!(p.forward_costs_ms(&[500.0], &[0.0], 65_536), vec![0.0]);
    }

    #[test]
    fn empty_cluster_yields_empty_costs() {
        let p = CommParams::pcie_server();
        assert!(p.forward_costs_ms(&[], &[], 65_536).is_empty());
    }

    #[test]
    fn backward_is_slower_than_forward() {
        let p = CommParams::pcie_server();
        let dims = [300.0, 350.0, 280.0, 320.0];
        let fwd = p.forward_costs_ms(&dims, &[0.0; 4], 65_536);
        let bwd = p.backward_costs_ms(&dims, &[0.0; 4], 65_536);
        for g in 0..4 {
            assert!(bwd[g] > fwd[g]);
        }
    }

    #[test]
    fn congestion_slows_larger_collectives() {
        let p = CommParams::pcie_server();
        assert!(p.effective_bw_bytes_per_ms(8) < p.effective_bw_bytes_per_ms(4));
        assert!(p.effective_bw_bytes_per_ms(4) < p.effective_bw_bytes_per_ms(2));
    }

    #[test]
    fn calibration_lands_in_paper_range() {
        // A 4-GPU placement with device dims around 350 should have a
        // forward all-to-all of a few ms.
        let p = CommParams::pcie_server();
        let costs = p.forward_costs_ms(&[350.0; 4], &[0.0; 4], 65_536);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1.0 && max < 20.0, "max fwd comm {max} out of range");
    }

    #[test]
    fn measured_costs_deterministic() {
        let p = CommParams::pcie_server();
        let noise = NoiseModel::new(1, 0.02);
        let dims = [300.0, 400.0];
        let a = p.measure_costs_ms(&dims, &[0.0, 1.0], 65_536, &noise, 11);
        let b = p.measure_costs_ms(&dims, &[0.0, 1.0], 65_536, &noise, 11);
        assert_eq!(a, b);
        assert_eq!(a.fwd.len(), 2);
        assert_eq!(a.bwd.len(), 2);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let p = CommParams::pcie_server();
        let _ = p.forward_costs_ms(&[1.0, 2.0], &[0.0], 65_536);
    }

    #[test]
    fn tiered_with_unit_scales_matches_uniform_to_an_ulp() {
        let p = CommParams::pcie_server();
        let dims = [300.0, 450.0, 280.0, 320.0];
        let starts = [0.0, 1.5, 0.2, 0.0];
        let uniform = p.forward_costs_ms(&dims, &starts, 65_536);
        let tiered = p.forward_costs_ms_tiered(&dims, &starts, &[1.0; 4], 65_536);
        for (a, b) in uniform.iter().zip(&tiered) {
            assert!((a - b).abs() < 1e-9, "uniform {a} vs tiered {b}");
        }
    }

    #[test]
    fn slow_links_raise_everyones_latency() {
        let p = CommParams::pcie_server();
        let dims = [300.0; 4];
        let flat = p.forward_costs_ms_tiered(&dims, &[0.0; 4], &[1.0; 4], 65_536);
        // Devices 2 and 3 sit behind a 4x slower inter-node link.
        let tiered = p.forward_costs_ms_tiered(&dims, &[0.0; 4], &[1.0, 1.0, 0.25, 0.25], 65_536);
        // The slow devices pay their own transfer; the fast devices pay the
        // straggler share of it.
        for g in 0..4 {
            assert!(
                tiered[g] > flat[g],
                "device {g}: {} !> {}",
                tiered[g],
                flat[g]
            );
        }
        assert!(tiered[2] > tiered[0]);
    }

    #[test]
    fn a_small_shard_on_a_slow_link_can_still_be_the_straggler() {
        let p = CommParams::pcie_server();
        // Device 3 moves a third of the bytes over a tenth of the bandwidth:
        // its transfer dominates the collective.
        let dims = [600.0, 600.0, 600.0, 200.0];
        let costs = p.forward_costs_ms_tiered(&dims, &[0.0; 4], &[1.0, 1.0, 1.0, 0.1], 65_536);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max.to_bits(), costs[3].to_bits());
    }

    #[test]
    fn tiered_measurements_are_deterministic() {
        let p = CommParams::pcie_server();
        let noise = NoiseModel::new(3, 0.02);
        let dims = [300.0, 400.0];
        let scales = [1.0, 0.5];
        let a = p.measure_costs_ms_tiered(&dims, &[0.0, 1.0], &scales, 65_536, &noise, 11);
        let b = p.measure_costs_ms_tiered(&dims, &[0.0, 1.0], &scales, 65_536, &noise, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn rdma_is_faster_than_pcie() {
        let pcie = CommParams::pcie_server();
        let rdma = CommParams::rdma_cluster();
        let dims = [300.0; 8];
        let max = |v: Vec<f64>| v.into_iter().fold(0.0, f64::max);
        assert!(
            max(rdma.forward_costs_ms(&dims, &[0.0; 8], 65_536))
                < max(pcie.forward_costs_ms(&dims, &[0.0; 8], 65_536))
        );
    }

    proptest! {
        #[test]
        fn costs_finite_nonnegative(
            dims in proptest::collection::vec(0.0f64..4096.0, 2..16),
            starts_raw in proptest::collection::vec(0.0f64..20.0, 2..16),
        ) {
            let d = dims.len().min(starts_raw.len());
            let p = CommParams::pcie_server();
            let costs = p.forward_costs_ms(&dims[..d], &starts_raw[..d], 65_536);
            for c in costs {
                prop_assert!(c.is_finite());
                prop_assert!(c >= 0.0);
            }
        }

        #[test]
        fn adding_dim_to_max_device_never_decreases_max_cost(
            base in 1.0f64..1000.0,
            extra in 0.0f64..1000.0,
        ) {
            let p = CommParams::pcie_server();
            let max = |v: Vec<f64>| v.into_iter().fold(0.0, f64::max);
            let before = max(p.forward_costs_ms(&[base + 1.0, base, base, base], &[0.0; 4], 65_536));
            let after = max(p.forward_costs_ms(&[base + 1.0 + extra, base, base, base], &[0.0; 4], 65_536));
            prop_assert!(after >= before);
        }
    }
}
