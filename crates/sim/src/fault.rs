//! Deterministic fault injection for the ground-truth simulator.
//!
//! Real sharding systems do not run on the pristine clusters that cost
//! models are calibrated against: individual GPUs throttle (stragglers),
//! all-to-all links degrade, memory is shared with other jobs, and cost
//! measurements occasionally fail outright. This module injects those
//! conditions into [`Cluster`] evaluations in a fully seeded, reproducible
//! way so that the planner's degradation behaviour can be tested
//! bit-for-bit.
//!
//! A [`FaultPlan`] is a composable set of [`Fault`]s plus a seed:
//!
//! * [`Fault::Straggler`] — one device's kernels run `slowdown`× slower,
//! * [`Fault::DegradedLinks`] — the all-to-all bandwidth is cut to a
//!   fraction of its calibrated value,
//! * [`Fault::MemoryPressure`] — one device only has a fraction of its
//!   embedding-memory budget available,
//! * [`Fault::TransientFailures`] — measured evaluations fail with some
//!   probability (deterministic in the evaluation seed), modelling flaky
//!   profiling runs,
//! * [`Fault::Partition`] / [`Fault::NodeCrash`] — *control-plane* faults
//!   consumed by the `nshard-serve` replication chaos harness; they never
//!   perturb plan evaluation.
//!
//! [`FaultyCluster`] bundles a [`Cluster`] with a [`FaultPlan`] and exposes
//! the same evaluation API, so everything written against `Cluster` can be
//! re-run under faults.
//!
//! # Example
//!
//! ```
//! use nshard_sim::{Cluster, Fault, FaultPlan, FaultyCluster, GpuSpec, TableProfile};
//!
//! let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536);
//! let faults = FaultPlan::new(7)
//!     .with_fault(Fault::Straggler { device: 0, slowdown: 2.0 })
//!     .with_fault(Fault::DegradedLinks { bandwidth_scale: 0.5 });
//! let faulty = FaultyCluster::new(cluster.clone(), faults);
//!
//! let t = |d| TableProfile::new(d, 1 << 20, 12.0, 0.3, 1.0);
//! let plan = vec![vec![t(64)], vec![t(64)]];
//! let clean = cluster.evaluate_exact(&plan)?;
//! let degraded = faulty.evaluate_exact(&plan)?;
//! assert!(degraded.max_total_ms() > clean.max_total_ms());
//! # Ok::<(), nshard_sim::SimError>(())
//! ```

use crate::cluster::{Cluster, PlanCosts};
use crate::error::SimError;
use crate::profile::TableProfile;

/// One injected fault condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Device `device` computes `slowdown`× slower than the spec
    /// (thermal throttling, a co-located job, a failing board).
    Straggler {
        /// Index of the slow device.
        device: usize,
        /// Kernel-time multiplier, `>= 1.0`.
        slowdown: f64,
    },
    /// The all-to-all fabric delivers only `bandwidth_scale` of its
    /// calibrated bandwidth (congestion from another tenant, a downgraded
    /// link).
    DegradedLinks {
        /// Multiplier on the calibrated bandwidth, in `(0, 1]`.
        bandwidth_scale: f64,
    },
    /// Device `device` only has `usable_fraction` of its embedding-memory
    /// budget available (fragmentation, memory shared with other model
    /// parts).
    MemoryPressure {
        /// Index of the constrained device.
        device: usize,
        /// Fraction of the budget still usable, in `(0, 1]`.
        usable_fraction: f64,
    },
    /// Each measured evaluation fails with probability `rate`
    /// (deterministically in the evaluation seed), surfacing as
    /// [`SimError::TransientFailure`].
    TransientFailures {
        /// Per-evaluation failure probability, in `[0, 1)`.
        rate: f64,
    },
    /// The network between **control-plane nodes** `a` and `b` is cut
    /// (both directions). Partitions model the serving tier's replication
    /// fabric, not the training cluster's all-to-all: plan *evaluation*
    /// ignores them, while the `nshard-serve` replication harness consults
    /// [`FaultPlan::is_partitioned`] before delivering any message.
    Partition {
        /// One endpoint of the severed link (node index).
        a: usize,
        /// The other endpoint (node index); must differ from `a`.
        b: usize,
    },
    /// Control-plane node `node` has crashed: it answers nothing and sends
    /// nothing. Like [`Fault::Partition`], this is consumed by the
    /// replication chaos harness ([`FaultPlan::is_crashed`]) and ignored by
    /// plan evaluation — it models a dead daemon, not a dead GPU.
    NodeCrash {
        /// Index of the crashed node.
        node: usize,
    },
    /// Every device in **training-cluster node** `node` computes
    /// `slowdown`× slower (a whole host throttling: shared power cap,
    /// firmware regression, a bad rack). Which devices sit in which node
    /// comes from the cluster's [`crate::DevicePool`]; on a cluster with
    /// no pool every device is node 0.
    SlowNodeClass {
        /// Index of the slow training-cluster node.
        node: usize,
        /// Kernel-time multiplier for every device of the node, `>= 1.0`.
        slowdown: f64,
    },
    /// The links of **training-cluster node** `node` to the rest of the
    /// fabric degrade to `bandwidth_scale` of their calibrated bandwidth —
    /// an *asymmetric* cut: only devices in that node see it, unlike
    /// [`Fault::DegradedLinks`] which slows the whole collective.
    NodeLinkDegradation {
        /// Index of the training-cluster node behind the bad links.
        node: usize,
        /// Multiplier on the node's link bandwidth, in `(0, 1]`.
        bandwidth_scale: f64,
    },
}

/// A seeded, composable set of injected faults.
///
/// The seed only drives *stochastic* faults (transient failures); the
/// deterministic faults (stragglers, link degradation, memory pressure)
/// apply identically to every evaluation. An empty plan behaves exactly
/// like no fault layer at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty fault plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the fault's parameters are out of range: straggler
    /// `slowdown < 1.0`, `bandwidth_scale`/`usable_fraction` outside
    /// `(0, 1]`, transient `rate` outside `[0, 1)`, or any parameter
    /// non-finite.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        match &fault {
            Fault::Straggler { slowdown, .. } => {
                assert!(
                    slowdown.is_finite() && *slowdown >= 1.0,
                    "straggler slowdown must be finite and >= 1.0, got {slowdown}"
                );
            }
            Fault::DegradedLinks { bandwidth_scale } => {
                assert!(
                    bandwidth_scale.is_finite()
                        && *bandwidth_scale > 0.0
                        && *bandwidth_scale <= 1.0,
                    "bandwidth scale must be in (0, 1], got {bandwidth_scale}"
                );
            }
            Fault::MemoryPressure {
                usable_fraction, ..
            } => {
                assert!(
                    usable_fraction.is_finite()
                        && *usable_fraction > 0.0
                        && *usable_fraction <= 1.0,
                    "usable memory fraction must be in (0, 1], got {usable_fraction}"
                );
            }
            Fault::TransientFailures { rate } => {
                assert!(
                    rate.is_finite() && (0.0..1.0).contains(rate),
                    "transient failure rate must be in [0, 1), got {rate}"
                );
            }
            Fault::Partition { a, b } => {
                assert!(
                    a != b,
                    "a partition needs two distinct nodes, got {a} twice"
                );
            }
            Fault::NodeCrash { .. } => {}
            Fault::SlowNodeClass { slowdown, .. } => {
                assert!(
                    slowdown.is_finite() && *slowdown >= 1.0,
                    "node-class slowdown must be finite and >= 1.0, got {slowdown}"
                );
            }
            Fault::NodeLinkDegradation {
                bandwidth_scale, ..
            } => {
                assert!(
                    bandwidth_scale.is_finite()
                        && *bandwidth_scale > 0.0
                        && *bandwidth_scale <= 1.0,
                    "node link bandwidth scale must be in (0, 1], got {bandwidth_scale}"
                );
            }
        }
        self.faults.push(fault);
        self
    }

    /// The fault seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Combined kernel-time multiplier for `device` (product of all
    /// matching stragglers; `1.0` when the device is healthy).
    pub fn compute_slowdown(&self, device: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Straggler {
                    device: d,
                    slowdown,
                } if *d == device => Some(*slowdown),
                _ => None,
            })
            .product()
    }

    /// Combined bandwidth multiplier across all link degradations
    /// (`1.0` when the fabric is healthy).
    pub fn bandwidth_scale(&self) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DegradedLinks { bandwidth_scale } => Some(*bandwidth_scale),
                _ => None,
            })
            .product()
    }

    /// Effective memory budget of `device` given a nominal `budget_bytes`
    /// (product of all matching memory-pressure fractions).
    pub fn effective_budget_bytes(&self, device: usize, budget_bytes: u64) -> u64 {
        let fraction: f64 = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::MemoryPressure {
                    device: d,
                    usable_fraction,
                } if *d == device => Some(*usable_fraction),
                _ => None,
            })
            .product();
        (budget_bytes as f64 * fraction).floor() as u64
    }

    /// Combined per-evaluation transient failure probability.
    pub fn transient_rate(&self) -> f64 {
        let survive: f64 = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::TransientFailures { rate } => Some(1.0 - *rate),
                _ => None,
            })
            .product();
        1.0 - survive
    }

    /// Decides (deterministically in `eval_seed`) whether a measured
    /// evaluation fails transiently, and if so on which device the failure
    /// is attributed. Returns `None` when the evaluation proceeds.
    pub fn transient_failure(&self, eval_seed: u64, num_devices: usize) -> Option<usize> {
        let rate = self.transient_rate();
        if rate <= 0.0 || num_devices == 0 {
            return None;
        }
        let h = splitmix64(self.seed ^ eval_seed.rotate_left(17) ^ 0xFA17_FA17_FA17_FA17);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < rate {
            Some((splitmix64(h) % num_devices as u64) as usize)
        } else {
            None
        }
    }

    /// `true` when a [`Fault::Partition`] severs the link between
    /// control-plane nodes `a` and `b` (in either orientation).
    pub fn is_partitioned(&self, a: usize, b: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Partition { a: x, b: y }
                if (*x == a && *y == b) || (*x == b && *y == a))
        })
    }

    /// `true` when a [`Fault::NodeCrash`] has taken control-plane
    /// `node` down.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::NodeCrash { node: n } if *n == node))
    }

    /// Combined kernel-time multiplier for every device of training-cluster
    /// `node` (product of all matching [`Fault::SlowNodeClass`] faults;
    /// `1.0` when the node is healthy).
    pub fn node_slowdown(&self, node: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SlowNodeClass { node: n, slowdown } if *n == node => Some(*slowdown),
                _ => None,
            })
            .product()
    }

    /// Combined link-bandwidth multiplier for training-cluster `node`
    /// (product of all matching [`Fault::NodeLinkDegradation`] faults;
    /// `1.0` when the node's links are healthy).
    pub fn node_link_scale(&self, node: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::NodeLinkDegradation {
                    node: n,
                    bandwidth_scale,
                } if *n == node => Some(*bandwidth_scale),
                _ => None,
            })
            .product()
    }

    /// `true` when any [`Fault::NodeLinkDegradation`] is injected — the
    /// signal for [`Cluster`] to switch to the per-device tiered
    /// communication law even on an otherwise flat fabric.
    pub fn has_node_link_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::NodeLinkDegradation { .. }))
    }

    /// Samples a random fault scenario for chaos testing: up to two
    /// stragglers, an optional link degradation, optional memory pressure
    /// and an optional transient failure rate, all drawn deterministically
    /// from `seed`.
    pub fn sampled(seed: u64, num_devices: usize) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        assert!(
            num_devices > 0,
            "a fault scenario needs at least one device"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut plan = Self::new(seed);
        for _ in 0..rng.random_range(0..=2u32) {
            plan = plan.with_fault(Fault::Straggler {
                device: rng.random_range(0..num_devices),
                slowdown: rng.random_range(1.2..4.0),
            });
        }
        if rng.random_bool(0.5) {
            plan = plan.with_fault(Fault::DegradedLinks {
                bandwidth_scale: rng.random_range(0.3..1.0),
            });
        }
        if rng.random_bool(0.5) {
            plan = plan.with_fault(Fault::MemoryPressure {
                device: rng.random_range(0..num_devices),
                usable_fraction: rng.random_range(0.5..1.0),
            });
        }
        if rng.random_bool(0.4) {
            plan = plan.with_fault(Fault::TransientFailures {
                rate: rng.random_range(0.05..0.35),
            });
        }
        plan
    }
}

/// A [`Cluster`] evaluated under a [`FaultPlan`]: same API, degraded
/// behaviour. See the [module documentation](self) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyCluster {
    cluster: Cluster,
    faults: FaultPlan,
}

impl FaultyCluster {
    /// Bundles a cluster with a fault plan.
    pub fn new(cluster: Cluster, faults: FaultPlan) -> Self {
        Self { cluster, faults }
    }

    /// The underlying (healthy) cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The injected faults.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Per-device *effective* memory budgets under memory pressure,
    /// starting from each device's own budget (heterogeneous pools keep
    /// their per-device profiles).
    pub fn effective_budgets(&self) -> Vec<u64> {
        (0..self.cluster.num_devices())
            .map(|d| {
                self.faults
                    .effective_budget_bytes(d, self.cluster.budget_of(d))
            })
            .collect()
    }

    /// Validates `assignment` against the *effective* per-device budgets.
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`]; budgets reflect memory pressure.
    pub fn check_memory(&self, assignment: &[Vec<TableProfile>]) -> Result<(), SimError> {
        self.cluster
            .check_memory_with_faults(assignment, &self.faults)
    }

    /// Evaluates a plan with measurement noise under the injected faults.
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`], plus [`SimError::TransientFailure`]
    /// when a [`Fault::TransientFailures`] fires for this `seed`.
    pub fn evaluate(
        &self,
        assignment: &[Vec<TableProfile>],
        seed: u64,
    ) -> Result<PlanCosts, SimError> {
        self.cluster
            .evaluate_with_faults(assignment, seed, &self.faults)
    }

    /// Evaluates a plan with the exact analytic law under the injected
    /// faults (transient failures never fire: they model *measurement*
    /// flakiness).
    ///
    /// # Errors
    ///
    /// See [`Cluster::check_memory`].
    pub fn evaluate_exact(&self, assignment: &[Vec<TableProfile>]) -> Result<PlanCosts, SimError> {
        self.cluster
            .evaluate_exact_with_faults(assignment, &self.faults)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;

    fn t(dim: u32) -> TableProfile {
        TableProfile::new(dim, 1 << 20, 12.0, 0.3, 1.05)
    }

    fn faulty(faults: FaultPlan) -> FaultyCluster {
        FaultyCluster::new(Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536), faults)
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let plan = vec![vec![t(64)], vec![t(32)]];
        let clean = Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536);
        let f = faulty(FaultPlan::new(0));
        assert_eq!(clean.evaluate_exact(&plan), f.evaluate_exact(&plan));
        assert_eq!(
            clean.evaluate(&plan, 3).unwrap(),
            f.evaluate(&plan, 3).unwrap()
        );
    }

    #[test]
    fn straggler_slows_its_device_and_raises_total() {
        let plan = vec![vec![t(64)], vec![t(64)]];
        let clean = faulty(FaultPlan::new(0)).evaluate_exact(&plan).unwrap();
        let slow = faulty(FaultPlan::new(0).with_fault(Fault::Straggler {
            device: 0,
            slowdown: 3.0,
        }))
        .evaluate_exact(&plan)
        .unwrap();
        assert!(slow.devices()[0].compute_fwd_ms > clean.devices()[0].compute_fwd_ms * 2.5);
        // Device 1 keeps its compute but waits longer in the collective.
        assert!(
            (slow.devices()[1].compute_fwd_ms - clean.devices()[1].compute_fwd_ms).abs() < 1e-12
        );
        assert!(slow.devices()[1].comm_fwd_ms > clean.devices()[1].comm_fwd_ms);
        assert!(slow.max_total_ms() > clean.max_total_ms());
    }

    #[test]
    fn degraded_links_raise_comm_costs_only() {
        let plan = vec![vec![t(64)], vec![t(64)]];
        let clean = faulty(FaultPlan::new(0)).evaluate_exact(&plan).unwrap();
        let cut = faulty(FaultPlan::new(0).with_fault(Fault::DegradedLinks {
            bandwidth_scale: 0.25,
        }))
        .evaluate_exact(&plan)
        .unwrap();
        for (c, k) in cut.devices().iter().zip(clean.devices()) {
            assert!((c.compute_fwd_ms - k.compute_fwd_ms).abs() < 1e-12);
            assert!(c.comm_fwd_ms > k.comm_fwd_ms);
            assert!(c.comm_bwd_ms > k.comm_bwd_ms);
        }
    }

    #[test]
    fn memory_pressure_shrinks_one_budget() {
        let f = faulty(FaultPlan::new(0).with_fault(Fault::MemoryPressure {
            device: 1,
            usable_fraction: 0.01,
        }));
        let budgets = f.effective_budgets();
        assert_eq!(budgets[0], f.cluster().spec().mem_budget_bytes());
        assert!(budgets[1] < budgets[0] / 50);
        // A plan that fits the healthy budget overflows the squeezed device.
        let plan = vec![vec![t(64)], vec![t(64)]];
        assert!(f.cluster().check_memory(&plan).is_ok());
        match f.check_memory(&plan) {
            Err(SimError::OutOfMemory { device, .. }) => assert_eq!(device, 1),
            other => panic!("expected OutOfMemory on device 1, got {other:?}"),
        }
    }

    #[test]
    fn transient_failures_fire_deterministically_per_seed() {
        let faults = FaultPlan::new(11).with_fault(Fault::TransientFailures { rate: 0.5 });
        let f = faulty(faults.clone());
        let plan = vec![vec![t(64)], vec![t(32)]];
        let outcomes: Vec<bool> = (0..64).map(|s| f.evaluate(&plan, s).is_err()).collect();
        let again: Vec<bool> = (0..64).map(|s| f.evaluate(&plan, s).is_err()).collect();
        assert_eq!(outcomes, again);
        let failures = outcomes.iter().filter(|&&x| x).count();
        assert!(
            (10..55).contains(&failures),
            "rate 0.5 should fail roughly half of 64 evals, failed {failures}"
        );
        // Exact evaluation never fails transiently.
        assert!(f.evaluate_exact(&plan).is_ok());
        // The error is typed with device attribution.
        let seed = (0..64)
            .position(|s| f.evaluate(&plan, s as u64).is_err())
            .unwrap() as u64;
        match f.evaluate(&plan, seed) {
            Err(SimError::TransientFailure { device, .. }) => assert!(device < 2),
            other => panic!("expected TransientFailure, got {other:?}"),
        }
    }

    #[test]
    fn faults_compose() {
        let faults = FaultPlan::new(5)
            .with_fault(Fault::Straggler {
                device: 0,
                slowdown: 2.0,
            })
            .with_fault(Fault::Straggler {
                device: 0,
                slowdown: 1.5,
            })
            .with_fault(Fault::DegradedLinks {
                bandwidth_scale: 0.5,
            })
            .with_fault(Fault::DegradedLinks {
                bandwidth_scale: 0.5,
            });
        assert!((faults.compute_slowdown(0) - 3.0).abs() < 1e-12);
        assert!((faults.compute_slowdown(1) - 1.0).abs() < 1e-12);
        assert!((faults.bandwidth_scale() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampled_scenarios_are_deterministic_and_valid() {
        for seed in 0..50 {
            let a = FaultPlan::sampled(seed, 4);
            let b = FaultPlan::sampled(seed, 4);
            assert_eq!(a, b);
            for fault in a.faults() {
                match fault {
                    Fault::Straggler { device, slowdown } => {
                        assert!(*device < 4 && *slowdown >= 1.0);
                    }
                    Fault::DegradedLinks { bandwidth_scale } => {
                        assert!(*bandwidth_scale > 0.0 && *bandwidth_scale <= 1.0);
                    }
                    Fault::MemoryPressure {
                        device,
                        usable_fraction,
                    } => {
                        assert!(*device < 4 && *usable_fraction > 0.0 && *usable_fraction <= 1.0);
                    }
                    Fault::TransientFailures { rate } => {
                        assert!((0.0..1.0).contains(rate));
                    }
                    Fault::Partition { a, b } => {
                        panic!("sampled() never draws control-plane faults, got Partition {a}-{b}")
                    }
                    Fault::NodeCrash { node } => {
                        panic!("sampled() never draws control-plane faults, got NodeCrash {node}")
                    }
                    Fault::SlowNodeClass { node, .. } => {
                        panic!("sampled() never draws node-class faults, got SlowNodeClass {node}")
                    }
                    Fault::NodeLinkDegradation { node, .. } => panic!(
                        "sampled() never draws node-class faults, got NodeLinkDegradation {node}"
                    ),
                }
            }
        }
    }

    #[test]
    fn control_plane_faults_are_queryable_and_inert_for_evaluation() {
        let faults = FaultPlan::new(0)
            .with_fault(Fault::Partition { a: 0, b: 2 })
            .with_fault(Fault::NodeCrash { node: 1 });
        assert!(faults.is_partitioned(0, 2));
        assert!(faults.is_partitioned(2, 0), "partitions are symmetric");
        assert!(!faults.is_partitioned(0, 1));
        assert!(faults.is_crashed(1));
        assert!(!faults.is_crashed(0));
        // Evaluation semantics are untouched: these faults live in the
        // control plane, not the training cluster.
        let plan = vec![vec![t(64)], vec![t(32)]];
        let clean = Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536);
        assert_eq!(
            clean.evaluate_exact(&plan),
            faulty(faults).evaluate_exact(&plan)
        );
    }

    #[test]
    fn slow_node_class_slows_every_device_of_that_node() {
        use crate::devices::DevicePool;
        let budget = GpuSpec::rtx_2080_ti().mem_budget_bytes();
        // Four otherwise-identical devices split across two nodes on a flat
        // network; the fault hits node 1 (devices 2 and 3) only.
        let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 4, 65_536)
            .with_devices(DevicePool::two_tier(2, budget, 2, budget, 1.0, 1.0));
        let plan = vec![vec![t(64)], vec![t(64)], vec![t(64)], vec![t(64)]];
        let clean = cluster.evaluate_exact(&plan).unwrap();
        let slow = FaultyCluster::new(
            cluster,
            FaultPlan::new(0).with_fault(Fault::SlowNodeClass {
                node: 1,
                slowdown: 2.0,
            }),
        )
        .evaluate_exact(&plan)
        .unwrap();
        for g in 0..2 {
            assert_eq!(
                slow.devices()[g].compute_fwd_ms.to_bits(),
                clean.devices()[g].compute_fwd_ms.to_bits(),
                "node-0 device {g} must keep its kernel time bit-for-bit"
            );
        }
        for g in 2..4 {
            assert!(
                (slow.devices()[g].compute_fwd_ms - 2.0 * clean.devices()[g].compute_fwd_ms).abs()
                    < 1e-12,
                "node-1 device {g} must run exactly 2x slower"
            );
        }
        assert!(slow.max_total_ms() > clean.max_total_ms());
    }

    #[test]
    fn node_link_degradation_is_asymmetric() {
        use crate::devices::DevicePool;
        let budget = GpuSpec::rtx_2080_ti().mem_budget_bytes();
        let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 4, 65_536)
            .with_devices(DevicePool::two_tier(2, budget, 2, budget, 1.0, 1.0));
        let plan = vec![vec![t(64)], vec![t(64)], vec![t(64)], vec![t(64)]];
        let clean = cluster.evaluate_exact(&plan).unwrap();
        let faults = FaultPlan::new(0).with_fault(Fault::NodeLinkDegradation {
            node: 1,
            bandwidth_scale: 0.25,
        });
        assert!(faults.has_node_link_faults());
        assert!((faults.node_link_scale(1) - 0.25).abs() < 1e-12);
        assert!((faults.node_link_scale(0) - 1.0).abs() < 1e-12);
        let cut = FaultyCluster::new(cluster, faults)
            .evaluate_exact(&plan)
            .unwrap();
        // Compute untouched everywhere; node-1 devices move their bytes on
        // a 4x slower link, so their own transfers dominate the collective
        // and every participant's comm rises (the straggler gates the
        // all-to-all).
        for (c, k) in cut.devices().iter().zip(clean.devices()) {
            assert!((c.compute_fwd_ms - k.compute_fwd_ms).abs() < 1e-12);
            assert!(c.comm_fwd_ms >= k.comm_fwd_ms);
        }
        assert!(cut.max_total_ms() > clean.max_total_ms());
    }

    #[test]
    fn node_faults_on_poolless_cluster_hit_node_zero() {
        // Without a DevicePool every device sits in node 0, so a node-0
        // link fault degrades the whole collective and a node-1 fault is
        // inert.
        let plan = vec![vec![t(64)], vec![t(32)]];
        let clean = faulty(FaultPlan::new(0)).evaluate_exact(&plan).unwrap();
        let hit = faulty(FaultPlan::new(0).with_fault(Fault::NodeLinkDegradation {
            node: 0,
            bandwidth_scale: 0.5,
        }))
        .evaluate_exact(&plan)
        .unwrap();
        assert!(hit.max_total_ms() > clean.max_total_ms());
        let inert = faulty(FaultPlan::new(0).with_fault(Fault::SlowNodeClass {
            node: 1,
            slowdown: 3.0,
        }))
        .evaluate_exact(&plan)
        .unwrap();
        assert_eq!(inert, clean);
    }

    #[test]
    fn node_faults_compose_multiplicatively() {
        let faults = FaultPlan::new(0)
            .with_fault(Fault::SlowNodeClass {
                node: 0,
                slowdown: 2.0,
            })
            .with_fault(Fault::SlowNodeClass {
                node: 0,
                slowdown: 1.5,
            })
            .with_fault(Fault::NodeLinkDegradation {
                node: 1,
                bandwidth_scale: 0.5,
            })
            .with_fault(Fault::NodeLinkDegradation {
                node: 1,
                bandwidth_scale: 0.5,
            });
        assert!((faults.node_slowdown(0) - 3.0).abs() < 1e-12);
        assert!((faults.node_slowdown(1) - 1.0).abs() < 1e-12);
        assert!((faults.node_link_scale(1) - 0.25).abs() < 1e-12);
        assert!((faults.node_link_scale(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_budgets_survive_memory_pressure() {
        use crate::devices::DevicePool;
        let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536)
            .with_devices(DevicePool::two_tier(1, 4 << 30, 1, 1 << 30, 1.0, 1.0));
        let f = FaultyCluster::new(
            cluster,
            FaultPlan::new(0).with_fault(Fault::MemoryPressure {
                device: 1,
                usable_fraction: 0.5,
            }),
        );
        let budgets = f.effective_budgets();
        assert_eq!(budgets[0], 4 << 30);
        assert_eq!(budgets[1], 512 << 20);
    }

    #[test]
    #[should_panic(expected = "node-class slowdown must be finite and >= 1.0")]
    fn invalid_node_slowdown_rejected() {
        let _ = FaultPlan::new(0).with_fault(Fault::SlowNodeClass {
            node: 0,
            slowdown: 0.9,
        });
    }

    #[test]
    #[should_panic(expected = "node link bandwidth scale must be in (0, 1]")]
    fn invalid_node_link_scale_rejected() {
        let _ = FaultPlan::new(0).with_fault(Fault::NodeLinkDegradation {
            node: 0,
            bandwidth_scale: 1.5,
        });
    }

    #[test]
    #[should_panic(expected = "partition needs two distinct nodes")]
    fn degenerate_partition_rejected() {
        let _ = FaultPlan::new(0).with_fault(Fault::Partition { a: 3, b: 3 });
    }

    #[test]
    #[should_panic(expected = "slowdown must be finite and >= 1.0")]
    fn invalid_straggler_rejected() {
        let _ = FaultPlan::new(0).with_fault(Fault::Straggler {
            device: 0,
            slowdown: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "bandwidth scale must be in (0, 1]")]
    fn invalid_bandwidth_rejected() {
        let _ = FaultPlan::new(0).with_fault(Fault::DegradedLinks {
            bandwidth_scale: 0.0,
        });
    }
}
