//! Numeric description of an embedding table shard as seen by the simulator.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Embedding-table dimensions must be divisible by this lane width, matching
/// the FBGEMM constraint cited in the paper ("the dimension must be dividable
/// by 4").
pub const DIM_LANE: u32 = 4;

/// Bytes per embedding element (fp32).
pub const BYTES_PER_ELEM: u64 = 4;

/// The simulator-facing description of one embedding table (or column-wise
/// shard of a table).
///
/// This deliberately contains only the quantities the paper identifies as
/// cost-relevant (§2.1): the **dimension** (columns), the **hash size**
/// (rows), the **mean pooling factor** (indices per lookup), and two summary
/// statistics of the **indices distribution** — the fraction of unique
/// indices accessed in a batch and the Zipf skew of the access pattern.
///
/// Higher-level crates carry richer table metadata; they lower it to a
/// `TableProfile` before asking the simulator for a cost.
///
/// # Example
///
/// ```
/// use nshard_sim::TableProfile;
///
/// let table = TableProfile::new(64, 1 << 22, 20.0, 0.25, 1.05);
/// assert_eq!(table.dim(), 64);
/// // fp32 storage: rows * cols * 4 bytes
/// assert_eq!(table.memory_bytes(), (1u64 << 22) * 64 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    dim: u32,
    hash_size: u64,
    pooling_factor: f64,
    unique_frac: f64,
    zipf_alpha: f64,
    /// Fraction of the batch's all-to-all traffic this shard contributes
    /// relative to an unreplicated shard of the same dimension. `1.0` for
    /// ordinary shards; `1/R` for one of `R` replicas of a hot table, whose
    /// holders each answer only their share of the batch's lookups.
    #[serde(default = "default_comm_share")]
    comm_share: f64,
}

fn default_comm_share() -> f64 {
    1.0
}

impl TableProfile {
    /// Creates a new table profile.
    ///
    /// * `dim` — number of columns (embedding dimension).
    /// * `hash_size` — number of rows.
    /// * `pooling_factor` — mean number of indices per lookup in a batch.
    /// * `unique_frac` — fraction of the batch's indices that are unique,
    ///   clamped to `(0, 1]`. Fewer unique indices cache better.
    /// * `zipf_alpha` — skew of the index access distribution (1.0 ≈
    ///   production-like heavy tail). Clamped to be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `hash_size == 0`. Use [`TableProfile::try_new`]
    /// for fallible construction.
    pub fn new(
        dim: u32,
        hash_size: u64,
        pooling_factor: f64,
        unique_frac: f64,
        zipf_alpha: f64,
    ) -> Self {
        Self::try_new(dim, hash_size, pooling_factor, unique_frac, zipf_alpha)
            .expect("invalid table profile")
    }

    /// Fallible counterpart of [`TableProfile::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTable`] if `dim` is zero, `hash_size` is
    /// zero, or `pooling_factor` is not finite and positive.
    pub fn try_new(
        dim: u32,
        hash_size: u64,
        pooling_factor: f64,
        unique_frac: f64,
        zipf_alpha: f64,
    ) -> Result<Self, SimError> {
        if dim == 0 {
            return Err(SimError::InvalidTable {
                reason: "dimension must be positive".into(),
            });
        }
        if hash_size == 0 {
            return Err(SimError::InvalidTable {
                reason: "hash size must be positive".into(),
            });
        }
        if !(pooling_factor.is_finite() && pooling_factor > 0.0) {
            return Err(SimError::InvalidTable {
                reason: format!("pooling factor must be finite and positive, got {pooling_factor}"),
            });
        }
        Ok(Self {
            dim,
            hash_size,
            pooling_factor,
            unique_frac: unique_frac.clamp(f64::MIN_POSITIVE, 1.0),
            zipf_alpha: zipf_alpha.max(0.0),
            comm_share: 1.0,
        })
    }

    /// Returns a copy with the given communication share (builder-style),
    /// clamped to `(0, 1]`. Replicated placements use `1/R` for `R`
    /// replicas: each holder stores the full table but moves only its share
    /// of the batch's lookup results through the all-to-all.
    #[must_use]
    pub fn with_comm_share(mut self, share: f64) -> Self {
        self.comm_share = share.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Fraction of an unreplicated shard's all-to-all traffic this shard
    /// contributes (`1.0` unless replicated).
    pub fn comm_share(&self) -> f64 {
        self.comm_share
    }

    /// The shard's **communication-effective** dimension: the embedding
    /// dimension weighted by [`TableProfile::comm_share`]. This is the
    /// quantity device-dimension sums must use so replicated shards are
    /// priced for the traffic they actually move. Exactly `dim` for
    /// unreplicated shards (`x * 1.0` is a bitwise identity).
    pub fn comm_dim(&self) -> f64 {
        f64::from(self.dim) * self.comm_share
    }

    /// Embedding dimension (number of columns).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of rows in the table.
    pub fn hash_size(&self) -> u64 {
        self.hash_size
    }

    /// Mean pooling factor (indices per lookup).
    pub fn pooling_factor(&self) -> f64 {
        self.pooling_factor
    }

    /// Fraction of unique indices accessed per batch, in `(0, 1]`.
    pub fn unique_frac(&self) -> f64 {
        self.unique_frac
    }

    /// Zipf skew of the index access distribution.
    pub fn zipf_alpha(&self) -> f64 {
        self.zipf_alpha
    }

    /// Bytes of fp32 storage this table occupies on a device.
    pub fn memory_bytes(&self) -> u64 {
        self.hash_size * u64::from(self.dim) * BYTES_PER_ELEM
    }

    /// Whether the dimension satisfies the FBGEMM lane constraint.
    pub fn dim_is_legal(&self) -> bool {
        self.dim.is_multiple_of(DIM_LANE)
    }

    /// Returns the two column-wise halves of this table, mirroring the
    /// paper's column-wise sharding step: each half keeps the rows, pooling
    /// factor and indices distribution, with half the columns.
    ///
    /// Returns `None` when the table can no longer be split legally (halving
    /// would violate the [`DIM_LANE`] divisibility constraint).
    ///
    /// ```
    /// use nshard_sim::TableProfile;
    /// let t = TableProfile::new(64, 1024, 10.0, 0.5, 1.0);
    /// let (a, b) = t.split_columns().unwrap();
    /// assert_eq!(a.dim(), 32);
    /// assert_eq!(b.dim(), 32);
    /// assert_eq!(a.hash_size(), 1024);
    /// ```
    pub fn split_columns(&self) -> Option<(TableProfile, TableProfile)> {
        let half = self.dim / 2;
        if half == 0 || !half.is_multiple_of(DIM_LANE) {
            return None;
        }
        let mut a = *self;
        a.dim = half;
        let b = a;
        Some((a, b))
    }

    /// Workload-drift hook: the largest relative change of any cost-relevant
    /// workload quantity of this profile versus a `baseline` profile of the
    /// same table — pooling factor (indices per lookup), hash size (id-space
    /// growth), unique-index fraction and Zipf skew. `0.0` means the
    /// workload is unchanged; `0.5` means some quantity moved by 50% of its
    /// baseline value. The dimension is deliberately excluded: it is a
    /// *plan* property, not a traffic property.
    ///
    /// ```
    /// use nshard_sim::TableProfile;
    /// let before = TableProfile::new(64, 1 << 20, 10.0, 0.5, 1.0);
    /// let after = TableProfile::new(64, 1 << 20, 15.0, 0.5, 1.0);
    /// assert!((before.workload_delta(&before)).abs() < 1e-12);
    /// assert!((after.workload_delta(&before) - 0.5).abs() < 1e-12);
    /// ```
    pub fn workload_delta(&self, baseline: &TableProfile) -> f64 {
        let rel = |now: f64, then: f64| {
            if then == 0.0 {
                if now == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                ((now - then) / then).abs()
            }
        };
        rel(self.pooling_factor, baseline.pooling_factor)
            .max(rel(self.hash_size as f64, baseline.hash_size as f64))
            .max(rel(self.unique_frac, baseline.unique_frac))
            .max(rel(self.zipf_alpha, baseline.zipf_alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn memory_accounts_fp32() {
        let t = TableProfile::new(8, 100, 1.0, 1.0, 0.0);
        assert_eq!(t.memory_bytes(), 100 * 8 * 4);
    }

    #[test]
    fn rejects_zero_dim() {
        assert!(TableProfile::try_new(0, 10, 1.0, 0.5, 1.0).is_err());
    }

    #[test]
    fn rejects_zero_hash_size() {
        assert!(TableProfile::try_new(8, 0, 1.0, 0.5, 1.0).is_err());
    }

    #[test]
    fn rejects_bad_pooling() {
        assert!(TableProfile::try_new(8, 10, 0.0, 0.5, 1.0).is_err());
        assert!(TableProfile::try_new(8, 10, f64::NAN, 0.5, 1.0).is_err());
        assert!(TableProfile::try_new(8, 10, f64::INFINITY, 0.5, 1.0).is_err());
    }

    #[test]
    fn unique_frac_is_clamped() {
        let t = TableProfile::new(8, 10, 1.0, 7.0, 1.0);
        assert_eq!(t.unique_frac(), 1.0);
        let t = TableProfile::new(8, 10, 1.0, -1.0, 1.0);
        assert!(t.unique_frac() > 0.0);
    }

    #[test]
    fn split_halves_dim_only() {
        let t = TableProfile::new(128, 4096, 12.0, 0.3, 1.1);
        let (a, b) = t.split_columns().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.dim(), 64);
        assert_eq!(a.hash_size(), t.hash_size());
        assert_eq!(a.pooling_factor(), t.pooling_factor());
        assert_eq!(a.memory_bytes() * 2, t.memory_bytes());
    }

    #[test]
    fn split_respects_lane_constraint() {
        // dim 4 halves to 2, which violates the lane constraint.
        assert!(TableProfile::new(4, 10, 1.0, 0.5, 1.0)
            .split_columns()
            .is_none());
        // dim 8 halves to 4, which is fine.
        assert!(TableProfile::new(8, 10, 1.0, 0.5, 1.0)
            .split_columns()
            .is_some());
        // dim 12 halves to 6: not divisible by 4.
        assert!(TableProfile::new(12, 10, 1.0, 0.5, 1.0)
            .split_columns()
            .is_none());
    }

    #[test]
    fn workload_delta_tracks_largest_relative_change() {
        let base = TableProfile::new(64, 1000, 10.0, 0.5, 1.0);
        assert_eq!(base.workload_delta(&base), 0.0);
        // Rows doubled: delta 1.0 dominates the 20% pooling change.
        let drifted = TableProfile::new(64, 2000, 12.0, 0.5, 1.0);
        assert!((drifted.workload_delta(&base) - 1.0).abs() < 1e-12);
        // Dimension changes are plan properties, not workload drift.
        let resharded = TableProfile::new(32, 1000, 10.0, 0.5, 1.0);
        assert_eq!(resharded.workload_delta(&base), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = TableProfile::new(64, 1 << 20, 15.0, 0.25, 1.05).with_comm_share(0.5);
        let json = serde_json::to_string(&t).unwrap();
        let back: TableProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn legacy_profiles_deserialize_with_full_comm_share() {
        // Profiles serialized before replication existed carry no
        // `comm_share`; they must load as ordinary (share 1.0) shards.
        let json = r#"{"dim":64,"hash_size":1024,"pooling_factor":8.0,
                       "unique_frac":0.5,"zipf_alpha":1.0}"#;
        let t: TableProfile = serde_json::from_str(json).unwrap();
        assert_eq!(t.comm_share(), 1.0);
        assert_eq!(t.comm_dim().to_bits(), 64.0f64.to_bits());
    }

    #[test]
    fn comm_dim_weights_the_dimension() {
        let t = TableProfile::new(64, 1024, 8.0, 0.5, 1.0);
        assert_eq!(t.comm_dim().to_bits(), 64.0f64.to_bits());
        let replica = t.with_comm_share(0.5);
        assert_eq!(replica.comm_dim(), 32.0);
        assert_eq!(replica.memory_bytes(), t.memory_bytes());
        // Shares are clamped into (0, 1].
        assert_eq!(t.with_comm_share(7.0).comm_share(), 1.0);
        assert!(t.with_comm_share(-1.0).comm_share() > 0.0);
    }

    proptest! {
        #[test]
        fn split_memory_is_conserved(dim in 1u32..512, rows in 1u64..1_000_000) {
            let dim = dim * 8; // always splittable
            let t = TableProfile::new(dim, rows, 5.0, 0.5, 1.0);
            let (a, b) = t.split_columns().unwrap();
            prop_assert_eq!(a.memory_bytes() + b.memory_bytes(), t.memory_bytes());
        }

        #[test]
        fn construction_never_panics_on_valid_input(
            dim in 1u32..10_000,
            rows in 1u64..u64::MAX / 40_000,
            pf in 0.001f64..10_000.0,
            uf in -2.0f64..2.0,
            za in -2.0f64..5.0,
        ) {
            let t = TableProfile::new(dim, rows, pf, uf, za);
            prop_assert!(t.unique_frac() > 0.0 && t.unique_frac() <= 1.0);
            prop_assert!(t.zipf_alpha() >= 0.0);
        }
    }
}
