//! Deterministic measurement-noise model.
//!
//! Real micro-benchmarks never return the same latency twice; the paper runs
//! each measurement 100 times and takes the median (§A.2). To make the
//! reproduction faithful, every "measured" cost from the simulator carries a
//! small multiplicative jitter. The jitter is a pure function of an explicit
//! seed and a measurement counter, so experiments are bit-for-bit
//! reproducible and yet medians-over-repeats behave like real benchmarking.

use serde::{Deserialize, Serialize};

/// Multiplicative log-normal-ish measurement noise.
///
/// A [`NoiseModel`] is a stateless sampler: calling [`NoiseModel::factor`]
/// with the same `(stream, counter)` pair always returns the same factor.
///
/// # Example
///
/// ```
/// use nshard_sim::NoiseModel;
///
/// let noise = NoiseModel::new(42, 0.02);
/// let f1 = noise.factor(1, 0);
/// let f2 = noise.factor(1, 0);
/// assert_eq!(f1, f2); // deterministic
/// assert!((f1 - 1.0).abs() < 0.2); // small jitter
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    seed: u64,
    /// Relative standard deviation of the jitter (e.g. `0.02` for ~2%).
    sigma: f64,
}

impl NoiseModel {
    /// Creates a noise model with the given seed and relative standard
    /// deviation `sigma` (clamped to `[0, 0.5]`).
    pub fn new(seed: u64, sigma: f64) -> Self {
        Self {
            seed,
            sigma: sigma.clamp(0.0, 0.5),
        }
    }

    /// A noise model that returns exactly `1.0` for every query. Useful for
    /// testing analytic laws without jitter.
    pub fn disabled() -> Self {
        Self::new(0, 0.0)
    }

    /// The seed this model was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The relative standard deviation of the jitter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns a multiplicative factor close to 1.0 for the given noise
    /// `stream` (e.g. a hash of the measured configuration) and measurement
    /// `counter` (the repeat index).
    pub fn factor(&self, stream: u64, counter: u64) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        // Two independent uniform draws via splitmix64, Box-Muller to a
        // standard normal, then exp() for multiplicative log-normal noise.
        let u1 = to_unit(splitmix64(
            self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ counter,
        ));
        let u2 = to_unit(splitmix64(
            self.seed
                .wrapping_add(0xD1B5_4A32_D192_ED03)
                .wrapping_mul(stream | 1)
                ^ counter.wrapping_mul(0xA24B_AED4_963E_E407),
        ));
        let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.sigma * z).exp()
    }

    /// Simulates the paper's measurement protocol: `repeats` noisy
    /// measurements of `base_ms`, returning the median.
    ///
    /// ```
    /// use nshard_sim::NoiseModel;
    /// let noise = NoiseModel::new(7, 0.05);
    /// let m = noise.median_measurement(10.0, 101, 0xBEEF);
    /// assert!((m - 10.0).abs() / 10.0 < 0.05);
    /// ```
    pub fn median_measurement(&self, base_ms: f64, repeats: u32, stream: u64) -> f64 {
        if self.sigma == 0.0 || repeats == 0 {
            return base_ms;
        }
        let mut samples: Vec<f64> = (0..u64::from(repeats))
            .map(|i| base_ms * self.factor(stream, i))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("noise factors are finite"));
        samples[samples.len() / 2]
    }
}

impl Default for NoiseModel {
    /// The default measurement noise used across the reproduction: ~2%
    /// relative jitter, seed 0.
    fn default() -> Self {
        Self::new(0, 0.02)
    }
}

/// SplitMix64: tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 to the open unit interval (0, 1).
fn to_unit(x: u64) -> f64 {
    ((x >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_per_stream_and_counter() {
        let n = NoiseModel::new(9, 0.02);
        assert_eq!(n.factor(3, 5), n.factor(3, 5));
        assert_ne!(n.factor(3, 5), n.factor(3, 6));
        assert_ne!(n.factor(3, 5), n.factor(4, 5));
    }

    #[test]
    fn disabled_noise_is_identity() {
        let n = NoiseModel::disabled();
        assert_eq!(n.factor(1, 1), 1.0);
        assert_eq!(n.median_measurement(12.5, 100, 7), 12.5);
    }

    #[test]
    fn sigma_is_clamped() {
        assert_eq!(NoiseModel::new(0, 9.0).sigma(), 0.5);
        assert_eq!(NoiseModel::new(0, -1.0).sigma(), 0.0);
    }

    #[test]
    fn factors_average_near_one() {
        let n = NoiseModel::new(123, 0.02);
        let mean: f64 = (0..10_000).map(|i| n.factor(77, i)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean factor was {mean}");
    }

    #[test]
    fn median_is_close_to_base() {
        let n = NoiseModel::new(5, 0.1);
        let m = n.median_measurement(100.0, 101, 42);
        assert!((m - 100.0).abs() < 10.0, "median was {m}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = NoiseModel::new(1, 0.02);
        let b = NoiseModel::new(2, 0.02);
        assert_ne!(a.factor(10, 0), b.factor(10, 0));
    }

    proptest! {
        #[test]
        fn factors_are_finite_and_positive(seed: u64, stream: u64, counter: u64) {
            let n = NoiseModel::new(seed, 0.05);
            let f = n.factor(stream, counter);
            prop_assert!(f.is_finite());
            prop_assert!(f > 0.0);
        }

        #[test]
        fn median_measurement_is_finite(base in 0.001f64..1e6, repeats in 1u32..64) {
            let n = NoiseModel::new(1, 0.02);
            let m = n.median_measurement(base, repeats, 3);
            prop_assert!(m.is_finite());
            prop_assert!(m > 0.0);
        }
    }
}
