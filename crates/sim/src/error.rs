//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while simulating a sharding plan.
///
/// The most important variant is [`SimError::OutOfMemory`]: the paper marks a
/// sharding algorithm as unable to scale ("-" cells in Table 1) whenever at
/// least one generated plan overflows a device's embedding-table memory
/// budget. This error carries enough context to attribute the failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A device was assigned more embedding-table bytes than it can hold.
    OutOfMemory {
        /// Index of the offending GPU device.
        device: usize,
        /// Bytes the plan tried to place on the device.
        required_bytes: u64,
        /// The device's embedding-table memory budget in bytes.
        budget_bytes: u64,
    },
    /// A plan referenced more devices than the cluster has.
    DeviceOutOfRange {
        /// The offending device index.
        device: usize,
        /// Number of devices in the cluster.
        num_devices: usize,
    },
    /// A table profile failed validation (zero dimension, non-positive
    /// pooling factor, dimension not divisible by the kernel lane width...).
    InvalidTable {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The evaluated plan had the wrong shape (e.g. no devices).
    InvalidPlan {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A cost measurement failed transiently (injected via
    /// `Fault::TransientFailures`, modelling flaky profiling runs).
    /// Retrying the same operation with a different seed may succeed.
    TransientFailure {
        /// Device the failure is attributed to.
        device: usize,
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl SimError {
    /// `true` for errors that may clear on retry (currently only
    /// [`SimError::TransientFailure`]); `false` for persistent conditions
    /// like out-of-memory.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::TransientFailure { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                device,
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "device {device} out of memory: plan requires {required_bytes} bytes \
                 but budget is {budget_bytes} bytes"
            ),
            SimError::DeviceOutOfRange {
                device,
                num_devices,
            } => write!(
                f,
                "device index {device} out of range for a cluster of {num_devices} devices"
            ),
            SimError::InvalidTable { reason } => write!(f, "invalid table profile: {reason}"),
            SimError::InvalidPlan { reason } => write!(f, "invalid sharding plan: {reason}"),
            SimError::TransientFailure { device, reason } => write!(
                f,
                "transient measurement failure on device {device}: {reason}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SimError::OutOfMemory {
            device: 3,
            required_bytes: 10,
            budget_bytes: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains("device 3"));
        assert!(msg.contains("10"));
        assert!(msg.contains("5"));
    }

    #[test]
    fn display_covers_every_variant() {
        let cases = [
            (
                SimError::OutOfMemory {
                    device: 1,
                    required_bytes: 2048,
                    budget_bytes: 1024,
                },
                "device 1 out of memory: plan requires 2048 bytes but budget is 1024 bytes",
            ),
            (
                SimError::DeviceOutOfRange {
                    device: 7,
                    num_devices: 4,
                },
                "device index 7 out of range for a cluster of 4 devices",
            ),
            (
                SimError::InvalidTable {
                    reason: "dimension must be positive".into(),
                },
                "invalid table profile: dimension must be positive",
            ),
            (
                SimError::InvalidPlan {
                    reason: "no devices".into(),
                },
                "invalid sharding plan: no devices",
            ),
            (
                SimError::TransientFailure {
                    device: 2,
                    reason: "injected fault".into(),
                },
                "transient measurement failure on device 2: injected fault",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn only_transient_failures_are_transient() {
        assert!(SimError::TransientFailure {
            device: 0,
            reason: "flaky".into(),
        }
        .is_transient());
        let persistent = [
            SimError::OutOfMemory {
                device: 0,
                required_bytes: 2,
                budget_bytes: 1,
            },
            SimError::DeviceOutOfRange {
                device: 1,
                num_devices: 1,
            },
            SimError::InvalidTable { reason: "x".into() },
            SimError::InvalidPlan { reason: "x".into() },
        ];
        assert!(persistent.iter().all(|e| !e.is_transient()));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn debug_is_nonempty() {
        let err = SimError::InvalidPlan {
            reason: "empty".into(),
        };
        assert!(!format!("{err:?}").is_empty());
    }
}
