//! Synchronous training-iteration trace simulator.
//!
//! Reproduces the timeline analysis of Figure 1 (right) of the paper: in
//! fully synchronous training the embedding backward of iteration `k`
//! staggers the embedding forward of iteration `k+1`, so per-device
//! imbalance *accumulates* into waits at the all-to-all collectives. This
//! module simulates that pipeline over many iterations and reports
//! steady-state iteration time, per-GPU idle time, and training throughput —
//! the quantities behind Table 4's "training throughput improvement" column.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::error::SimError;
use crate::profile::TableProfile;

/// The phases of one training iteration on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Embedding forward lookup (fused kernel).
    EmbeddingForward,
    /// Forward all-to-all (includes waiting for stragglers).
    ForwardComm,
    /// Dense MLP forward + backward (data-parallel, identical per GPU).
    DenseCompute,
    /// Backward all-to-all.
    BackwardComm,
    /// Embedding backward update (fused kernel).
    EmbeddingBackward,
}

/// One timed span in a GPU's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Which phase this span belongs to.
    pub phase: Phase,
    /// Start time in ms from the beginning of the trace.
    pub start_ms: f64,
    /// End time in ms.
    pub end_ms: f64,
}

impl Span {
    /// Duration of the span in ms.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Per-GPU timeline of the final simulated iteration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IterationTrace {
    /// `spans[g]` is GPU `g`'s ordered span list for the iteration.
    pub spans: Vec<Vec<Span>>,
}

/// Steady-state summary of a multi-iteration trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Steady-state time of one training iteration, ms.
    pub iteration_ms: f64,
    /// Mean per-GPU idle (wait) time per iteration, ms.
    pub mean_idle_ms: f64,
    /// Max per-GPU idle time per iteration, ms.
    pub max_idle_ms: f64,
    /// Training throughput in samples per second.
    pub throughput_samples_per_sec: f64,
    /// Timeline of the last simulated iteration.
    pub last_iteration: IterationTrace,
}

/// Simulates the synchronous DLRM training pipeline of Figure 1.
///
/// # Example
///
/// ```
/// use nshard_sim::{Cluster, GpuSpec, TableProfile, TraceSimulator};
///
/// let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536);
/// let sim = TraceSimulator::new(cluster, 8.0);
/// let t = |d| TableProfile::new(d, 1 << 20, 12.0, 0.3, 1.0);
/// let summary = sim.simulate(&[vec![t(64)], vec![t(64)]], 20)?;
/// assert!(summary.iteration_ms > 0.0);
/// assert!(summary.throughput_samples_per_sec > 0.0);
/// # Ok::<(), nshard_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSimulator {
    cluster: Cluster,
    /// Duration of the dense (fully connected) forward+backward per
    /// iteration, identical on every GPU, ms.
    dense_ms: f64,
}

impl TraceSimulator {
    /// Creates a trace simulator for `cluster` with a fixed dense-network
    /// compute time of `dense_ms` per iteration.
    pub fn new(cluster: Cluster, dense_ms: f64) -> Self {
        Self { cluster, dense_ms }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Simulates `iterations` synchronous training iterations of the given
    /// placement and returns the steady-state summary.
    ///
    /// # Errors
    ///
    /// Propagates memory-validation errors from the cluster.
    pub fn simulate(
        &self,
        assignment: &[Vec<TableProfile>],
        iterations: u32,
    ) -> Result<TraceSummary, SimError> {
        self.cluster.check_memory(assignment)?;
        let d = self.cluster.num_devices();
        let kernel = self.cluster.spec().kernel();
        let comm = self.cluster.spec().comm();
        let batch = self.cluster.batch_size();

        let fwd: Vec<f64> = assignment
            .iter()
            .map(|t| kernel.multi_forward_ms(t, batch))
            .collect();
        let bwd: Vec<f64> = assignment
            .iter()
            .map(|t| kernel.multi_backward_ms(t, batch))
            .collect();
        let dims = Cluster::device_dims(assignment);

        // Per-GPU time cursors: when each GPU becomes free.
        let mut cursor = vec![0.0f64; d];
        let mut idle = vec![0.0f64; d];
        let mut last_trace = IterationTrace {
            spans: vec![Vec::new(); d],
        };
        let mut iter_start_max = 0.0f64;
        let mut iter_end_max = 0.0f64;

        let iterations = iterations.max(1);
        for it in 0..iterations {
            let record = it + 1 == iterations;
            if record {
                for s in &mut last_trace.spans {
                    s.clear();
                }
                iter_start_max = cursor.iter().cloned().fold(f64::MIN, f64::max);
            }
            idle.iter_mut().for_each(|v| *v = 0.0);

            // 1. Embedding forward (starts as soon as each GPU is free).
            let fwd_end: Vec<f64> = (0..d).map(|g| cursor[g] + fwd[g]).collect();
            if record {
                for g in 0..d {
                    last_trace.spans[g].push(Span {
                        phase: Phase::EmbeddingForward,
                        start_ms: cursor[g],
                        end_ms: fwd_end[g],
                    });
                }
            }

            // 2. Forward all-to-all: collective joined at fwd_end[g].
            let fwd_comm = comm.forward_costs_ms(&dims, &fwd_end, batch);
            let fwd_comm_end: Vec<f64> = (0..d).map(|g| fwd_end[g] + fwd_comm[g]).collect();
            let ready = fwd_end.iter().cloned().fold(f64::MIN, f64::max);
            for g in 0..d {
                idle[g] += ready - fwd_end[g];
            }
            if record {
                for g in 0..d {
                    last_trace.spans[g].push(Span {
                        phase: Phase::ForwardComm,
                        start_ms: fwd_end[g],
                        end_ms: fwd_comm_end[g],
                    });
                }
            }

            // 3. Dense forward + backward (identical everywhere).
            let dense_end: Vec<f64> = fwd_comm_end.iter().map(|&e| e + self.dense_ms).collect();
            if record {
                for g in 0..d {
                    last_trace.spans[g].push(Span {
                        phase: Phase::DenseCompute,
                        start_ms: fwd_comm_end[g],
                        end_ms: dense_end[g],
                    });
                }
            }

            // 4. Backward all-to-all.
            let bwd_comm = comm.backward_costs_ms(&dims, &dense_end, batch);
            let bwd_comm_end: Vec<f64> = (0..d).map(|g| dense_end[g] + bwd_comm[g]).collect();
            let ready_b = dense_end.iter().cloned().fold(f64::MIN, f64::max);
            for g in 0..d {
                idle[g] += ready_b - dense_end[g];
            }
            if record {
                for g in 0..d {
                    last_trace.spans[g].push(Span {
                        phase: Phase::BackwardComm,
                        start_ms: dense_end[g],
                        end_ms: bwd_comm_end[g],
                    });
                }
            }

            // 5. Embedding backward; its end staggers the next iteration.
            for g in 0..d {
                let end = bwd_comm_end[g] + bwd[g];
                if record {
                    last_trace.spans[g].push(Span {
                        phase: Phase::EmbeddingBackward,
                        start_ms: bwd_comm_end[g],
                        end_ms: end,
                    });
                }
                cursor[g] = end;
            }
            if record {
                iter_end_max = cursor.iter().cloned().fold(f64::MIN, f64::max);
            }
        }

        let iteration_ms = iter_end_max - iter_start_max;
        let mean_idle = idle.iter().sum::<f64>() / d as f64;
        let max_idle = idle.iter().cloned().fold(0.0, f64::max);
        let throughput = if iteration_ms > 0.0 {
            f64::from(batch) / (iteration_ms / 1e3)
        } else {
            0.0
        };
        Ok(TraceSummary {
            iteration_ms,
            mean_idle_ms: mean_idle,
            max_idle_ms: max_idle,
            throughput_samples_per_sec: throughput,
            last_iteration: last_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;
    use crate::noise::NoiseModel;

    fn t(dim: u32) -> TableProfile {
        TableProfile::new(dim, 1 << 20, 12.0, 0.3, 1.05)
    }

    fn sim(d: usize) -> TraceSimulator {
        let cluster =
            Cluster::new(GpuSpec::rtx_2080_ti(), d, 65_536).with_noise(NoiseModel::disabled());
        TraceSimulator::new(cluster, 8.0)
    }

    #[test]
    fn balanced_plan_has_higher_throughput() {
        let s = sim(4);
        let balanced = vec![vec![t(64); 3]; 4];
        let skewed = vec![vec![t(64); 9], vec![t(64)], vec![t(64)], vec![t(64)]];
        let b = s.simulate(&balanced, 50).unwrap();
        let k = s.simulate(&skewed, 50).unwrap();
        assert!(b.throughput_samples_per_sec > k.throughput_samples_per_sec);
        assert!(b.max_idle_ms < k.max_idle_ms);
    }

    #[test]
    fn imbalance_creates_idle_time() {
        let s = sim(2);
        let skewed = vec![vec![t(64); 6], vec![t(8)]];
        let summary = s.simulate(&skewed, 20).unwrap();
        // The light GPU waits for the heavy one at both collectives.
        assert!(summary.max_idle_ms > 1.0, "idle {}", summary.max_idle_ms);
    }

    #[test]
    fn trace_spans_are_ordered_and_contiguous() {
        let s = sim(2);
        let plan = vec![vec![t(64)], vec![t(32)]];
        let summary = s.simulate(&plan, 5).unwrap();
        for spans in &summary.last_iteration.spans {
            assert_eq!(spans.len(), 5);
            for w in spans.windows(2) {
                assert!(w[0].end_ms <= w[1].start_ms + 1e-9);
            }
            for sp in spans {
                assert!(sp.duration_ms() >= 0.0);
            }
        }
    }

    #[test]
    fn iteration_time_exceeds_sum_of_own_phases_under_imbalance() {
        let s = sim(2);
        let plan = vec![vec![t(128); 4], vec![t(8)]];
        let summary = s.simulate(&plan, 30).unwrap();
        // GPU 1's own work is tiny, yet the iteration takes as long as the
        // bottleneck GPU's pipeline.
        let own: f64 = summary.last_iteration.spans[1]
            .iter()
            .filter(|sp| {
                matches!(
                    sp.phase,
                    Phase::EmbeddingForward | Phase::DenseCompute | Phase::EmbeddingBackward
                )
            })
            .map(Span::duration_ms)
            .sum();
        assert!(summary.iteration_ms > own);
    }

    #[test]
    fn deterministic() {
        let s = sim(4);
        let plan = vec![vec![t(64)], vec![t(32)], vec![t(16)], vec![t(128)]];
        assert_eq!(
            s.simulate(&plan, 10).unwrap(),
            s.simulate(&plan, 10).unwrap()
        );
    }

    #[test]
    fn propagates_memory_errors() {
        let s = sim(2);
        let huge = TableProfile::new(128, 32 << 20, 12.0, 0.3, 1.05);
        assert!(s.simulate(&[vec![huge], vec![]], 5).is_err());
    }

    #[test]
    fn zero_iterations_treated_as_one() {
        let s = sim(2);
        let plan = vec![vec![t(16)], vec![t(16)]];
        let summary = s.simulate(&plan, 0).unwrap();
        assert!(summary.iteration_ms > 0.0);
    }

    #[test]
    fn throughput_matches_iteration_time() {
        let s = sim(2);
        let plan = vec![vec![t(32)], vec![t(32)]];
        let summary = s.simulate(&plan, 20).unwrap();
        let expect = 65_536.0 / (summary.iteration_ms / 1e3);
        assert!((summary.throughput_samples_per_sec - expect).abs() < 1e-6);
    }
}
