//! GPU device specification.

use serde::{Deserialize, Serialize};

use crate::comm::CommParams;
use crate::kernel::KernelParams;
use crate::DEFAULT_MEM_BYTES;

/// Hardware description of one GPU class plus the interconnect it sits on.
///
/// A [`GpuSpec`] bundles the kernel cost law, the communication cost law and
/// the embedding-table memory budget. The paper's benchmark tasks cap the
/// embedding memory per GPU at 4 GB even though a 2080 Ti has 11 GB — the
/// rest is reserved for activations, dense layers and caches.
///
/// # Example
///
/// ```
/// use nshard_sim::GpuSpec;
///
/// let gpu = GpuSpec::rtx_2080_ti();
/// assert_eq!(gpu.mem_budget_bytes(), 4 * 1024 * 1024 * 1024);
/// let roomy = gpu.with_mem_budget(8 * 1024 * 1024 * 1024);
/// assert_eq!(roomy.mem_budget_bytes(), 8 * 1024 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    kernel: KernelParams,
    comm: CommParams,
    mem_budget_bytes: u64,
}

impl GpuSpec {
    /// Creates a spec from explicit cost laws and a memory budget.
    pub fn new(kernel: KernelParams, comm: CommParams, mem_budget_bytes: u64) -> Self {
        Self {
            kernel,
            comm,
            mem_budget_bytes,
        }
    }

    /// The paper's benchmarking GPU: RTX 2080 Ti on a PCIe server, 4 GB
    /// embedding budget.
    pub fn rtx_2080_ti() -> Self {
        Self::new(
            KernelParams::rtx_2080_ti(),
            CommParams::pcie_server(),
            DEFAULT_MEM_BYTES,
        )
    }

    /// A datacenter accelerator on an RDMA fabric (Table 4's production
    /// platform), with a large embedding budget.
    pub fn datacenter() -> Self {
        Self::new(
            KernelParams::datacenter_a100_like(),
            CommParams::rdma_cluster(),
            32 * 1024 * 1024 * 1024,
        )
    }

    /// The kernel cost law of this device.
    pub fn kernel(&self) -> &KernelParams {
        &self.kernel
    }

    /// The communication cost law of this device's interconnect.
    pub fn comm(&self) -> &CommParams {
        &self.comm
    }

    /// Embedding-table memory budget in bytes.
    pub fn mem_budget_bytes(&self) -> u64 {
        self.mem_budget_bytes
    }

    /// Returns a copy with a different memory budget (builder-style).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Returns a copy with a different kernel law.
    pub fn with_kernel(mut self, kernel: KernelParams) -> Self {
        self.kernel = kernel;
        self
    }

    /// Returns a copy with a different communication law.
    pub fn with_comm(mut self, comm: CommParams) -> Self {
        self.comm = comm;
        self
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::rtx_2080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_2080_ti() {
        assert_eq!(GpuSpec::default(), GpuSpec::rtx_2080_ti());
    }

    #[test]
    fn builder_methods_replace_fields() {
        let spec = GpuSpec::rtx_2080_ti()
            .with_mem_budget(123)
            .with_kernel(KernelParams::datacenter_a100_like())
            .with_comm(CommParams::rdma_cluster());
        assert_eq!(spec.mem_budget_bytes(), 123);
        assert_eq!(spec.kernel(), &KernelParams::datacenter_a100_like());
        assert_eq!(spec.comm(), &CommParams::rdma_cluster());
    }

    #[test]
    fn datacenter_has_more_memory() {
        assert!(
            GpuSpec::datacenter().mem_budget_bytes() > GpuSpec::rtx_2080_ti().mem_budget_bytes()
        );
    }
}
