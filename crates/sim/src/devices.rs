//! Heterogeneous device fleets and the two-tier interconnect.
//!
//! The paper's benchmark clusters are uniform: every GPU has the same
//! memory budget, the same kernel speed and a flat all-to-all network.
//! Production fleets are not — generations mix (a 2080 Ti rack next to an
//! A100 rack), and bandwidth *within* a node (NVLink/PCIe switch) is far
//! higher than *between* nodes (Ethernet/IB). A [`DevicePool`] describes
//! such a fleet: one [`DeviceProfile`] per device (memory budget, relative
//! compute speed, node id) plus a single inter-node bandwidth discount.
//!
//! The two-tier network is lowered to a **per-device bandwidth scale**: in
//! an all-to-all, device `g` exchanges shards with `local` same-node peers
//! at full bandwidth and `remote` other-node peers at
//! `inter_node_bw_scale ×` bandwidth, so its effective collective
//! bandwidth is the harmonic blend
//! `(local + remote) / (local + remote / inter_node_bw_scale)`.
//! When the network is flat (`inter_node_bw_scale = 1.0`, or a single
//! node) the scale is exactly `1.0` and every homogeneous code path is
//! bit-for-bit unchanged.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// One device of a heterogeneous fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Embedding-table memory budget of this device, bytes.
    mem_budget_bytes: u64,
    /// Multiplier on kernel (compute) time: `1.0` = baseline hardware,
    /// `1.5` = 50% slower, `0.5` = twice as fast.
    compute_scale: f64,
    /// Node (host) this device sits in; same-node traffic moves at full
    /// bandwidth, cross-node traffic at the pool's inter-node scale.
    node: usize,
}

impl DeviceProfile {
    /// Creates a device profile.
    ///
    /// # Panics
    ///
    /// Panics when `mem_budget_bytes` is zero or `compute_scale` is not
    /// finite and positive.
    pub fn new(mem_budget_bytes: u64, compute_scale: f64, node: usize) -> Self {
        assert!(
            mem_budget_bytes > 0,
            "device memory budget must be positive"
        );
        assert!(
            compute_scale.is_finite() && compute_scale > 0.0,
            "compute scale must be finite and positive, got {compute_scale}"
        );
        Self {
            mem_budget_bytes,
            compute_scale,
            node,
        }
    }

    /// Embedding-table memory budget, bytes.
    pub fn mem_budget_bytes(&self) -> u64 {
        self.mem_budget_bytes
    }

    /// Multiplier on kernel time (`1.0` = baseline).
    pub fn compute_scale(&self) -> f64 {
        self.compute_scale
    }

    /// Node (host) index.
    pub fn node(&self) -> usize {
        self.node
    }
}

/// A fleet of (possibly heterogeneous) devices plus a two-tier network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePool {
    devices: Vec<DeviceProfile>,
    /// Bandwidth of an inter-node link relative to an intra-node link, in
    /// `(0, 1]`. `1.0` = flat network.
    inter_node_bw_scale: f64,
}

impl DevicePool {
    /// Creates a pool from explicit per-device profiles.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTable`] when the pool is empty or the inter-node
    /// bandwidth scale is outside `(0, 1]`.
    pub fn try_new(
        devices: Vec<DeviceProfile>,
        inter_node_bw_scale: f64,
    ) -> Result<Self, SimError> {
        if devices.is_empty() {
            return Err(SimError::InvalidTable {
                reason: "a device pool needs at least one device".into(),
            });
        }
        if !(inter_node_bw_scale.is_finite()
            && inter_node_bw_scale > 0.0
            && inter_node_bw_scale <= 1.0)
        {
            return Err(SimError::InvalidTable {
                reason: format!(
                    "inter-node bandwidth scale must be in (0, 1], got {inter_node_bw_scale}"
                ),
            });
        }
        Ok(Self {
            devices,
            inter_node_bw_scale,
        })
    }

    /// Infallible counterpart of [`DevicePool::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on the conditions [`DevicePool::try_new`] rejects.
    pub fn new(devices: Vec<DeviceProfile>, inter_node_bw_scale: f64) -> Self {
        Self::try_new(devices, inter_node_bw_scale).expect("invalid device pool")
    }

    /// A uniform pool: `n` identical devices with `mem_budget_bytes` each,
    /// baseline compute, one node, flat network. Behaves bit-identically
    /// to no pool at all.
    pub fn uniform(n: usize, mem_budget_bytes: u64) -> Self {
        Self::new(
            (0..n)
                .map(|_| DeviceProfile::new(mem_budget_bytes, 1.0, 0))
                .collect(),
            1.0,
        )
    }

    /// A two-node fleet mixing a fast roomy class with a slow tight class:
    /// `fast` devices on node 0 and `slow` devices on node 1, the slow
    /// class carrying `slow_scale ×` kernel time and `slow_budget` bytes,
    /// inter-node links at `inter_node_bw_scale` of intra-node bandwidth.
    pub fn two_tier(
        fast: usize,
        fast_budget: u64,
        slow: usize,
        slow_budget: u64,
        slow_scale: f64,
        inter_node_bw_scale: f64,
    ) -> Self {
        let mut devices = Vec::with_capacity(fast + slow);
        devices.extend((0..fast).map(|_| DeviceProfile::new(fast_budget, 1.0, 0)));
        devices.extend((0..slow).map(|_| DeviceProfile::new(slow_budget, slow_scale, 1)));
        Self::new(devices, inter_node_bw_scale)
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The per-device profiles, in device order.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Inter-node bandwidth relative to intra-node bandwidth.
    pub fn inter_node_bw_scale(&self) -> f64 {
        self.inter_node_bw_scale
    }

    /// Memory budget of device `g`, bytes.
    pub fn budget_of(&self, g: usize) -> u64 {
        self.devices[g].mem_budget_bytes
    }

    /// Compute-time multiplier of device `g`.
    pub fn compute_scale_of(&self, g: usize) -> f64 {
        self.devices[g].compute_scale
    }

    /// Node of device `g`.
    pub fn node_of(&self, g: usize) -> usize {
        self.devices[g].node
    }

    /// The largest single-device memory budget in the pool.
    pub fn max_budget(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.mem_budget_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Sum of all device budgets (the aggregate feasibility bound).
    pub fn total_budget(&self) -> u64 {
        self.devices
            .iter()
            .fold(0u64, |acc, d| acc.saturating_add(d.mem_budget_bytes))
    }

    /// Effective all-to-all bandwidth scale of device `g` (see the module
    /// docs for the harmonic blend). Exactly `1.0` on a flat network.
    pub fn bw_scale_of(&self, g: usize) -> f64 {
        let d = self.devices.len();
        if d <= 1 {
            return 1.0;
        }
        let node = self.devices[g].node;
        let local = self
            .devices
            .iter()
            .enumerate()
            .filter(|&(i, dev)| i != g && dev.node == node)
            .count();
        let remote = d - 1 - local;
        if remote == 0 {
            return 1.0;
        }
        let (local, remote) = (local as f64, remote as f64);
        (local + remote) / (local + remote / self.inter_node_bw_scale)
    }

    /// Per-device effective bandwidth scales, in device order.
    pub fn bw_scales(&self) -> Vec<f64> {
        (0..self.devices.len())
            .map(|g| self.bw_scale_of(g))
            .collect()
    }

    /// Per-device compute-time multipliers, in device order.
    pub fn compute_scales(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.compute_scale).collect()
    }

    /// Per-device memory budgets, in device order.
    pub fn budgets(&self) -> Vec<u64> {
        self.devices.iter().map(|d| d.mem_budget_bytes).collect()
    }

    /// Whether every device has baseline compute speed.
    pub fn has_uniform_compute(&self) -> bool {
        self.devices.iter().all(|d| d.compute_scale == 1.0)
    }

    /// Whether the network is effectively flat (single node, or full
    /// inter-node bandwidth).
    pub fn has_uniform_bandwidth(&self) -> bool {
        self.inter_node_bw_scale == 1.0
            || self.devices.iter().all(|d| d.node == self.devices[0].node)
    }

    /// Whether the fleet behaves exactly like a uniform cluster: equal
    /// budgets, baseline compute, flat network. Uniform pools take the
    /// homogeneous (bit-exact legacy) code paths everywhere.
    pub fn is_uniform(&self) -> bool {
        self.devices
            .iter()
            .all(|d| d.mem_budget_bytes == self.devices[0].mem_budget_bytes)
            && self.has_uniform_compute()
            && self.has_uniform_bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pool_is_uniform() {
        let pool = DevicePool::uniform(4, 1 << 30);
        assert!(pool.is_uniform());
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.budget_of(3), 1 << 30);
        assert_eq!(pool.total_budget(), 4 << 30);
        for g in 0..4 {
            assert_eq!(pool.bw_scale_of(g).to_bits(), 1.0f64.to_bits());
            assert_eq!(pool.compute_scale_of(g), 1.0);
        }
    }

    #[test]
    fn two_tier_pool_is_heterogeneous() {
        let pool = DevicePool::two_tier(2, 4 << 30, 2, 1 << 30, 1.5, 0.25);
        assert!(!pool.is_uniform());
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.budget_of(0), 4 << 30);
        assert_eq!(pool.budget_of(2), 1 << 30);
        assert_eq!(pool.compute_scale_of(2), 1.5);
        assert_eq!(pool.node_of(0), 0);
        assert_eq!(pool.node_of(3), 1);
        assert_eq!(pool.max_budget(), 4 << 30);
        // 1 local peer at full speed + 2 remote peers at 0.25:
        // (1 + 2) / (1 + 2/0.25) = 3/9.
        let s = pool.bw_scale_of(0);
        assert!((s - 3.0 / 9.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn flat_network_bw_scale_is_exactly_one() {
        // Two nodes but full inter-node bandwidth: scale must be the exact
        // 1.0 bits so homogeneous paths stay bit-identical.
        let pool = DevicePool::two_tier(2, 1 << 30, 2, 1 << 30, 1.0, 1.0);
        for g in 0..4 {
            assert_eq!(pool.bw_scale_of(g).to_bits(), 1.0f64.to_bits());
        }
        assert!(pool.has_uniform_bandwidth());
        assert!(pool.is_uniform());
    }

    #[test]
    fn single_node_pools_have_flat_bandwidth() {
        let devices = (0..3)
            .map(|_| DeviceProfile::new(1 << 20, 2.0, 5))
            .collect();
        let pool = DevicePool::new(devices, 0.1);
        assert!(pool.has_uniform_bandwidth());
        assert!(!pool.has_uniform_compute());
        for g in 0..3 {
            assert_eq!(pool.bw_scale_of(g).to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn rejects_empty_and_bad_scales() {
        assert!(DevicePool::try_new(Vec::new(), 1.0).is_err());
        let one = vec![DeviceProfile::new(1, 1.0, 0)];
        assert!(DevicePool::try_new(one.clone(), 0.0).is_err());
        assert!(DevicePool::try_new(one.clone(), 1.5).is_err());
        assert!(DevicePool::try_new(one, f64::NAN).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let pool = DevicePool::two_tier(2, 4 << 30, 6, 1 << 30, 1.25, 0.4);
        let json = serde_json::to_string(&pool).unwrap();
        let back: DevicePool = serde_json::from_str(&json).unwrap();
        assert_eq!(pool, back);
    }
}
