//! # nshard-sim — deterministic GPU execution simulator
//!
//! This crate is the **ground-truth oracle** of the NeuroShard reproduction.
//! The original paper (Zha et al., MLSys 2023) collected computation and
//! communication costs from real RTX 2080Ti GPUs running FBGEMM fused
//! embedding kernels and NCCL all-to-all collectives. This crate replaces
//! that hardware with an analytic, seeded, noisy cost simulator that is
//! calibrated to exhibit the paper's three load-bearing observations:
//!
//! 1. **Observation 1** — splitting a table column-wise into two halves
//!    produces shards that each cost *more* than half the original table
//!    ([`kernel`]: fixed per-row overhead plus a sublinear dimension term).
//! 2. **Observation 2** — the fused multi-table kernel cost is *non-linearly*
//!    below the sum of single-table costs ([`kernel`]: occupancy/fusion
//!    amortization improves with the number of tables).
//! 3. **Observation 3** — the max all-to-all communication cost across GPUs
//!    is positively correlated with the max device dimension ([`comm`]:
//!    collective barrier plus a bandwidth term proportional to the data the
//!    slowest participant moves).
//!
//! The rest of the system treats this crate exactly the way the paper treats
//! a GPU cluster: micro-benchmarks are run against it to produce training
//! labels for the neural cost models, and final sharding plans are evaluated
//! against it to produce the "real" embedding costs reported in every table
//! and figure.
//!
//! All costs are reported in **milliseconds**; all stochastic behaviour is
//! driven by explicit `u64` seeds so experiments reproduce bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use nshard_sim::{Cluster, GpuSpec, TableProfile};
//!
//! // Two tables placed on GPU 0, one on GPU 1.
//! let t = |dim| TableProfile::new(dim, 1 << 20, 15.0, 0.3, 1.1);
//! let cluster = Cluster::new(GpuSpec::rtx_2080_ti(), 2, 65_536);
//! let costs = cluster
//!     .evaluate(&[vec![t(64), t(32)], vec![t(128)]], 7)
//!     .expect("plan fits in memory");
//! assert!(costs.max_total_ms() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod comm;
pub mod device;
pub mod devices;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod noise;
pub mod profile;
pub mod trace;

pub use cluster::{Cluster, DeviceCost, PlanCosts};
pub use comm::{CommCosts, CommParams};
pub use device::GpuSpec;
pub use devices::{DevicePool, DeviceProfile};
pub use error::SimError;
pub use fault::{Fault, FaultPlan, FaultyCluster};
pub use kernel::KernelParams;
pub use noise::NoiseModel;
pub use profile::TableProfile;
pub use trace::{IterationTrace, Phase, Span, TraceSimulator, TraceSummary};

/// Default per-GPU memory budget for embedding tables used throughout the
/// paper's DLRM benchmark tasks (4 GB).
pub const DEFAULT_MEM_BYTES: u64 = 4 * 1024 * 1024 * 1024;

/// Default training batch size, matching the `bs65536` benchmark dataset.
pub const DEFAULT_BATCH_SIZE: u32 = 65_536;
