//! Criterion benchmarks of the parallel search runtime: the work pool at
//! several thread counts, batched vs. unbatched inference, and the sharded
//! prediction cache under contention.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nshard_core::{NeuroShard, NeuroShardConfig, WorkPool};
use nshard_cost::{CollectConfig, CostModelBundle, PredictionCache, TrainSettings};
use nshard_data::{ShardingTask, TablePool};

fn quick_bundle(d: usize) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(60, 1);
    CostModelBundle::pretrain(
        &pool,
        d,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        7,
    )
}

fn bench_threaded_search(c: &mut Criterion) {
    let bundle = quick_bundle(4);
    let pool = TablePool::synthetic_dlrm(60, 2);
    let task = ShardingTask::sample(&pool, 4, 20..=20, 64, 5);
    let mut group = c.benchmark_group("parallel/neuroshard_smoke");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let config = NeuroShardConfig {
            threads,
            ..NeuroShardConfig::smoke()
        };
        let sharder = NeuroShard::new(bundle.clone(), config);
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                sharder
                    .shard_with_stats(black_box(&task))
                    .expect("feasible")
            });
        });
    }
    let unbatched = NeuroShard::new(
        bundle.clone(),
        NeuroShardConfig {
            threads: 1,
            use_batch: false,
            ..NeuroShardConfig::smoke()
        },
    );
    group.bench_function("1_thread_unbatched", |b| {
        b.iter(|| {
            unbatched
                .shard_with_stats(black_box(&task))
                .expect("feasible")
        });
    });
    group.finish();
}

fn bench_work_pool(c: &mut Criterion) {
    let items: Vec<u64> = (0..4096).collect();
    let mut group = c.benchmark_group("parallel/work_pool_4096_items");
    for threads in [1usize, 2, 4] {
        let pool = WorkPool::new(threads);
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                pool.map(black_box(&items), |&x| {
                    x.wrapping_mul(0x9e37_79b9).count_ones()
                })
            });
        });
    }
    group.finish();
}

fn bench_sharded_cache(c: &mut Criterion) {
    let cache = PredictionCache::new();
    for k in 0u64..4096 {
        cache.insert_if_absent(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k as f64);
    }
    c.bench_function("parallel/cache_4096_reads", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0u64..4096 {
                if let Some(v) = cache.get_counted(black_box(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
                {
                    acc += v;
                }
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_threaded_search,
    bench_work_pool,
    bench_sharded_cache
);
criterion_main!(benches);
