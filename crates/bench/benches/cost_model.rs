//! Criterion benchmarks of the search's hot path: neural cost-model
//! inference with and without the life-long prediction cache, quantifying
//! the speedup behind Table 3's "w/o caching" row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nshard_cost::{table_features, CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use nshard_data::TablePool;
use nshard_sim::TableProfile;

fn quick_bundle(d: usize) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(40, 1);
    CostModelBundle::pretrain(
        &pool,
        d,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        7,
    )
}

fn tables(n: usize) -> Vec<TableProfile> {
    (0..n as u64)
        .map(|i| {
            TableProfile::new(
                [4u32, 8, 16, 32, 64, 128][(i % 6) as usize],
                1 << (16 + i % 8),
                8.0 + i as f64,
                0.3,
                1.05,
            )
        })
        .collect()
}

fn bench_compute_predict(c: &mut Criterion) {
    let bundle = quick_bundle(4);
    let mut group = c.benchmark_group("cost_model/compute_predict");
    for t in [1usize, 8, 16] {
        let feats: Vec<Vec<f32>> = tables(t)
            .iter()
            .map(|p| table_features(p, 65_536))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(t), &feats, |b, feats| {
            b.iter(|| bundle.compute_model().predict(black_box(feats)));
        });
    }
    group.finish();
}

fn bench_cached_vs_uncached(c: &mut Criterion) {
    let ts = tables(10);
    let cached = CostSimulator::new(quick_bundle(4));
    // Warm the cache.
    let _ = cached.device_compute_cost(&ts);
    c.bench_function("cost_model/device_cost_cached", |b| {
        b.iter(|| cached.device_compute_cost(black_box(&ts)));
    });
    let uncached = CostSimulator::new(quick_bundle(4)).with_cache_disabled();
    c.bench_function("cost_model/device_cost_uncached", |b| {
        b.iter(|| uncached.device_compute_cost(black_box(&ts)));
    });
}

fn bench_estimate_plan(c: &mut Criterion) {
    let sim = CostSimulator::new(quick_bundle(4));
    let ts = tables(24);
    let plan: Vec<Vec<TableProfile>> = (0..4)
        .map(|g| ts.iter().skip(g).step_by(4).copied().collect())
        .collect();
    c.bench_function("cost_model/estimate_plan_4gpu", |b| {
        b.iter(|| sim.estimate_plan(black_box(&plan)));
    });
}

criterion_group!(
    benches,
    bench_compute_predict,
    bench_cached_vs_uncached,
    bench_estimate_plan
);
criterion_main!(benches);
