//! Criterion micro-benchmarks of the ground-truth cost laws: the fused
//! multi-table kernel law and the all-to-all communication law. These are
//! the innermost functions of every experiment (label generation and plan
//! evaluation), so their throughput bounds the whole harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nshard_sim::{CommParams, KernelParams, TableProfile};

fn table(dim: u32, i: u64) -> TableProfile {
    TableProfile::new(dim, 1 << (16 + (i % 10)), 8.0 + i as f64, 0.3, 1.05)
}

fn bench_kernel_law(c: &mut Criterion) {
    let params = KernelParams::rtx_2080_ti();
    let mut group = c.benchmark_group("kernel/multi_cost");
    for t in [1usize, 4, 16, 64] {
        let tables: Vec<TableProfile> = (0..t as u64)
            .map(|i| table([4u32, 8, 16, 32, 64, 128][(i % 6) as usize], i))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(t), &tables, |b, tables| {
            b.iter(|| params.multi_cost_ms(black_box(tables), 65_536));
        });
    }
    group.finish();
}

fn bench_comm_law(c: &mut Criterion) {
    let params = CommParams::pcie_server();
    let mut group = c.benchmark_group("comm/forward_costs");
    for d in [4usize, 8, 128] {
        let dims: Vec<f64> = (0..d).map(|g| 200.0 + g as f64).collect();
        let starts = vec![0.0; d];
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| params.forward_costs_ms(black_box(&dims), black_box(&starts), 65_536));
        });
    }
    group.finish();
}

fn bench_cache_penalty(c: &mut Criterion) {
    let params = KernelParams::rtx_2080_ti();
    let t = table(64, 3);
    c.bench_function("kernel/cache_penalty", |b| {
        b.iter(|| params.cache_penalty(black_box(&t), 65_536));
    });
}

criterion_group!(
    benches,
    bench_kernel_law,
    bench_comm_law,
    bench_cache_penalty
);
criterion_main!(benches);
