//! Criterion micro-benchmarks of the dense-inference kernels behind the
//! cost models: the scalar reference GEMM, the cache-blocked GEMM, the
//! packed-panel GEMM used by `Dense::forward`, the int8 quantized GEMM,
//! and the end-to-end `Mlp` forward paths (allocating vs scratch, f32 vs
//! int8) at the cost-model architecture (input → 128-64-32-16 → 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nshard_nn::gemm::{gemm_into, gemm_ref_into, PackedGemm};
use nshard_nn::{Matrix, Mlp, MlpScratch, QuantizedMlp};

/// Deterministic pseudo-random matrix (no RNG dependency in benches).
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let v = (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
            m.set(r, c, v);
        }
    }
    m
}

fn raw(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .flat_map(|r| (0..m.cols()).map(move |c| m.get(r, c)))
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    // Cost-model hot shape: a search batch of rows through the widest layer.
    for (m, k, n) in [(64usize, 8usize, 128usize), (64, 128, 64), (256, 64, 32)] {
        let a = raw(&mat(m, k, 1));
        let b = raw(&mat(k, n, 2));
        let mut out = vec![0.0f32; m * n];
        let packed = PackedGemm::pack(&b, k, n);

        let name = format!("gemm/{m}x{k}x{n}");
        let mut group = c.benchmark_group(name.as_str());
        group.bench_function("reference", |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                gemm_ref_into(black_box(&a), black_box(&b), m, k, n, &mut out);
            });
        });
        group.bench_function("blocked", |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                gemm_into(black_box(&a), black_box(&b), m, k, n, &mut out);
            });
        });
        group.bench_function("packed", |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                packed.gemm_into(black_box(&a), m, &mut out);
            });
        });
        group.finish();
    }
}

fn bench_mlp_forward(c: &mut Criterion) {
    // The comm-model architecture at a 4-GPU feature width.
    let mlp = Mlp::new(11, &[128, 64, 32, 16], 1, 9);
    let quant = QuantizedMlp::from_mlp(&mlp);
    let mut scratch = MlpScratch::new();

    let mut group = c.benchmark_group("mlp_forward");
    for rows in [1usize, 16, 64] {
        let x = mat(rows, 11, 3);
        group.bench_with_input(BenchmarkId::new("alloc_f32", rows), &x, |b, x| {
            b.iter(|| mlp.forward(black_box(x)));
        });
        group.bench_with_input(BenchmarkId::new("scratch_f32", rows), &x, |b, x| {
            b.iter(|| {
                let y = mlp.forward_scratch(black_box(x), &mut scratch);
                black_box(y.get(0, 0))
            });
        });
        group.bench_with_input(BenchmarkId::new("scratch_int8", rows), &x, |b, x| {
            b.iter(|| {
                let y = quant.forward_scratch(black_box(x), &mut scratch);
                black_box(y.get(0, 0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_mlp_forward);
criterion_main!(benches);
