//! Criterion benchmarks of the online search: the greedy grid-search inner
//! loop and the full NeuroShard beam search, at the paper's hyperparameters
//! and at the smoke configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nshard_core::{greedy_grid::GreedyGridSearch, NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use nshard_data::{ShardingTask, TablePool};

fn quick_bundle(d: usize) -> CostModelBundle {
    let pool = TablePool::synthetic_dlrm(60, 1);
    CostModelBundle::pretrain(
        &pool,
        d,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        7,
    )
}

fn bench_greedy_grid(c: &mut Criterion) {
    let sim = CostSimulator::new(quick_bundle(4));
    let pool = TablePool::synthetic_dlrm(60, 2);
    let task = ShardingTask::sample(&pool, 4, 30..=30, 64, 5);
    let search = GreedyGridSearch::new(&sim, 11);
    c.bench_function("search/greedy_grid_30tables_4gpu", |b| {
        b.iter(|| {
            search
                .search(
                    black_box(task.tables()),
                    4,
                    task.mem_budget_bytes(),
                    task.batch_size(),
                )
                .expect("feasible")
        });
    });
}

fn bench_full_neuroshard(c: &mut Criterion) {
    let pool = TablePool::synthetic_dlrm(60, 2);
    let task = ShardingTask::sample(&pool, 4, 20..=20, 64, 5);
    let smoke = NeuroShard::new(quick_bundle(4), NeuroShardConfig::smoke());
    c.bench_function("search/neuroshard_smoke_20tables", |b| {
        b.iter(|| smoke.shard_with_stats(black_box(&task)).expect("feasible"));
    });
    let full = NeuroShard::new(quick_bundle(4), NeuroShardConfig::default());
    let mut group = c.benchmark_group("search/neuroshard_paper_params");
    group.sample_size(10);
    group.bench_function("20tables_4gpu", |b| {
        b.iter(|| full.shard_with_stats(black_box(&task)).expect("feasible"));
    });
    group.finish();
}

criterion_group!(benches, bench_greedy_grid, bench_full_neuroshard);
criterion_main!(benches);
