//! Criterion benchmarks of the replicated control plane's hot paths:
//! leader-side conditional upserts, follower-side sequence-gated apply
//! (in-order and fully reversed delivery), and snapshot restore — the
//! costs that bound a serve tier's replication throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nshard_serve::{LogFetch, MatchSeq, PlanKv};

/// A leader KV pre-filled with `n` plan-sized values, plus its op log.
fn filled(n: usize) -> (PlanKv, Vec<nshard_serve::LogOp>) {
    let kv = PlanKv::new(n.max(1));
    let value = "x".repeat(512); // a small stored-plan record
    for i in 0..n {
        kv.upsert(&format!("plans/{i:06}"), value.clone(), MatchSeq::Any)
            .unwrap();
    }
    let LogFetch::Ops(ops) = kv.log_since(0) else {
        panic!("log retained")
    };
    (kv, ops)
}

fn bench_upsert(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/upsert");
    group.sample_size(10);
    for n in [64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let kv = PlanKv::new(n);
                let value = "x".repeat(512);
                for i in 0..n {
                    kv.upsert(
                        black_box(&format!("plans/{i:06}")),
                        value.clone(),
                        MatchSeq::Exact(0),
                    )
                    .unwrap();
                }
                kv.applied_seq()
            });
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/apply");
    group.sample_size(10);
    for n in [64usize, 512] {
        let (_leader, ops) = filled(n);
        // In-order delivery: every op applies immediately.
        group.bench_with_input(BenchmarkId::new("in_order", n), &ops, |b, ops| {
            b.iter(|| {
                let replica = PlanKv::new(ops.len());
                for op in ops {
                    black_box(replica.apply(op.clone()));
                }
                replica.applied_seq()
            });
        });
        // Fully reversed delivery: worst-case buffering, one drain.
        group.bench_with_input(BenchmarkId::new("reversed", n), &ops, |b, ops| {
            b.iter(|| {
                let replica = PlanKv::new(ops.len());
                for op in ops.iter().rev() {
                    black_box(replica.apply(op.clone()));
                }
                replica.applied_seq()
            });
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/snapshot");
    group.sample_size(10);
    for n in [64usize, 512] {
        let (leader, _) = filled(n);
        let snapshot = leader.snapshot();
        group.bench_with_input(BenchmarkId::new("restore", n), &snapshot, |b, snapshot| {
            b.iter(|| {
                let replica = PlanKv::new(n);
                replica.restore(black_box(snapshot));
                replica.applied_seq()
            });
        });
        group.bench_with_input(BenchmarkId::new("digest", n), &leader, |b, leader| {
            b.iter(|| black_box(leader.digest()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_upsert, bench_apply, bench_snapshot);
criterion_main!(benches);
