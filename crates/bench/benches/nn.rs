//! Criterion benchmarks of the neural-network substrate: forward and
//! backward passes of the paper's three architectures and one Adam step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nshard_nn::{Adam, Matrix, Mlp};

fn bench_forward(c: &mut Criterion) {
    // The three architectures of Figure 5 (+ head).
    let encoder = Mlp::new(8, &[128], 32, 0); // table encoder
    let head = Mlp::new(32, &[64], 1, 1); // combination head
    let comm = Mlp::new(11, &[128, 64, 32, 16], 1, 2); // comm model (4 GPUs)

    let x8 = Matrix::zeros(8, 8);
    c.bench_function("nn/encoder_forward_8tables", |b| {
        b.iter(|| encoder.forward(black_box(&x8)));
    });
    let x1 = Matrix::zeros(1, 32);
    c.bench_function("nn/head_forward", |b| {
        b.iter(|| head.forward(black_box(&x1)));
    });
    let xc = Matrix::zeros(1, 11);
    c.bench_function("nn/comm_forward", |b| {
        b.iter(|| comm.forward(black_box(&xc)));
    });
}

fn bench_backward_and_adam(c: &mut Criterion) {
    let mlp = Mlp::new(8, &[128], 32, 0);
    let x = Matrix::zeros(16, 8);
    let dy = Matrix::zeros(16, 32);
    c.bench_function("nn/forward_backward_batch16", |b| {
        b.iter(|| {
            let (_, cache) = mlp.forward_cached(black_box(&x));
            mlp.backward(&cache, black_box(&dy))
        });
    });

    let mut model = Mlp::new(8, &[128], 32, 0);
    let mut adam = Adam::new(&model, 1e-3);
    let (_, cache) = model.forward_cached(&x);
    let (_, grads) = model.backward(&cache, &dy);
    c.bench_function("nn/adam_step", |b| {
        b.iter(|| adam.step(&mut model, black_box(&grads)));
    });
}

criterion_group!(benches, bench_forward, bench_backward_and_adam);
criterion_main!(benches);
