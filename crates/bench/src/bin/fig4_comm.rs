//! Figure 4: max forward/backward communication cost vs. max device
//! dimension, on 4 and 8 GPUs.
//!
//! Uses the paper's random-placement generator (Algorithm 5) to cover
//! different degrees of balance, measures the all-to-all collectives, and
//! reports the correlation behind Observation 3.
//!
//! Usage: `fig4_comm [--placements 50] [--seed 2] [--out fig4.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, pearson, print_markdown_table, Args};
use nshard_data::{augment_pool, PlacementGenerator, TablePool, PAPER_DIMS};
use nshard_sim::{CommParams, NoiseModel};

#[derive(Serialize)]
struct Series {
    num_gpus: usize,
    max_device_dim: Vec<f64>,
    max_fwd_comm_ms: Vec<f64>,
    max_bwd_comm_ms: Vec<f64>,
    fwd_correlation: f64,
    bwd_correlation: f64,
}

#[derive(Serialize)]
struct Output {
    series: Vec<Series>,
    observation3_holds: bool,
}

fn main() {
    let args = Args::from_env();
    let placements: usize = args.get("placements", 50);
    let seed: u64 = args.get("seed", 2);

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let comm = CommParams::pcie_server();
    let noise = NoiseModel::new(seed, 0.02);

    let mut output = Output {
        series: Vec::new(),
        observation3_holds: true,
    };

    // Per Appendix A.3: each table gets a random dimension from
    // {4, ..., 128} (drawn from the augmented pool) and all GPUs join the
    // collective simultaneously, isolating the placement's effect.
    let augmented = augment_pool(&pool, &PAPER_DIMS);
    for (d, t_min, t_max) in [(4usize, 40usize, 40usize), (8, 80, 80)] {
        let generator =
            PlacementGenerator::new(augmented.clone(), d, t_min, t_max).with_max_start_ms(0.0);
        let ps = generator.generate(placements, seed ^ d as u64);
        let mut max_dims = Vec::new();
        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        for p in &ps {
            let dims = p.device_dims();
            let costs = comm.measure_costs_ms(&dims, &p.start_ts_ms, 65_536, &noise, 21);
            max_dims.push(p.max_device_dim());
            fwd.push(costs.max_fwd_ms());
            bwd.push(costs.max_bwd_ms());
        }
        let rf = pearson(&max_dims, &fwd);
        let rb = pearson(&max_dims, &bwd);
        println!("# Figure 4 — {d} GPUs: max comm cost vs. max device dimension\n");
        let rows: Vec<Vec<String>> = max_dims
            .iter()
            .zip(fwd.iter().zip(&bwd))
            .take(12)
            .map(|(dim, (f, b))| vec![format!("{dim:.0}"), format!("{f:.2}"), format!("{b:.2}")])
            .collect();
        print_markdown_table(
            &["max device dim", "max fwd comm (ms)", "max bwd comm (ms)"],
            &rows,
        );
        println!("(first 12 of {placements} placements shown)");
        println!("Pearson r: fwd {rf:.3}, bwd {rb:.3}\n");
        // Observation 3: strong positive correlation. The paper's scatter
        // is roughly linear; anything above 0.6 with start-time skew in the
        // mix is a clear positive trend.
        if rf < 0.6 || rb < 0.6 {
            output.observation3_holds = false;
        }
        output.series.push(Series {
            num_gpus: d,
            max_device_dim: max_dims,
            max_fwd_comm_ms: fwd,
            max_bwd_comm_ms: bwd,
            fwd_correlation: rf,
            bwd_correlation: rb,
        });
    }

    println!(
        "Observation 3 (max comm cost positively correlates with max device dim): {}",
        if output.observation3_holds {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    maybe_write_json(&args, &output);
}
