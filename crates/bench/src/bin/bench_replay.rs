//! Million-request replay harness for the event-driven serving core.
//!
//! Replays seeded open-loop request streams against a live daemon over
//! the paper's 856-table pool across simulated GPU tiers (8–128) and
//! three arrival processes:
//!
//! * **steady** — a constant in-flight window well under the admission
//!   queue, so nothing is shed;
//! * **burst** — on/off windows far over queue capacity, so admission
//!   control must shed the excess with `429`s;
//! * **diurnal** — a deterministic sinusoidal window sweep between the
//!   two, the paper's recurring-drift serving story.
//!
//! Requests are HTTP/1.1 keep-alive and pipelined (the reactor's whole
//! point); a deterministic mix of `POST /v1/plan` and `POST /v1/replan`
//! bodies is drawn per tier from the 856-table pool. Distinct bodies per
//! cell are planned by the full search once and then served from the
//! identical-request response cache, which is what makes a million
//! requests tractable on one core while still exercising the complete
//! accept→parse→admit→queue→respond path per request.
//!
//! A separate comparison phase drives the **same** workload through the
//! event reactor and through the blocking thread-per-connection
//! reference from 64 keep-alive client connections, recording the
//! throughput ratio.
//!
//! Gates (asserted and recorded in the JSON artifact):
//! * replayed requests ≥ 1,000,000 (≥ 10,000 with `--smoke`);
//! * zero transport-level failures;
//! * steady cells shed ≤ 1% while every burst cell sheds > 0;
//! * event-path throughput ≥ 5× blocking-path at 64 connections.
//!
//! Usage: `bench_replay [--smoke] [--per-cell 67000] [--compare 4000]
//! [--seed 2023] [--out BENCH_replay.json]`

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_core::NeuroShardConfig;
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_serve::{http_call, IoMode, KeepAliveClient, ServeConfig, Server, Service};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GPU tiers swept by the replay, 8 → 128 as in the paper's scaling
/// experiments.
const GPU_TIERS: [usize; 5] = [8, 16, 32, 64, 128];

/// Arrival processes replayed per tier.
const PROCESSES: [ArrivalProcess; 3] = [
    ArrivalProcess::Steady,
    ArrivalProcess::Burst,
    ArrivalProcess::Diurnal,
];

/// Client connections per replay cell.
const CELL_CONNS: usize = 8;

/// Client connections in the event-vs-blocking comparison phase.
const COMPARE_CONNS: usize = 64;

#[derive(Clone, Copy, PartialEq, Eq)]
enum ArrivalProcess {
    Steady,
    Burst,
    Diurnal,
}

impl ArrivalProcess {
    fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Steady => "steady",
            ArrivalProcess::Burst => "burst",
            ArrivalProcess::Diurnal => "diurnal",
        }
    }

    /// Pipelined-window size for step `i` of a connection's schedule —
    /// the open-loop arrival process, in requests instead of wall time:
    /// each step offers a window of requests back-to-back on the wire
    /// without waiting for responses.
    fn window(self, i: usize) -> usize {
        match self {
            // Constant trickle: total in-flight stays far below queue
            // capacity, nothing should shed.
            ArrivalProcess::Steady => 8,
            // On/off: three quiet steps, then a slam far over queue
            // capacity across the connection fleet.
            ArrivalProcess::Burst => {
                if i % 4 == 3 {
                    64
                } else {
                    4
                }
            }
            // A deterministic "day": window sweeps 4 → 60 → 4 over a
            // 16-step period.
            ArrivalProcess::Diurnal => {
                let phase = (i % 16) as f64 / 16.0 * std::f64::consts::TAU;
                (32.0 - 28.0 * phase.cos()).round() as usize
            }
        }
    }
}

/// One request on the wire, pre-serialized with keep-alive framing.
struct WireRequest {
    raw: Vec<u8>,
}

fn wire_request(path: &str, body: &str) -> WireRequest {
    WireRequest {
        raw: format!(
            "POST {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
    }
}

/// Reads one `Content-Length`-framed HTTP response; returns its status.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<u16> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-stream",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().to_string())
        {
            content_length = v.parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
            })?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

/// Replays `schedule`-shaped pipelined windows of `requests` (cycled by
/// global index) over one keep-alive connection; returns per-request
/// `(status, latency_ms)`.
fn replay_connection(
    addr: &str,
    requests: &[WireRequest],
    process: ArrivalProcess,
    quota: &AtomicUsize,
) -> std::io::Result<Vec<(u16, f64)>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut out = Vec::new();
    let mut step = 0usize;
    loop {
        let window = process.window(step).max(1);
        step += 1;
        // Claim up to `window` requests from the cell-wide quota.
        let mut claimed = 0usize;
        while claimed < window {
            let prev = quota.fetch_sub(1, Ordering::SeqCst);
            if prev == 0 || prev > usize::MAX / 2 {
                quota.fetch_add(1, Ordering::SeqCst); // underflow guard
                break;
            }
            claimed += 1;
        }
        if claimed == 0 {
            return Ok(out);
        }
        // Open loop: write the whole window back-to-back, then drain the
        // responses.
        let mut batch = Vec::new();
        let mut starts = Vec::with_capacity(claimed);
        for i in 0..claimed {
            batch.extend_from_slice(&requests[(out.len() + i) % requests.len()].raw);
        }
        let written = Instant::now();
        writer.write_all(&batch)?;
        writer.flush()?;
        for _ in 0..claimed {
            starts.push(written);
        }
        for start in starts {
            let status = read_response(&mut reader)?;
            out.push((status, start.elapsed().as_secs_f64() * 1e3));
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One replayed (tier × arrival-process) cell.
#[derive(Serialize)]
struct Cell {
    gpus: usize,
    process: String,
    offered: usize,
    admitted_200: usize,
    shed_429: usize,
    expired_503: usize,
    other: usize,
    transport_errors: usize,
    wall_clock_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    shed_rate: f64,
}

#[derive(Serialize)]
struct Comparison {
    connections: usize,
    requests_each: usize,
    event_rps: f64,
    event_p99_ms: f64,
    blocking_rps: f64,
    blocking_p99_ms: f64,
    blocking_reconnects: u64,
    speedup: f64,
}

#[derive(Serialize)]
struct Gates {
    /// Replay volume met the scale floor (1M full / 10k smoke).
    volume: bool,
    volume_floor: usize,
    /// Zero transport-level failures across the replay.
    no_transport_errors: bool,
    /// Every steady cell shed ≤ 1% of offered load.
    steady_cells_clean: bool,
    /// Every burst cell shed at least one request.
    burst_cells_shed: bool,
    /// Event path ≥ 5× blocking throughput at 64 connections.
    event_speedup_5x: bool,
    pass: bool,
}

#[derive(Serialize)]
struct Output {
    pool_tables: usize,
    seed: u64,
    smoke: bool,
    per_cell_requests: usize,
    total_requests: usize,
    queue_capacity: usize,
    cells: Vec<Cell>,
    comparison: Comparison,
    gates: Gates,
}

/// Deterministic plan/replan body mix for one GPU tier, drawn from the
/// 856-table pool.
fn bodies_for_tier(pool: &TablePool, gpus: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (gpus as u64).wrapping_mul(0x9E37_79B9));
    let tables_per_task = (16 + 2 * gpus).min(128);
    // Six distinct tasks per tier: enough body diversity to exercise the
    // cache and the store, few enough that the full-search warmups stay
    // a small prefix of the cell.
    (0..6)
        .map(|i| {
            let tables = pool.sample_tables(tables_per_task, &mut rng);
            let task = ShardingTask::new(tables, gpus, 4 << 30, 4096);
            let task_json = serde_json::to_string(&task).expect("tasks serialize");
            // Mix: two thirds plan, one third replan (warm-started from
            // whatever incumbent the tier has adopted).
            if i % 3 == 2 {
                (
                    "/v1/replan".to_string(),
                    format!("{{\"task\":{task_json}}}"),
                )
            } else {
                ("/v1/plan".to_string(), format!("{{\"task\":{task_json}}}"))
            }
        })
        .collect()
}

/// Deterministic "churn" bodies for one tier: drifted tasks under a
/// 1 ms deadline, the recurring-drift traffic that can never be served
/// from the response cache (`503`s are not cached). Under a burst these
/// are what pile into — and overflow — the admission queue.
fn churn_bodies_for_tier(pool: &TablePool, gpus: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD81F ^ (gpus as u64).rotate_left(17));
    (0..64)
        .map(|_| {
            let task = ShardingTask::new(pool.sample_tables(32, &mut rng), gpus, 4 << 30, 4096);
            format!(
                "{{\"task\":{},\"deadline_ms\":1}}",
                serde_json::to_string(&task).expect("tasks serialize")
            )
        })
        .collect()
}

/// Drives one cell: `CELL_CONNS` keep-alive connections replaying
/// `offered` requests shaped by `process`.
fn run_cell(
    addr: &str,
    requests: Arc<Vec<WireRequest>>,
    gpus: usize,
    process: ArrivalProcess,
    offered: usize,
) -> Cell {
    let quota = Arc::new(AtomicUsize::new(offered));
    let started = Instant::now();
    let handles: Vec<_> = (0..CELL_CONNS)
        .map(|_| {
            let addr = addr.to_string();
            let requests = Arc::clone(&requests);
            let quota = Arc::clone(&quota);
            std::thread::spawn(move || replay_connection(&addr, &requests, process, &quota))
        })
        .collect();
    let mut results: Vec<(u16, f64)> = Vec::with_capacity(offered);
    let mut transport_errors = 0usize;
    for handle in handles {
        match handle.join().expect("replay connection thread") {
            Ok(mut r) => results.append(&mut r),
            Err(e) => {
                eprintln!("  transport error on {gpus}-gpu {}: {e}", process.name());
                transport_errors += 1;
            }
        }
    }
    let wall_clock_s = started.elapsed().as_secs_f64();
    let mut admitted: Vec<f64> = results
        .iter()
        .filter(|(s, _)| *s == 200)
        .map(|(_, ms)| *ms)
        .collect();
    admitted.sort_by(|a, b| a.total_cmp(b));
    let count = |code: u16| results.iter().filter(|(s, _)| *s == code).count();
    let admitted_200 = count(200);
    let shed_429 = count(429);
    let expired_503 = count(503);
    Cell {
        gpus,
        process: process.name().to_string(),
        offered: results.len(),
        admitted_200,
        shed_429,
        expired_503,
        other: results.len() - admitted_200 - shed_429 - expired_503,
        transport_errors,
        wall_clock_s,
        throughput_rps: admitted_200 as f64 / wall_clock_s.max(1e-9),
        p50_ms: percentile(&admitted, 0.50),
        p95_ms: percentile(&admitted, 0.95),
        p99_ms: percentile(&admitted, 0.99),
        shed_rate: if results.is_empty() {
            0.0
        } else {
            shed_429 as f64 / results.len() as f64
        },
    }
}

/// The 64-connection event-vs-blocking throughput comparison over one
/// shared cache-warm plan body.
fn run_comparison(bundle: &CostModelBundle, body: String, requests_each: usize) -> Comparison {
    let serve = |io_mode: IoMode| {
        let config = ServeConfig {
            search: NeuroShardConfig::smoke(),
            io_mode,
            response_cache_entries: 64,
            queue_capacity: 1024,
            workers: 2,
            seed: 7,
            ..ServeConfig::default()
        };
        let service = Arc::new(Service::new(bundle.clone(), config).expect("service boots"));
        Server::start(service, "127.0.0.1:0").expect("server binds")
    };

    // Event path: 64 keep-alive connections in their operating mode —
    // pipelined windows of requests per connection (what the reactor
    // exists to serve). The blocking reference physically cannot do
    // this: it closes after every response.
    let event = serve(IoMode::Event);
    let addr = event.addr().to_string();
    // Warm the response cache so both paths serve the same cached plan.
    let (status, _) = http_call(&addr, "POST", "/v1/plan", body.as_bytes()).expect("warmup");
    assert_eq!(status, 200, "comparison warmup must plan");
    let requests: Arc<Vec<WireRequest>> = Arc::new(vec![wire_request("/v1/plan", &body)]);
    let quota = Arc::new(AtomicUsize::new(COMPARE_CONNS * requests_each));
    let started = Instant::now();
    let handles: Vec<_> = (0..COMPARE_CONNS)
        .map(|_| {
            let addr = addr.clone();
            let requests = Arc::clone(&requests);
            let quota = Arc::clone(&quota);
            std::thread::spawn(move || {
                replay_connection(&addr, &requests, ArrivalProcess::Steady, &quota)
                    .expect("event-path connection")
            })
        })
        .collect();
    let mut event_lat: Vec<f64> = Vec::new();
    for handle in handles {
        for (status, ms) in handle.join().expect("event client") {
            assert_eq!(status, 200, "comparison requests must all be admitted");
            event_lat.push(ms);
        }
    }
    let event_wall = started.elapsed().as_secs_f64();
    event.shutdown();
    event_lat.sort_by(|a, b| a.total_cmp(b));

    // Blocking path: same fleet; the blocking server closes after every
    // response, so each call pays connect + accept-thread + teardown.
    let blocking = serve(IoMode::Blocking);
    let addr = blocking.addr().to_string();
    let (status, _) = http_call(&addr, "POST", "/v1/plan", body.as_bytes()).expect("warmup");
    assert_eq!(status, 200);
    let reconnects = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..COMPARE_CONNS)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            let reconnects = Arc::clone(&reconnects);
            std::thread::spawn(move || {
                // KeepAliveClient against a `Connection: close` server
                // reconnects for every request — exactly the blocking
                // path's connection cost, measured by the same client.
                let mut client = KeepAliveClient::new(addr);
                let mut latencies = Vec::with_capacity(requests_each);
                for _ in 0..requests_each {
                    let t0 = Instant::now();
                    let (status, _) = client
                        .call("POST", "/v1/plan", body.as_bytes())
                        .expect("blocking-path call");
                    assert_eq!(status, 200);
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                reconnects.fetch_add(client.reconnects() as usize, Ordering::SeqCst);
                latencies
            })
        })
        .collect();
    let mut blocking_lat: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("blocking client"))
        .collect();
    let blocking_wall = started.elapsed().as_secs_f64();
    blocking.shutdown();
    blocking_lat.sort_by(|a, b| a.total_cmp(b));

    let event_rps = event_lat.len() as f64 / event_wall.max(1e-9);
    let blocking_rps = blocking_lat.len() as f64 / blocking_wall.max(1e-9);
    Comparison {
        connections: COMPARE_CONNS,
        requests_each,
        event_rps,
        event_p99_ms: percentile(&event_lat, 0.99),
        blocking_rps,
        blocking_p99_ms: percentile(&blocking_lat, 0.99),
        blocking_reconnects: reconnects.load(Ordering::SeqCst) as u64,
        speedup: event_rps / blocking_rps.max(1e-9),
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let seed: u64 = args.get("seed", 2023);
    let per_cell: usize = args.get("per-cell", if smoke { 700 } else { 67_000 });
    let compare_each: usize = args.get("compare", if smoke { 30 } else { 120 });
    let volume_floor = if smoke { 10_000 } else { 1_000_000 };

    let pool = TablePool::synthetic_dlrm(856, seed);
    // Sized against the arrival processes: steady keeps at most ~16
    // churn requests outstanding (under capacity, nothing sheds); burst
    // and diurnal slam up to ~128 (4x capacity, the excess sheds).
    let queue_capacity = 32usize;
    let mut cells = Vec::new();
    let mut total = 0usize;
    let mut tier8_bundle: Option<CostModelBundle> = None;
    for gpus in GPU_TIERS {
        // Cost models are pre-trained per device count (the bundle's
        // simulator asserts plan/device agreement), so each tier gets
        // its own smoke-settings bundle over the same 856-table pool.
        eprintln!("pre-training {gpus}-gpu cost models on the 856-table pool...");
        let t0 = Instant::now();
        let bundle = CostModelBundle::pretrain(
            &pool,
            gpus,
            &CollectConfig::smoke(),
            &TrainSettings::smoke(),
            seed,
        );
        eprintln!("  pre-trained in {:.1}s", t0.elapsed().as_secs_f64());
        if gpus == 8 {
            tier8_bundle = Some(bundle.clone());
        }

        // One event-mode daemon serves the tier's replay cells: the
        // response cache makes repeat bodies O(lookup) so a million
        // requests measure the serving core, not the search; the six
        // distinct bodies per cell still run the full chain once each.
        let config = ServeConfig {
            search: NeuroShardConfig::smoke(),
            io_mode: IoMode::Event,
            response_cache_entries: 1024,
            queue_capacity,
            workers: 2,
            seed,
            ..ServeConfig::default()
        };
        let service = Arc::new(Service::new(bundle, config).expect("service boots"));
        let server = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
        let addr = server.addr().to_string();
        let bodies = bodies_for_tier(&pool, gpus, seed);
        // Warm sequentially: every distinct body plans through the full
        // chain once (adopting an incumbent for the replans) before the
        // open-loop flood, so cell latencies measure the serving core.
        // Two passes — the replan cache key folds the store generation,
        // which only stabilizes once the first pass has adopted every
        // distinct plan.
        for _ in 0..2 {
            for (path, body) in &bodies {
                let (status, _) =
                    http_call(&addr, "POST", path, body.as_bytes()).expect("warmup call");
                assert_eq!(status, 200, "warmup {path} must succeed at {gpus} GPUs");
            }
        }
        // The cell's wire sequence: three cache-warm repeats, then one
        // churn request, repeating — a 25% stream of novel drifted
        // tasks that must take the worker path. Cache hits answer
        // inline; churn under burst is what fills (and overflows) the
        // admission queue.
        let churn = churn_bodies_for_tier(&pool, gpus, seed);
        let requests: Arc<Vec<WireRequest>> = Arc::new(
            (0..256)
                .map(|j| {
                    if j % 4 == 3 {
                        wire_request("/v1/plan", &churn[(j / 4) % churn.len()])
                    } else {
                        let (path, body) = &bodies[j % bodies.len()];
                        wire_request(path, body)
                    }
                })
                .collect(),
        );
        for process in PROCESSES {
            let cell = run_cell(&addr, Arc::clone(&requests), gpus, process, per_cell);
            eprintln!(
                "  {:>3} gpus {:>7}: {} offered, {:.0} rps, p99 {:.2} ms, shed {:.2}%",
                gpus,
                process.name(),
                cell.offered,
                cell.throughput_rps,
                cell.p99_ms,
                cell.shed_rate * 100.0
            );
            total += cell.offered;
            cells.push(cell);
        }
        server.shutdown();
    }
    let tier8_bundle = tier8_bundle.expect("8-gpu tier ran");

    eprintln!("comparison phase: {COMPARE_CONNS} connections, event vs blocking...");
    // A small task (8 tables), so the shared worker path — cache lookup
    // plus a small response — is cheap and the comparison isolates what
    // actually differs between the modes: per-connection cost.
    let compare_body = {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let task = ShardingTask::new(pool.sample_tables(8, &mut rng), 8, 4 << 30, 4096);
        format!(
            "{{\"task\":{}}}",
            serde_json::to_string(&task).expect("tasks serialize")
        )
    };
    let comparison = run_comparison(&tier8_bundle, compare_body, compare_each);
    eprintln!(
        "  event {:.0} rps vs blocking {:.0} rps — {:.1}x ({} reconnects)",
        comparison.event_rps,
        comparison.blocking_rps,
        comparison.speedup,
        comparison.blocking_reconnects
    );

    let transport_errors: usize = cells.iter().map(|c| c.transport_errors).sum();
    let gates = Gates {
        volume: total >= volume_floor,
        volume_floor,
        no_transport_errors: transport_errors == 0,
        steady_cells_clean: cells
            .iter()
            .filter(|c| c.process == "steady")
            .all(|c| c.shed_rate <= 0.01),
        burst_cells_shed: cells
            .iter()
            .filter(|c| c.process == "burst")
            .all(|c| c.shed_429 > 0),
        event_speedup_5x: comparison.speedup >= 5.0,
        pass: false,
    };
    let pass = gates.volume
        && gates.no_transport_errors
        && gates.steady_cells_clean
        && gates.burst_cells_shed
        && gates.event_speedup_5x;
    let gates = Gates { pass, ..gates };

    print_markdown_table(
        &[
            "gpus", "process", "offered", "200", "429", "503", "rps", "p50 ms", "p99 ms", "shed %",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.gpus.to_string(),
                    c.process.clone(),
                    c.offered.to_string(),
                    c.admitted_200.to_string(),
                    c.shed_429.to_string(),
                    c.expired_503.to_string(),
                    format!("{:.0}", c.throughput_rps),
                    format!("{:.2}", c.p50_ms),
                    format!("{:.2}", c.p99_ms),
                    format!("{:.2}", c.shed_rate * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ntotal replayed: {total} (floor {volume_floor}); event/blocking speedup {:.1}x",
        comparison.speedup
    );
    println!(
        "gates: volume={} no_transport_errors={} steady_clean={} burst_shed={} speedup_5x={} pass={}",
        gates.volume,
        gates.no_transport_errors,
        gates.steady_cells_clean,
        gates.burst_cells_shed,
        gates.event_speedup_5x,
        gates.pass
    );

    let output = Output {
        pool_tables: pool.len(),
        seed,
        smoke,
        per_cell_requests: per_cell,
        total_requests: total,
        queue_capacity,
        cells,
        comparison,
        gates,
    };
    maybe_write_json(&args, &output);
    assert!(pass, "bench_replay gates failed");
}
