//! Table 1: the main comparison — embedding cost of NeuroShard vs. every
//! baseline across {4, 8} GPUs × max table dimension {4, 8, 16, 32, 64,
//! 128}, averaged over randomly constructed sharding tasks.
//!
//! The paper runs 100 tasks per cell; the default here is 10 to keep the
//! full grid in minutes — pass `--tasks 100` for the paper-scale run.
//!
//! Usage:
//! `table1_main [--tasks 10] [--gpus 0(=both)|4|8] [--compute-samples 8000]
//!  [--comm-samples 6000] [--epochs 30] [--seed 3] [--skip-rl]
//!  [--threads 0(=auto)] [--out t1.json]`
//!
//! `--threads` sets the worker-thread count for every stage — label
//! collection, model training, and the search (0 = auto via
//! `NSHARD_THREADS` or available parallelism); datasets, trained weights,
//! and plans are all bit-identical at any count.

use serde::Serialize;

use nshard_baselines::{
    DimGreedy, LookupGreedy, RandomSharding, RlSharder, RlVariant, ShardingAlgorithm, SizeGreedy,
    SizeLookupGreedy, TorchRecLikePlanner,
};
use nshard_bench::{evaluate_method, maybe_write_json, print_markdown_table, Args, MethodRow};
use nshard_core::{NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct Cell {
    num_gpus: usize,
    max_dim: u32,
    rows: Vec<MethodRow>,
    improvement_over_best_baseline_pct: Option<f64>,
}

#[derive(Serialize)]
struct Output {
    tasks_per_cell: usize,
    cells: Vec<Cell>,
}

fn main() {
    let args = Args::from_env();
    let tasks_per_cell: usize = args.get("tasks", 10);
    let gpus_filter: usize = args.get("gpus", 0);
    let seed: u64 = args.get("seed", 3);
    let skip_rl = args.has("skip-rl");
    let threads: usize = args.get("threads", 0);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 6000),
        threads,
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        threads,
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    let mut output = Output {
        tasks_per_cell,
        cells: Vec::new(),
    };

    for d in [4usize, 8] {
        if gpus_filter != 0 && gpus_filter != d {
            continue;
        }
        eprintln!("pre-training cost models for {d} GPUs...");
        let t0 = std::time::Instant::now();
        let bundle = CostModelBundle::pretrain(&pool, d, &collect, &train, seed);
        eprintln!(
            "  done in {:.1}s (compute MSE {:.3}, fwd {:.3}, bwd {:.3})",
            t0.elapsed().as_secs_f64(),
            bundle.report().compute_test_mse,
            bundle.report().fwd_comm_test_mse,
            bundle.report().bwd_comm_test_mse
        );
        let neuroshard = NeuroShard::new(
            bundle,
            NeuroShardConfig {
                threads,
                ..NeuroShardConfig::default()
            },
        );
        let (t_min, t_max) = if d == 4 { (10, 60) } else { (20, 120) };

        for j in 2..=7u32 {
            let max_dim = 1u32 << j;
            let tasks: Vec<ShardingTask> = (0..tasks_per_cell)
                .map(|i| {
                    ShardingTask::sample(
                        &pool,
                        d,
                        t_min..=t_max,
                        max_dim,
                        seed ^ (u64::from(max_dim) << 32) ^ (d as u64) << 24 ^ i as u64,
                    )
                })
                .collect();

            let mut algos: Vec<Box<dyn ShardingAlgorithm>> = vec![
                Box::new(RandomSharding::new(seed)),
                Box::new(SizeGreedy),
                Box::new(DimGreedy),
                Box::new(LookupGreedy),
                Box::new(SizeLookupGreedy),
            ];
            if !skip_rl {
                algos.push(Box::new(RlSharder::new(RlVariant::AutoShardLike, seed)));
                algos.push(Box::new(RlSharder::new(RlVariant::DreamShardLike, seed)));
            }
            algos.push(Box::new(TorchRecLikePlanner::default()));

            let mut rows: Vec<MethodRow> = algos
                .iter()
                .map(|a| evaluate_method(a.as_ref(), &tasks, &spec, seed))
                .collect();
            rows.push(evaluate_method(&neuroshard, &tasks, &spec, seed));

            // Improvement of NeuroShard over the strongest scalable baseline.
            let ns_cost = rows.last().and_then(|r| r.mean_cost_ms);
            let best_baseline = rows[..rows.len() - 1]
                .iter()
                .filter_map(|r| r.mean_cost_ms)
                .fold(f64::INFINITY, f64::min);
            let improvement = match (ns_cost, best_baseline.is_finite()) {
                (Some(ns), true) => Some((best_baseline - ns) / best_baseline * 100.0),
                _ => None,
            };

            println!("\n## {d} GPUs, max dim {max_dim} ({tasks_per_cell} tasks)\n");
            let table_rows: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        r.cost_display(),
                        format!("{}/{}", r.successes, r.total),
                        format!("{:.2}s", r.mean_time_s),
                    ]
                })
                .collect();
            print_markdown_table(
                &["method", "cost (ms)", "success", "time/task"],
                &table_rows,
            );
            if let Some(imp) = improvement {
                println!("\nNeuroShard improvement over strongest baseline: {imp:+.1}%");
            }

            output.cells.push(Cell {
                num_gpus: d,
                max_dim,
                rows,
                improvement_over_best_baseline_pct: improvement,
            });
        }
    }

    maybe_write_json(&args, &output);
}
