//! Figure 8 (middle + right): cost-model quality and end-to-end sharding
//! quality vs. the number of pre-training samples.
//!
//! Sweeps the sample count over powers of ten (paper: 10² to 10⁵), training
//! a fresh bundle at each point, and reports (middle) the test MSEs and
//! (right) the mean real embedding cost NeuroShard achieves with that
//! bundle on a fixed task set (max dim 128, 4 GPUs).
//!
//! Usage:
//! `fig8_samples [--points 1e2,1e3,1e4] [--tasks 8] [--epochs 30] [--seed 6]`

use serde::Serialize;

use nshard_bench::{evaluate_method, maybe_write_json, print_markdown_table, Args};
use nshard_core::{NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct Point {
    samples: usize,
    compute_mse: f32,
    fwd_comm_mse: f32,
    bwd_comm_mse: f32,
    mean_cost_ms: Option<f64>,
    success_rate: f64,
}

#[derive(Serialize)]
struct Output {
    points: Vec<Point>,
}

fn main() {
    let args = Args::from_env();
    let tasks_n: usize = args.get("tasks", 8);
    let seed: u64 = args.get("seed", 6);
    let points_arg = args
        .get_opt("points")
        .unwrap_or_else(|| "100,1000,10000".to_string());
    let sample_points: Vec<usize> = points_arg
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("bad --points entry {s}: {e}")) as usize
        })
        .collect();
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    let tasks: Vec<ShardingTask> = (0..tasks_n)
        .map(|i| ShardingTask::sample(&pool, 4, 10..=60, 128, seed ^ 0x9000 ^ i as u64))
        .collect();

    let mut output = Output { points: Vec::new() };
    for &samples in &sample_points {
        eprintln!("training with {samples} samples...");
        let collect = CollectConfig {
            compute_samples: samples,
            comm_samples: samples,
            ..CollectConfig::default()
        };
        let bundle = CostModelBundle::pretrain(&pool, 4, &collect, &train, seed);
        let report = *bundle.report();
        let sharder = NeuroShard::new(bundle, NeuroShardConfig::default());
        let row = evaluate_method(&sharder, &tasks, &spec, seed);
        output.points.push(Point {
            samples,
            compute_mse: report.compute_test_mse,
            fwd_comm_mse: report.fwd_comm_test_mse,
            bwd_comm_mse: report.bwd_comm_test_mse,
            mean_cost_ms: row.mean_cost_ms.or(row.mean_cost_valid_ms),
            success_rate: row.success_rate(),
        });
    }

    println!("# Figure 8 (middle) — test MSE vs. training samples\n");
    let rows: Vec<Vec<String>> = output
        .points
        .iter()
        .map(|p| {
            vec![
                p.samples.to_string(),
                format!("{:.3}", p.compute_mse),
                format!("{:.3}", p.fwd_comm_mse),
                format!("{:.3}", p.bwd_comm_mse),
            ]
        })
        .collect();
    print_markdown_table(
        &["samples", "compute MSE", "fwd comm MSE", "bwd comm MSE"],
        &rows,
    );

    println!(
        "\n# Figure 8 (right) — sharding quality vs. training samples (max dim 128, 4 GPUs)\n"
    );
    let rows: Vec<Vec<String>> = output
        .points
        .iter()
        .map(|p| {
            vec![
                p.samples.to_string(),
                p.mean_cost_ms.map_or("-".into(), |c| format!("{c:.2}")),
                format!("{:.0}%", p.success_rate * 100.0),
            ]
        })
        .collect();
    print_markdown_table(&["samples", "embedding cost (ms)", "success"], &rows);
    println!(
        "\n(The paper's takeaway: even ~10^2 samples already yield strong sharding, \
         while MSE keeps improving with more data.)"
    );

    maybe_write_json(&args, &output);
}
