//! Figure 8 (left): simulation costs estimated by the neural cost models
//! vs. real costs measured on the (simulated) GPUs, for random sharding
//! plans.
//!
//! Usage:
//! `fig8_scatter [--plans 100] [--gpus 4] [--compute-samples 8000]
//!  [--epochs 30] [--seed 5] [--out fig8_left.json]`

use serde::Serialize;

use nshard_baselines::{RandomSharding, ShardingAlgorithm};
use nshard_bench::{maybe_write_json, pearson, print_markdown_table, Args};
use nshard_core::evaluate_plan;
use nshard_cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct Output {
    simulated_ms: Vec<f64>,
    real_ms: Vec<f64>,
    correlation: f64,
    mean_abs_err_ms: f64,
}

fn main() {
    let args = Args::from_env();
    let plans: usize = args.get("plans", 100);
    let d: usize = args.get("gpus", 4);
    let seed: u64 = args.get("seed", 5);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 6000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    eprintln!("pre-training bundle for {d} GPUs...");
    let bundle = CostModelBundle::pretrain(&pool, d, &collect, &train, seed);
    let sim = CostSimulator::new(bundle);

    let mut simulated = Vec::new();
    let mut real = Vec::new();
    let mut attempts = 0u64;
    while simulated.len() < plans {
        let task = ShardingTask::sample(&pool, d, 10..=60, 64, seed ^ attempts);
        attempts += 1;
        let sharder = RandomSharding::new(seed ^ attempts);
        let Ok(plan) = sharder.shard(&task) else {
            continue;
        };
        // Random plans can overflow memory; Figure 8 only scatters valid ones.
        let Ok(costs) = evaluate_plan(&task, &plan, &spec, seed ^ attempts) else {
            continue;
        };
        let est = sim.estimate_plan(&plan.device_profiles(task.batch_size()));
        simulated.push(est.total_ms());
        real.push(costs.max_total_ms());
    }

    let r = pearson(&simulated, &real);
    let mae = simulated
        .iter()
        .zip(&real)
        .map(|(s, g)| (s - g).abs())
        .sum::<f64>()
        / plans as f64;

    println!("# Figure 8 (left) — simulated vs. real cost for {plans} random plans\n");
    let rows: Vec<Vec<String>> = simulated
        .iter()
        .zip(&real)
        .take(15)
        .map(|(s, g)| vec![format!("{s:.2}"), format!("{g:.2}")])
        .collect();
    print_markdown_table(&["simulated (ms)", "real (ms)"], &rows);
    println!("(first 15 shown)");
    println!("\nPearson r = {r:.4}, mean |error| = {mae:.2} ms");

    maybe_write_json(
        &args,
        &Output {
            simulated_ms: simulated,
            real_ms: real,
            correlation: r,
            mean_abs_err_ms: mae,
        },
    );
}
