//! Table 4: application to an ultra-large production model — shard ~1000
//! tables (multi-terabyte) onto 128 GPUs on an RDMA cluster, reporting
//! embedding cost and end-to-end training-throughput improvement.
//!
//! Following the paper's protocol, the baselines other than the
//! TorchRec-like planner cannot handle the oversized production tables, so
//! they are run **on top of NeuroShard's column-wise plan** and only
//! re-decide the table-wise assignment.
//!
//! Usage:
//! `table4_production [--tables 1000] [--gpus 128] [--epochs 30]
//!  [--skip-rl] [--seed 9] [--out t4.json]`

use serde::Serialize;

use nshard_baselines::{
    DimGreedy, LookupGreedy, RandomSharding, RlSharder, RlVariant, ShardingAlgorithm, SizeGreedy,
    SizeLookupGreedy, TorchRecLikePlanner,
};
use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_core::{evaluate_plan, NeuroShard, NeuroShardConfig, ShardingPlan};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::{Cluster, GpuSpec, TraceSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Serialize)]
struct Row {
    name: String,
    embedding_cost_ms: Option<f64>,
    throughput_improvement_pct: Option<f64>,
    sharding_time_s: f64,
}

#[derive(Serialize)]
struct Output {
    num_tables: usize,
    num_gpus: usize,
    total_memory_tb: f64,
    rows: Vec<Row>,
}

/// Measures steady-state training throughput of a plan (samples/s).
fn throughput(task: &ShardingTask, plan: &ShardingPlan, spec: &GpuSpec) -> Option<f64> {
    let cluster = Cluster::new(
        spec.with_mem_budget(task.mem_budget_bytes()),
        task.num_devices(),
        task.batch_size(),
    );
    // Dense-network compute sized like a production DLRM iteration.
    let sim = TraceSimulator::new(cluster, 30.0);
    sim.simulate(&plan.device_profiles(task.batch_size()), 20)
        .ok()
        .map(|s| s.throughput_samples_per_sec)
}

fn main() {
    let args = Args::from_env();
    let n_tables: usize = args.get("tables", 1000);
    let d: usize = args.get("gpus", 128);
    let seed: u64 = args.get("seed", 9);
    let skip_rl = args.has("skip-rl");
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 4000),
        placement_tables: Some(((n_tables / 2).max(2), n_tables + n_tables / 5)),
        combo_tables: (1, 20),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };
    // Production-scale search hyperparameters (the full N=10/K=3/L=10/M=11
    // search at 128 GPUs takes ~15 min; these defaults finish in a few).
    let search_config = NeuroShardConfig {
        n: args.get("n", 6),
        k: args.get("k", 2),
        l: args.get("l", 8),
        m: args.get("m", 6),
        ..NeuroShardConfig::default()
    };

    let spec = GpuSpec::datacenter();
    let pool = TablePool::synthetic_production(n_tables, seed);
    // Assign production dimensions: mixed 16..128, biased to 64.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
    let dims = [16u32, 32, 64, 64, 64, 128];
    let tables: Vec<_> = pool
        .iter()
        .map(|t| t.with_dim(dims[rng.random_range(0..dims.len())]))
        .collect();
    let task = ShardingTask::new(tables, d, spec.mem_budget_bytes(), 65_536);
    let total_tb = task.total_bytes() as f64 / 1e12;
    eprintln!(
        "production task: {} tables, {:.2} TB embeddings, {d} GPUs x {} GB",
        task.num_tables(),
        total_tb,
        spec.mem_budget_bytes() / (1 << 30)
    );

    eprintln!("pre-training production cost models...");
    let bundle =
        CostModelBundle::pretrain_with_spec(&pool, d, &spec, &collect, &train, seed ^ 0xBEE);
    let neuroshard = NeuroShard::new(bundle, search_config);

    eprintln!("running NeuroShard...");
    let t0 = std::time::Instant::now();
    let ns_outcome = neuroshard
        .shard_with_stats(&task)
        .expect("production task must be feasible for NeuroShard");
    let ns_time = t0.elapsed().as_secs_f64();
    eprintln!(
        "  NeuroShard: {} column splits, est {:.1} ms, {:.1}s",
        ns_outcome.plan.num_column_splits(),
        ns_outcome.estimated_cost_ms,
        ns_time
    );

    // The baselines re-shard table-wise on top of NeuroShard's column plan.
    let presplit_task = ShardingTask::new(
        ns_outcome.plan.sharded_tables().to_vec(),
        d,
        task.mem_budget_bytes(),
        task.batch_size(),
    );

    let mut algos: Vec<(Box<dyn ShardingAlgorithm>, bool)> = vec![
        (Box::new(RandomSharding::new(seed)), true),
        (Box::new(SizeGreedy), true),
        (Box::new(DimGreedy), true),
        (Box::new(LookupGreedy), true),
        (Box::new(SizeLookupGreedy), true),
    ];
    if !skip_rl {
        algos.push((
            Box::new(RlSharder::new(RlVariant::AutoShardLike, seed).with_spec(spec)),
            true,
        ));
        algos.push((
            Box::new(RlSharder::new(RlVariant::DreamShardLike, seed).with_spec(spec)),
            true,
        ));
    }
    // TorchRec plans its own column-wise sharding (paper's protocol).
    algos.push((Box::new(TorchRecLikePlanner::default()), false));

    let mut rows: Vec<Row> = Vec::new();
    let mut random_throughput: Option<f64> = None;
    for (algo, use_presplit) in &algos {
        eprintln!("running {}...", algo.name());
        let work_task = if *use_presplit { &presplit_task } else { &task };
        let t0 = std::time::Instant::now();
        let plan = algo.shard(work_task);
        let elapsed = t0.elapsed().as_secs_f64();
        let (cost, tput) = match plan {
            Ok(p) => {
                let cost = evaluate_plan(work_task, &p, &spec, seed)
                    .ok()
                    .map(|c| c.max_total_ms());
                let tput = cost.and_then(|_| throughput(work_task, &p, &spec));
                (cost, tput)
            }
            Err(_) => (None, None),
        };
        if algo.name() == "random" {
            random_throughput = tput;
        }
        let improvement = match (tput, random_throughput) {
            (Some(t), Some(r)) if r > 0.0 => Some((t - r) / r * 100.0),
            _ => None,
        };
        rows.push(Row {
            name: algo.name().to_string(),
            embedding_cost_ms: cost,
            throughput_improvement_pct: improvement,
            sharding_time_s: elapsed,
        });
    }

    // NeuroShard itself (on the original task).
    let ns_cost = evaluate_plan(&task, &ns_outcome.plan, &spec, seed)
        .ok()
        .map(|c| c.max_total_ms());
    let ns_tput = throughput(&task, &ns_outcome.plan, &spec);
    let ns_improvement = match (ns_tput, random_throughput) {
        (Some(t), Some(r)) if r > 0.0 => Some((t - r) / r * 100.0),
        _ => None,
    };
    rows.push(Row {
        name: "neuroshard".to_string(),
        embedding_cost_ms: ns_cost,
        throughput_improvement_pct: ns_improvement,
        sharding_time_s: ns_time,
    });

    println!(
        "\n# Table 4 — production model: {} tables, {:.2} TB, {d} GPUs\n",
        task.num_tables(),
        total_tb
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.embedding_cost_ms
                    .map_or("-".into(), |c| format!("{c:.1}")),
                r.throughput_improvement_pct
                    .map_or("-".into(), |p| format!("{p:+.1}%")),
                format!("{:.1}", r.sharding_time_s),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "method",
            "embedding cost (ms)",
            "throughput improvement",
            "sharding time (s)",
        ],
        &table,
    );
    println!(
        "\n(Baselines other than torchrec_like reuse NeuroShard's column-wise plan, \
         per the paper's production protocol. Throughput improvements are relative \
         to random sharding.)"
    );

    maybe_write_json(
        &args,
        &Output {
            num_tables: task.num_tables(),
            num_gpus: d,
            total_memory_tb: total_tb,
            rows,
        },
    );
}
