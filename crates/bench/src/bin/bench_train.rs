//! Parallel pre-training benchmark: runs the label-collection and
//! model-fitting stages of the pre-training pipeline at 1, 2, 4 and 8
//! worker threads, verifies that every configuration produces bit-identical
//! datasets and trained weights, and writes the timings to
//! `BENCH_train.json`.
//!
//! Thread scaling is bounded by the host: the JSON records
//! `hardware_threads` so flat curves on small containers are explainable.
//! The bit-identity columns are hardware-independent and must hold
//! everywhere.
//!
//! Usage:
//! `bench_train [--compute-samples 4000] [--comm-samples 3000]
//!  [--epochs 10] [--seed 3] [--out BENCH_train.json]`

use std::time::Instant;

use serde::Serialize;

use nshard_bench::{print_markdown_table, Args};
use nshard_cost::{
    collect_comm_data, collect_compute_data, CollectConfig, CommCostModel, CommDataset,
    ComputeCostModel, ComputeDataset, TrainSettings,
};
use nshard_data::TablePool;
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct StageRow {
    threads: usize,
    wall_clock_s: f64,
    speedup_vs_1_thread: f64,
    /// Whether this run's output is bit-identical to the 1-thread run
    /// (trivially true for the 1-thread row itself).
    identical_to_serial: bool,
}

#[derive(Serialize)]
struct Output {
    /// Logical CPUs visible to this process — thread scaling is bounded
    /// above by this number.
    hardware_threads: usize,
    num_gpus: usize,
    compute_samples: usize,
    comm_samples: usize,
    train: TrainSettings,
    /// Label collection (compute + comm micro-benchmarks) per thread count.
    collect: Vec<StageRow>,
    /// Model fitting (compute model + both comm models) per thread count.
    fit: Vec<StageRow>,
    /// True iff every thread count collected bit-identical datasets.
    datasets_identical: bool,
    /// True iff every thread count trained bit-identical models.
    models_identical: bool,
}

struct FitResult {
    compute: ComputeCostModel,
    comm_fwd: CommCostModel,
    comm_bwd: CommCostModel,
}

fn collect(
    pool: &TablePool,
    spec: &GpuSpec,
    num_gpus: usize,
    config: &CollectConfig,
    seed: u64,
) -> (ComputeDataset, CommDataset) {
    (
        collect_compute_data(pool, spec.kernel(), config, seed),
        collect_comm_data(pool, spec.comm(), num_gpus, config, seed ^ 0x1234),
    )
}

fn fit(
    compute_data: &ComputeDataset,
    comm_data: &CommDataset,
    num_gpus: usize,
    settings: &TrainSettings,
    seed: u64,
) -> FitResult {
    let mut compute = ComputeCostModel::new(seed);
    compute.train(compute_data, settings, seed ^ 0x1);
    let mut comm_fwd = CommCostModel::new(num_gpus, seed ^ 0x2);
    comm_fwd.train(&comm_data.forward, settings, seed ^ 0x3);
    let mut comm_bwd = CommCostModel::new(num_gpus, seed ^ 0x4);
    comm_bwd.train(&comm_data.backward, settings, seed ^ 0x5);
    FitResult {
        compute,
        comm_fwd,
        comm_bwd,
    }
}

fn row(threads: usize, wall: f64, base_wall: f64, identical: bool) -> StageRow {
    StageRow {
        threads,
        wall_clock_s: wall,
        speedup_vs_1_thread: base_wall / wall.max(1e-9),
        identical_to_serial: identical,
    }
}

fn print_stage(name: &str, rows: &[StageRow]) {
    println!("\n## {name}\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} thread(s)", r.threads),
                format!("{:.2}", r.wall_clock_s),
                format!("{:.2}x", r.speedup_vs_1_thread),
                r.identical_to_serial.to_string(),
            ]
        })
        .collect();
    print_markdown_table(
        &["workers", "wall clock (s)", "speedup", "bit-identical"],
        &table,
    );
}

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 3);
    let collect_cfg = CollectConfig {
        compute_samples: args.get("compute-samples", 4000),
        comm_samples: args.get("comm-samples", 3000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 10),
        // 512-row batches shard into 8 gradient shards, so the
        // data-parallel trainer genuinely fans out.
        batch_size: args.get("batch-size", 512),
        ..TrainSettings::default()
    };
    let out_path = args
        .get_opt("out")
        .unwrap_or_else(|| "BENCH_train.json".to_string());

    let num_gpus = 4usize;
    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();

    let mut collect_rows = Vec::new();
    let mut fit_rows = Vec::new();
    let mut datasets_identical = true;
    let mut models_identical = true;
    let mut collect_base_wall = 0.0;
    let mut fit_base_wall = 0.0;
    let mut reference: Option<((ComputeDataset, CommDataset), FitResult)> = None;

    for threads in [1usize, 2, 4, 8] {
        eprintln!(
            "collecting {} + {} labels at {threads} thread(s)...",
            collect_cfg.compute_samples, collect_cfg.comm_samples
        );
        let cfg = CollectConfig {
            threads,
            ..collect_cfg.clone()
        };
        let t0 = Instant::now();
        let data = collect(&pool, &spec, num_gpus, &cfg, seed);
        let collect_wall = t0.elapsed().as_secs_f64();

        eprintln!("fitting the three cost models at {threads} thread(s)...");
        let settings = TrainSettings { threads, ..train };
        let t0 = Instant::now();
        let models = fit(&data.0, &data.1, num_gpus, &settings, seed);
        let fit_wall = t0.elapsed().as_secs_f64();

        let (data_ok, model_ok) = match &reference {
            None => {
                collect_base_wall = collect_wall;
                fit_base_wall = fit_wall;
                reference = Some((data, models));
                (true, true)
            }
            Some((ref_data, ref_models)) => (
                data.0 == ref_data.0
                    && data.1.forward == ref_data.1.forward
                    && data.1.backward == ref_data.1.backward,
                models.compute == ref_models.compute
                    && models.comm_fwd == ref_models.comm_fwd
                    && models.comm_bwd == ref_models.comm_bwd,
            ),
        };
        datasets_identical &= data_ok;
        models_identical &= model_ok;
        collect_rows.push(row(threads, collect_wall, collect_base_wall, data_ok));
        fit_rows.push(row(threads, fit_wall, fit_base_wall, model_ok));
    }

    let output = Output {
        hardware_threads: std::thread::available_parallelism().map_or(1, usize::from),
        num_gpus,
        compute_samples: collect_cfg.compute_samples,
        comm_samples: collect_cfg.comm_samples,
        train,
        collect: collect_rows,
        fit: fit_rows,
        datasets_identical,
        models_identical,
    };

    println!(
        "\n# Parallel pre-training, {} + {} samples, {} epochs, {} hardware thread(s)",
        output.compute_samples, output.comm_samples, output.train.epochs, output.hardware_threads
    );
    print_stage("Label collection", &output.collect);
    print_stage("Model fitting", &output.fit);
    println!(
        "\ndatasets identical: {datasets_identical}; trained models identical: {models_identical}"
    );
    assert!(
        datasets_identical,
        "collected datasets must not depend on the thread count"
    );
    assert!(
        models_identical,
        "trained weights must not depend on the thread count"
    );

    let json = serde_json::to_string_pretty(&output).expect("results are serializable");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
