//! Online re-sharding benchmark: drives one deployment through a fixed
//! drift trace under the never / full / incremental maintenance
//! strategies and records, per strategy, the wall time of the whole
//! controller loop, the candidate plans evaluated by drift-triggered
//! replans, the embedding bytes migrated, and the ground-truth
//! max-device cost (final / mean / worst across the trace).
//!
//! The acceptance gate of the online subsystem is checked and recorded:
//! on this trace the incremental planner must move at most 25% of the
//! bytes a from-scratch replan moves while landing within 5% of the
//! full replan's final max-device cost.
//!
//! The incremental strategy runs with the controller's end-of-trace
//! escape hatch armed (`final_full_replan_on_stall`): when the
//! λ-objective stalls mid-trace, the final epoch replans once through
//! the full chain, clearing the accumulated drift debt the patches
//! could not. Its migration bytes are charged against the incremental
//! row like any other replan, so the ≤ 25%-of-full-bytes gate already
//! prices the cleanup.
//!
//! Usage:
//! `bench_online [--epochs 20] [--seed 7] [--drift-seed 42]
//!  [--tables-min 25] [--tables-max 35] [--out BENCH_online.json]`

use std::time::Instant;

use serde::Serialize;

use nshard_bench::{print_markdown_table, Args};
use nshard_core::{NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_online::{
    IncrementalConfig, OnlineConfig, OnlineController, ReplanAction, ReplanHistory, ReplanStrategy,
    WorkloadDrift,
};

#[derive(Serialize)]
struct StrategyRow {
    strategy: String,
    /// Wall clock of the full 20-epoch controller loop, seconds.
    wall_clock_s: f64,
    /// Drift-triggered replans across the trace (epoch-0 deployment is
    /// shared by every strategy and not counted).
    replans: usize,
    /// Candidate plans scored by those replans: the incremental
    /// planner's own counter, plus the full search's counter for every
    /// epoch that went through the fallback chain.
    evaluated_plans: usize,
    /// Embedding bytes migrated across the whole trace.
    migration_bytes: u64,
    /// Ground-truth max-device cost at the last epoch, ms (`null` when
    /// the deployed plan is memory-infeasible there).
    final_ground_truth_ms: Option<f64>,
    /// Mean ground-truth max-device cost over feasible epochs, ms.
    mean_ground_truth_ms: f64,
    /// Worst ground-truth max-device cost over feasible epochs, ms.
    worst_ground_truth_ms: Option<f64>,
}

#[derive(Serialize)]
struct Output {
    epochs: u64,
    num_gpus: usize,
    tables: usize,
    batch_size: u32,
    drift_seed: u64,
    controller_seed: u64,
    /// The migration-aware objective's λ (ms of tolerated cost per GB
    /// of bytes moved).
    lambda_ms_per_gb: f64,
    /// Whether the incremental row ran with the end-of-trace
    /// full-replan escape hatch armed.
    final_full_replan_on_stall: bool,
    rows: Vec<StrategyRow>,
    /// Incremental bytes moved over full-replan bytes moved.
    incremental_bytes_over_full: f64,
    /// Incremental final max-device cost over the full replan's.
    incremental_final_cost_over_full: f64,
    /// Acceptance: incremental moves ≤ 25% of full-replan bytes.
    accept_bytes_le_quarter_of_full: bool,
    /// Acceptance: incremental final cost within 5% of full replan's.
    accept_final_cost_within_5pct: bool,
}

/// Candidate plans evaluated by a run's drift-triggered replans.
///
/// Incremental replans carry their own counter. Full replans go through
/// the fallback chain, which does not surface search statistics, so the
/// same deterministic search is re-run with `shard_with_stats` on the
/// same drifted task to read the counter off.
fn evaluated_plans(
    history: &ReplanHistory,
    bundle: &CostModelBundle,
    drift: &WorkloadDrift,
    search: NeuroShardConfig,
) -> usize {
    let sharder = NeuroShard::new(bundle.clone(), search);
    history
        .epochs
        .iter()
        .map(|e| match &e.action {
            Some(ReplanAction::Incremental {
                evaluated_plans, ..
            }) => *evaluated_plans,
            Some(ReplanAction::Full { .. }) | Some(ReplanAction::IncrementalFellBack { .. }) => {
                sharder
                    .shard_with_stats(&drift.task_at(e.epoch))
                    .map_or(0, |o| o.evaluated_plans)
            }
            _ => 0,
        })
        .sum()
}

fn main() {
    let args = Args::from_env();
    let epochs: u64 = args.get("epochs", 20);
    let seed: u64 = args.get("seed", 7);
    let drift_seed: u64 = args.get("drift-seed", 42);
    let t_min: usize = args.get("tables-min", 25);
    let t_max: usize = args.get("tables-max", 35);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 2000),
        comm_samples: args.get("comm-samples", 1500),
        ..CollectConfig::default()
    };
    let out_path = args
        .get_opt("out")
        .unwrap_or_else(|| "BENCH_online.json".to_string());

    let num_gpus = 4usize;
    let pool = TablePool::synthetic_dlrm(856, 2023);
    eprintln!("pre-training cost models for {num_gpus} GPUs...");
    let bundle =
        CostModelBundle::pretrain(&pool, num_gpus, &collect, &TrainSettings::default(), 42);

    let base = ShardingTask::sample(&pool, num_gpus, t_min..=t_max, 64, seed);
    let tables = base.num_tables();
    let batch_size = base.batch_size();
    let drift = WorkloadDrift::standard(base, drift_seed);
    let search = NeuroShardConfig::default();
    let incremental = IncrementalConfig::default();
    let lambda = incremental.lambda_ms_per_gb;

    let mut rows = Vec::new();
    for strategy in [
        ReplanStrategy::Never,
        ReplanStrategy::Full,
        ReplanStrategy::Incremental,
    ] {
        eprintln!(
            "running the {} strategy over {epochs} epochs...",
            strategy.name()
        );
        let config = OnlineConfig {
            epochs,
            strategy,
            incremental,
            search,
            seed,
            final_full_replan_on_stall: true,
            ..OnlineConfig::default()
        };
        let mut controller = OnlineController::new(bundle.clone(), drift.clone(), config);
        let t0 = Instant::now();
        let history = controller.run().expect("the deployment is feasible");
        let wall = t0.elapsed().as_secs_f64();
        rows.push(StrategyRow {
            strategy: strategy.name().to_string(),
            wall_clock_s: wall,
            replans: history.replans(),
            evaluated_plans: evaluated_plans(&history, &bundle, &drift, search),
            migration_bytes: history.total_migration_bytes(),
            final_ground_truth_ms: history.epochs.last().and_then(|e| e.ground_truth_ms),
            mean_ground_truth_ms: history.mean_ground_truth_ms(),
            worst_ground_truth_ms: history.worst_ground_truth_ms(),
        });
    }

    let full = &rows[1];
    let incr = &rows[2];
    let bytes_ratio = incr.migration_bytes as f64 / full.migration_bytes.max(1) as f64;
    let cost_ratio = match (incr.final_ground_truth_ms, full.final_ground_truth_ms) {
        (Some(i), Some(f)) if f > 0.0 => i / f,
        _ => f64::INFINITY,
    };
    let output = Output {
        epochs,
        num_gpus,
        tables,
        batch_size,
        drift_seed,
        controller_seed: seed,
        lambda_ms_per_gb: lambda,
        final_full_replan_on_stall: true,
        incremental_bytes_over_full: bytes_ratio,
        incremental_final_cost_over_full: cost_ratio,
        accept_bytes_le_quarter_of_full: bytes_ratio <= 0.25,
        accept_final_cost_within_5pct: cost_ratio <= 1.05,
        rows,
    };

    println!("\n# Online re-sharding, {epochs} epochs, {num_gpus} GPUs, {tables} tables\n");
    let table: Vec<Vec<String>> = output
        .rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                format!("{:.2}", r.wall_clock_s),
                format!("{}", r.replans),
                format!("{}", r.evaluated_plans),
                format!("{}", r.migration_bytes),
                r.final_ground_truth_ms
                    .map_or_else(|| "-".into(), |c| format!("{c:.2}")),
                format!("{:.2}", r.mean_ground_truth_ms),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "strategy",
            "wall (s)",
            "replans",
            "plans evaluated",
            "bytes moved",
            "final cost (ms)",
            "mean cost (ms)",
        ],
        &table,
    );
    println!(
        "\nincremental vs full: {:.1}% of the bytes, {:.3}x the final cost \
         (accept: bytes {} | cost {})",
        bytes_ratio * 100.0,
        cost_ratio,
        output.accept_bytes_le_quarter_of_full,
        output.accept_final_cost_within_5pct,
    );
    assert!(
        output.accept_bytes_le_quarter_of_full,
        "incremental replanning must move ≤ 25% of full-replan bytes"
    );
    assert!(
        output.accept_final_cost_within_5pct,
        "incremental final cost must be within 5% of the full replan's"
    );

    let json = serde_json::to_string_pretty(&output).expect("results are serializable");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
