//! Extension experiment (paper §6, future work): **row-wise sharding**.
//!
//! The paper's column-wise mechanism cannot partition "tall-skinny" tables
//! — minimum dimension (4) but an enormous row count. This experiment salts
//! benchmark tasks with such tables and compares NeuroShard with and
//! without the row-wise extension on success rate and embedding cost.
//!
//! Usage: `ext_rowwise [--tasks 10] [--tall-rows 512] [--seed 12]
//!         [--out ext_rowwise.json]`
//! (`--tall-rows` is the tall table's row count in millions.)

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TableConfig, TableId, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct VariantRow {
    name: String,
    mean_cost_ms: Option<f64>,
    success_rate: f64,
    mean_row_splits: f64,
    mean_col_splits: f64,
}

#[derive(Serialize)]
struct Output {
    rows: Vec<VariantRow>,
}

fn main() {
    let args = Args::from_env();
    let tasks_n: usize = args.get("tasks", 10);
    let tall_rows_m: u64 = args.get("tall-rows", 512);
    let seed: u64 = args.get("seed", 12);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 6000),
        comm_samples: args.get("comm-samples", 4000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    eprintln!("pre-training for 4 GPUs...");
    let bundle = CostModelBundle::pretrain(&pool, 4, &collect, &train, seed);

    // Tasks salted with a tall-skinny table: dim 4 (cannot column-split),
    // `tall_rows_m` million rows (8 GB at 512 M — twice the 4 GB budget).
    let tasks: Vec<ShardingTask> = (0..tasks_n)
        .map(|i| {
            let base = ShardingTask::sample(&pool, 4, 10..=30, 32, seed ^ 0xE0 ^ i as u64);
            let mut tables = base.tables().to_vec();
            tables.push(TableConfig::new(
                TableId(60_000 + i as u32),
                4,
                tall_rows_m << 20,
                24.0,
                1.1,
            ));
            ShardingTask::new(tables, 4, base.mem_budget_bytes(), base.batch_size())
        })
        .collect();

    let mut rows = Vec::new();
    for (name, row_wise) in [
        ("column-wise only (paper)", false),
        ("with row-wise extension", true),
    ] {
        let config = NeuroShardConfig {
            use_row_wise: row_wise,
            ..NeuroShardConfig::default()
        };
        let sharder = NeuroShard::new(bundle.clone(), config);
        let mut costs = Vec::new();
        let mut successes = 0usize;
        let mut row_splits = 0usize;
        let mut col_splits = 0usize;
        for (i, task) in tasks.iter().enumerate() {
            let Ok(outcome) = sharder.shard_with_stats(task) else {
                continue;
            };
            if let Ok(real) = evaluate_plan(task, &outcome.plan, &spec, seed ^ i as u64) {
                successes += 1;
                costs.push(real.max_total_ms());
                row_splits += outcome.plan.num_row_splits();
                col_splits += outcome.plan.num_column_splits();
            }
        }
        rows.push(VariantRow {
            name: name.to_string(),
            mean_cost_ms: if costs.is_empty() {
                None
            } else {
                Some(costs.iter().sum::<f64>() / costs.len() as f64)
            },
            success_rate: successes as f64 / tasks.len() as f64,
            mean_row_splits: row_splits as f64 / tasks.len() as f64,
            mean_col_splits: col_splits as f64 / tasks.len() as f64,
        });
    }

    println!(
        "# Extension — row-wise sharding on tasks with a tall-skinny table \
         (dim 4, {tall_rows_m} M rows = {:.1} GB)\n",
        (tall_rows_m << 20) as f64 * 16.0 / 1e9
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.mean_cost_ms.map_or("-".into(), |c| format!("{c:.2}")),
                format!("{:.0}%", r.success_rate * 100.0),
                format!("{:.1}", r.mean_row_splits),
                format!("{:.1}", r.mean_col_splits),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "variant",
            "cost (ms)",
            "success",
            "row splits/task",
            "col splits/task",
        ],
        &table,
    );
    println!(
        "\n(The tall table exceeds the per-GPU budget and cannot be split \
         column-wise; only the row-wise extension can place it.)"
    );

    maybe_write_json(&args, &Output { rows });
}
