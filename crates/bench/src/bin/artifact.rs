//! Artifact-parity CLI, mirroring the paper's Appendix I workflow
//! step-for-step with files on disk:
//!
//! ```text
//! artifact gen-data    --workdir work        # ≈ tools/gen_dlrm_data.py
//! artifact gen-tasks   --workdir work --max-dim 128 [--gpus 4] [--tasks 100]
//! artifact collect     --workdir work [--data-size 8000]
//!                                            # ≈ collect_{compute,comm}_cost_data.py
//! artifact train       --workdir work [--epochs 30]
//!                                            # ≈ train_{compute,comm}_cost_model.py
//! artifact eval-sim    --workdir work --alg neuroshard
//!                                            # ≈ eval_simulator.py
//! artifact eval        --workdir work --alg neuroshard
//!                                            # ≈ eval.py (ground-truth costs)
//! ```
//!
//! Algorithms: `neuroshard`, `random`, `size_greedy`, `dim_greedy`,
//! `lookup_greedy`, `size_lookup_greedy`, `torchrec_like`,
//! `autoshard_like`, `dreamshard_like`.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{de::DeserializeOwned, Serialize};

use nshard_baselines::{
    DimGreedy, LookupGreedy, RandomSharding, RlSharder, RlVariant, ShardingAlgorithm, SizeGreedy,
    SizeLookupGreedy, TorchRecLikePlanner,
};
use nshard_bench::Args;
use nshard_core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use nshard_cost::{
    collect_comm_data, collect_compute_data, CollectConfig, CommCostModel, ComputeCostModel,
    CostModelBundle, CostSimulator, TrainSettings,
};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let command = if raw.is_empty() {
        String::new()
    } else {
        raw.remove(0)
    };
    let args = Args::from_vec(raw);
    let workdir = PathBuf::from(args.get_opt("workdir").unwrap_or_else(|| "work".into()));

    match command.as_str() {
        "gen-data" => gen_data(&workdir, &args),
        "gen-tasks" => gen_tasks(&workdir, &args),
        "collect" => collect(&workdir, &args),
        "train" => train(&workdir, &args),
        "eval-sim" => eval_tasks(&workdir, &args, false),
        "eval" => eval_tasks(&workdir, &args, true),
        other => {
            eprintln!("unknown or missing subcommand {other:?}");
            eprintln!(
                "usage: artifact <gen-data|gen-tasks|collect|train|eval-sim|eval> \
                 --workdir <dir> [options]"
            );
            std::process::exit(2);
        }
    }
}

fn write_json<T: Serialize>(path: &Path, value: &T) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).unwrap_or_else(|e| panic!("mkdir {}: {e}", parent.display()));
    }
    let json = serde_json::to_string(value).expect("artifact types serialize");
    fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

fn read_json<T: DeserializeOwned>(path: &Path) -> T {
    let json = fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run the earlier pipeline steps first",
            path.display()
        )
    });
    serde_json::from_str(&json).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Step 1a: generate the synthetic table pool (≈ `gen_dlrm_data.py`).
fn gen_data(workdir: &Path, args: &Args) {
    let tables: usize = args.get("tables", 856);
    let seed: u64 = args.get("seed", 2023);
    println!("Processing DLRM data...");
    let pool = TablePool::synthetic_dlrm(tables, seed);
    println!("Generating table configs...");
    write_json(&workdir.join("data/dlrm_pool.json"), &pool);
    let stats = pool.stats();
    println!(
        "{} tables, avg hash size {:.0}, avg pooling factor {:.1}",
        stats.num_tables, stats.avg_hash_size, stats.avg_pooling_factor
    );
}

/// Step 1b: generate evaluation sharding tasks (≈ `gen_tasks.py`).
fn gen_tasks(workdir: &Path, args: &Args) {
    let pool: TablePool = read_json(&workdir.join("data/dlrm_pool.json"));
    let gpus: usize = args.get("gpus", 4);
    let max_dim: u32 = args.get("max-dim", 128);
    let count: usize = args.get("tasks", 100);
    let seed: u64 = args.get("seed", 0);
    let (t_min, t_max) = if gpus <= 4 { (10, 60) } else { (20, 120) };
    let tasks: Vec<ShardingTask> = (0..count)
        .map(|i| ShardingTask::sample(&pool, gpus, t_min..=t_max, max_dim, seed ^ i as u64))
        .collect();
    write_json(
        &workdir.join(format!("data/tasks/{gpus}_gpus.json")),
        &tasks,
    );
    println!("{count} sharding tasks generated!");
}

/// Step 2: micro-benchmark cost data (≈ `collect_*_cost_data.py`).
fn collect(workdir: &Path, args: &Args) {
    let pool: TablePool = read_json(&workdir.join("data/dlrm_pool.json"));
    let gpus: usize = args.get("gpus", 4);
    let data_size: usize = args.get("data-size", 8000);
    let seed: u64 = args.get("seed", 42);
    let config = CollectConfig {
        compute_samples: data_size,
        comm_samples: data_size.min(args.get("comm-data-size", data_size)),
        ..CollectConfig::default()
    };
    let spec = GpuSpec::rtx_2080_ti();
    eprintln!("collecting computation cost data ({data_size} samples)...");
    let compute = collect_compute_data(&pool, spec.kernel(), &config, seed);
    write_json(&workdir.join("cost_data/compute.json"), &compute);
    eprintln!("collecting communication cost data...");
    let comm = collect_comm_data(&pool, spec.comm(), gpus, &config, seed ^ 0x1234);
    write_json(&workdir.join("cost_data/comm_fwd.json"), &comm.forward);
    write_json(&workdir.join("cost_data/comm_bwd.json"), &comm.backward);
    println!("Device 0 finished!");
}

/// Step 3: train the three cost models (≈ `train_*_cost_model.py`).
fn train(workdir: &Path, args: &Args) {
    let gpus: usize = args.get("gpus", 4);
    let epochs: usize = args.get("epochs", 30);
    let seed: u64 = args.get("seed", 42);
    let settings = TrainSettings {
        epochs,
        ..TrainSettings::default()
    };

    let compute_data: nshard_cost::ComputeDataset =
        read_json(&workdir.join("cost_data/compute.json"));
    let fwd_data: nshard_nn::Dataset = read_json(&workdir.join("cost_data/comm_fwd.json"));
    let bwd_data: nshard_nn::Dataset = read_json(&workdir.join("cost_data/comm_bwd.json"));

    let mut compute = ComputeCostModel::new(seed);
    let report = compute.train(&compute_data, &settings, seed ^ 0x1);
    println!(
        "Final result, train MSE: {}, valid MSE {}, test MSE: {}",
        report.train_mse, report.valid_mse, report.test_mse
    );

    let mut comm_fwd = CommCostModel::new(gpus, seed ^ 0x2);
    let fwd_report = comm_fwd.train(&fwd_data, &settings, seed ^ 0x3);
    let mut comm_bwd = CommCostModel::new(gpus, seed ^ 0x4);
    let bwd_report = comm_bwd.train(&bwd_data, &settings, seed ^ 0x5);
    println!(
        "Final result, fwd comm test MSE: {}, bwd comm test MSE: {}",
        fwd_report.test_mse, bwd_report.test_mse
    );

    let bundle = CostModelBundle::from_parts(
        compute,
        comm_fwd,
        comm_bwd,
        nshard_sim::DEFAULT_BATCH_SIZE,
        nshard_cost::BundleReport {
            compute_test_mse: report.test_mse,
            fwd_comm_test_mse: fwd_report.test_mse,
            bwd_comm_test_mse: bwd_report.test_mse,
            compute_samples: compute_data.len(),
            comm_samples: fwd_data.len(),
        },
    );
    write_json(&workdir.join("models/bundle.json"), &bundle);
}

fn algorithm(name: &str, seed: u64) -> Option<Box<dyn ShardingAlgorithm>> {
    Some(match name {
        "random" => Box::new(RandomSharding::new(seed)),
        "size_greedy" => Box::new(SizeGreedy),
        "dim_greedy" => Box::new(DimGreedy),
        "lookup_greedy" => Box::new(LookupGreedy),
        "size_lookup_greedy" => Box::new(SizeLookupGreedy),
        "autoshard_like" => Box::new(RlSharder::new(RlVariant::AutoShardLike, seed)),
        "dreamshard_like" => Box::new(RlSharder::new(RlVariant::DreamShardLike, seed)),
        "torchrec_like" => Box::new(TorchRecLikePlanner::default()),
        _ => return None,
    })
}

/// Steps 4a/4b: evaluate a sharding algorithm with the learned simulator
/// (`eval-sim` ≈ `eval_simulator.py`) or against the ground-truth cluster
/// (`eval` ≈ `eval.py`).
fn eval_tasks(workdir: &Path, args: &Args, ground_truth: bool) {
    let gpus: usize = args.get("gpus", 4);
    let seed: u64 = args.get("seed", 7);
    let alg = args.get_opt("alg").unwrap_or_else(|| "neuroshard".into());
    let tasks: Vec<ShardingTask> = read_json(&workdir.join(format!("data/tasks/{gpus}_gpus.json")));
    let bundle: CostModelBundle = read_json(&workdir.join("models/bundle.json"));
    let spec = GpuSpec::rtx_2080_ti();

    let neuroshard;
    let boxed;
    let algo: &dyn ShardingAlgorithm = if alg == "neuroshard" {
        neuroshard = NeuroShard::new(bundle.clone(), NeuroShardConfig::default());
        &neuroshard
    } else {
        boxed = algorithm(&alg, seed).unwrap_or_else(|| panic!("unknown algorithm {alg:?}"));
        boxed.as_ref()
    };

    let sim = CostSimulator::new(bundle);
    let mut costs = Vec::new();
    let mut valid = 0usize;
    for (i, task) in tasks.iter().enumerate() {
        let Ok(plan) = algo.shard(task) else { continue };
        if ground_truth {
            if let Ok(real) = evaluate_plan(task, &plan, &spec, seed ^ i as u64) {
                valid += 1;
                costs.push(real.max_total_ms());
            }
        } else {
            if plan.validate(task).is_err() {
                continue;
            }
            valid += 1;
            costs.push(
                sim.estimate_plan(&plan.device_profiles(task.batch_size()))
                    .total_ms(),
            );
        }
    }
    let mean = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
    println!("Average: {mean}");
    println!("Valid {valid} / {}", tasks.len());
}
