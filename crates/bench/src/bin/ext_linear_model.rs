//! Model-capacity ablation (§4.2's closing claim): "an even simpler
//! network (i.e., a linear one) may not work due to the non-linearity of
//! the costs."
//!
//! Trains the paper's shallow non-linear cost model and a fully linear
//! variant on identical micro-benchmark data, reports test MSE, and runs
//! NeuroShard with each to measure the end effect on sharding quality.
//!
//! Usage: `ext_linear_model [--tasks 8] [--compute-samples 8000]
//!         [--epochs 30] [--seed 15] [--out ext_linear.json]`

use serde::Serialize;

use nshard_bench::{evaluate_method, maybe_write_json, print_markdown_table, Args};
use nshard_core::{NeuroShard, NeuroShardConfig};
use nshard_cost::{
    collect_comm_data, collect_compute_data, BundleReport, CollectConfig, CommCostModel,
    ComputeCostModel, CostModelBundle, TrainSettings,
};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct VariantRow {
    name: String,
    compute_test_mse: f32,
    mean_cost_ms: Option<f64>,
    success_rate: f64,
}

#[derive(Serialize)]
struct Output {
    rows: Vec<VariantRow>,
}

fn main() {
    let args = Args::from_env();
    let tasks_n: usize = args.get("tasks", 8);
    let seed: u64 = args.get("seed", 15);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 4000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    let d = 4usize;

    // Shared data and communication models; only the compute model varies.
    eprintln!("collecting micro-benchmark data...");
    let compute_data = collect_compute_data(&pool, spec.kernel(), &collect, seed);
    let comm_data = collect_comm_data(&pool, spec.comm(), d, &collect, seed ^ 0x1234);
    let mut comm_fwd = CommCostModel::new(d, seed ^ 0x2);
    let fwd_mse = comm_fwd.train(&comm_data.forward, &train, seed).test_mse;
    let mut comm_bwd = CommCostModel::new(d, seed ^ 0x4);
    let bwd_mse = comm_bwd.train(&comm_data.backward, &train, seed).test_mse;

    let tasks: Vec<ShardingTask> = (0..tasks_n)
        .map(|i| ShardingTask::sample(&pool, d, 10..=60, 128, seed ^ 0xCC00 ^ i as u64))
        .collect();

    let mut rows = Vec::new();
    for (name, mut compute) in [
        ("paper MLP (128-32 / 64)", ComputeCostModel::new(seed)),
        ("linear model", ComputeCostModel::linear(seed)),
    ] {
        eprintln!("training {name}...");
        let report = compute.train(&compute_data, &train, seed ^ 0x1);
        let bundle = CostModelBundle::from_parts(
            compute,
            comm_fwd.clone(),
            comm_bwd.clone(),
            collect.batch_size,
            BundleReport {
                compute_test_mse: report.test_mse,
                fwd_comm_test_mse: fwd_mse,
                bwd_comm_test_mse: bwd_mse,
                compute_samples: collect.compute_samples,
                comm_samples: collect.comm_samples,
            },
        );
        let sharder = NeuroShard::new(bundle, NeuroShardConfig::default());
        let row = evaluate_method(&sharder, &tasks, &spec, seed);
        rows.push(VariantRow {
            name: name.to_string(),
            compute_test_mse: report.test_mse,
            mean_cost_ms: row.mean_cost_ms.or(row.mean_cost_valid_ms),
            success_rate: row.success_rate(),
        });
    }

    println!("\n# Model-capacity ablation (§4.2) — max dim 128, 4 GPUs, {tasks_n} tasks\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.3}", r.compute_test_mse),
                r.mean_cost_ms.map_or("-".into(), |c| format!("{c:.2}")),
                format!("{:.0}%", r.success_rate * 100.0),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "compute model",
            "test MSE (ms^2)",
            "embedding cost (ms)",
            "success",
        ],
        &table,
    );
    println!(
        "\n(The paper's claim: the shallow MLP is necessary; a linear model \
         underfits the non-linear costs, degrading both MSE and plans.)"
    );

    maybe_write_json(&args, &Output { rows });
}
