//! Serving-layer load benchmark: drives a live `nshard-serve` daemon over
//! TCP with a steady phase (distinct tasks, all admitted) and an overload
//! burst at twice the admission-queue capacity, and records throughput,
//! latency percentiles, and the load-shedding counters.
//!
//! The acceptance gate of the serving subsystem is checked and recorded:
//! under a burst of 2× queue capacity the daemon must shed load with
//! `429`s while the p99 latency of the *admitted* requests stays bounded
//! (queue capacity + workers in flight, each at most the worst
//! single-request service time — admission control converts overload into
//! rejections instead of unbounded latency).
//!
//! Usage:
//! `bench_serve [--steady 24] [--clients 2] [--queue 4] [--tables 8]
//!  [--seed 7] [--out BENCH_serve.json]`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_core::NeuroShardConfig;
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TableConfig, TableId, TablePool};
use nshard_serve::{http_call, ServeConfig, Server, Service};

#[derive(Serialize)]
struct Phase {
    /// Requests issued.
    offered: usize,
    /// `200 OK` responses (admitted and planned).
    admitted_200: usize,
    /// `429` load-shed responses.
    shed_429: usize,
    /// `503` deadline/drain responses.
    expired_503: usize,
    /// Other status codes (should be 0).
    other: usize,
    /// Wall clock of the phase, seconds.
    wall_clock_s: f64,
    /// Admitted-request throughput, requests/second.
    throughput_rps: f64,
    /// Latency percentiles of admitted requests, ms.
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

#[derive(Serialize)]
struct Gates {
    /// Overload shed at least one request with `429`.
    sheds_load: bool,
    /// Overload p99 of admitted requests is under the queueing bound:
    /// (queue capacity + workers + 1) × worst steady-phase latency.
    p99_bounded: bool,
    /// The bound itself, ms.
    p99_bound_ms: f64,
    pass: bool,
}

#[derive(Serialize)]
struct Output {
    queue_capacity: usize,
    workers: usize,
    steady_requests: usize,
    steady_clients: usize,
    overload_burst: usize,
    tables_per_task: usize,
    num_gpus: usize,
    seed: u64,
    steady: Phase,
    overload: Phase,
    gates: Gates,
}

/// Issues `bodies` against `addr` from `clients` threads; returns
/// per-request `(status, latency_ms)` pairs.
fn fire(addr: &str, bodies: &[String], clients: usize) -> Vec<(u16, f64)> {
    let bodies: Arc<Vec<String>> = Arc::new(bodies.to_vec());
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let bodies = Arc::clone(&bodies);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= bodies.len() {
                        return out;
                    }
                    let started = Instant::now();
                    let status = match http_call(&addr, "POST", "/v1/plan", bodies[i].as_bytes()) {
                        Ok((status, _)) => status,
                        Err(e) => {
                            eprintln!("request {i} failed: {e}");
                            0
                        }
                    };
                    out.push((status, started.elapsed().as_secs_f64() * 1e3));
                }
            })
        })
        .collect();
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(results: &[(u16, f64)], wall_clock_s: f64) -> Phase {
    let mut admitted: Vec<f64> = results
        .iter()
        .filter(|(status, _)| *status == 200)
        .map(|(_, ms)| *ms)
        .collect();
    admitted.sort_by(|a, b| a.total_cmp(b));
    let count = |code: u16| results.iter().filter(|(s, _)| *s == code).count();
    let admitted_200 = count(200);
    Phase {
        offered: results.len(),
        admitted_200,
        shed_429: count(429),
        expired_503: count(503),
        other: results.len() - admitted_200 - count(429) - count(503),
        wall_clock_s,
        throughput_rps: admitted_200 as f64 / wall_clock_s.max(1e-9),
        p50_ms: percentile(&admitted, 0.50),
        p95_ms: percentile(&admitted, 0.95),
        p99_ms: percentile(&admitted, 0.99),
        max_ms: percentile(&admitted, 1.0),
    }
}

fn main() {
    let args = Args::from_env();
    let steady_requests: usize = args.get("steady", 24);
    let steady_clients: usize = args.get("clients", 2);
    let queue_capacity: usize = args.get("queue", 4);
    let tables: usize = args.get("tables", 8);
    let gpus: usize = args.get("gpus", 2);
    let seed: u64 = args.get("seed", 7);

    eprintln!("pre-training cost models (smoke settings)...");
    let pool = TablePool::synthetic_dlrm(60, seed);
    let bundle = CostModelBundle::pretrain(
        &pool,
        gpus,
        &CollectConfig::smoke(),
        &TrainSettings::smoke(),
        seed,
    );

    // One worker: the queue, not the worker pool, is the quantity under
    // test — a single drain rate makes the overload arithmetic exact.
    let config = ServeConfig {
        search: NeuroShardConfig::smoke(),
        queue_capacity,
        workers: 1,
        seed,
        ..ServeConfig::default()
    };
    let workers = 1;
    let service = Arc::new(Service::new(bundle, config).expect("service boots"));
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("server binds");
    let addr = server.addr().to_string();

    // Distinct, always-feasible tasks: per-seed table shapes under a
    // generous budget, so every admitted request plans successfully and
    // the status-code columns isolate *admission* behaviour.
    let body_for = |task_seed: u64| {
        let mut x = task_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 29;
            x
        };
        let table_configs: Vec<TableConfig> = (0..tables)
            .map(|i| {
                TableConfig::new(
                    TableId(u32::try_from(i).expect("table index fits u32")),
                    16 << (next() % 3),              // dim 16 / 32 / 64
                    1 << (12 + next() % 4),          // 4k – 32k rows
                    4.0 + (next() % 16) as f64,      // pooling factor
                    0.8 + (next() % 5) as f64 * 0.1, // zipf alpha
                )
            })
            .collect();
        let task = ShardingTask::new(table_configs, gpus, 1 << 30, 4096);
        format!(
            "{{\"task\":{}}}",
            serde_json::to_string(&task).expect("tasks serialize")
        )
    };

    // Steady phase: distinct tasks, offered no faster than the daemon
    // drains (clients ≤ a small multiple of workers), so nothing is shed.
    eprintln!("steady phase: {steady_requests} requests from {steady_clients} clients...");
    let bodies: Vec<String> = (0..steady_requests)
        .map(|i| body_for(1000 + i as u64))
        .collect();
    let started = Instant::now();
    let results = fire(&addr, &bodies, steady_clients);
    let steady = summarize(&results, started.elapsed().as_secs_f64());

    // Overload burst: 2× queue capacity simultaneous requests against one
    // worker — admission control must shed the excess with 429s.
    let overload_burst = 2 * queue_capacity;
    eprintln!("overload burst: {overload_burst} simultaneous requests (queue={queue_capacity})...");
    let bodies: Vec<String> = (0..overload_burst)
        .map(|i| body_for(2000 + i as u64))
        .collect();
    let started = Instant::now();
    let results = fire(&addr, &bodies, overload_burst);
    let overload = summarize(&results, started.elapsed().as_secs_f64());

    server.shutdown();

    let p99_bound_ms = (queue_capacity + workers + 1) as f64 * steady.max_ms.max(1.0);
    let gates = Gates {
        sheds_load: overload.shed_429 > 0,
        p99_bounded: overload.p99_ms <= p99_bound_ms,
        p99_bound_ms,
        pass: overload.shed_429 > 0 && overload.p99_ms <= p99_bound_ms,
    };

    let fmt_phase = |name: &str, p: &Phase| {
        vec![
            name.to_string(),
            p.offered.to_string(),
            p.admitted_200.to_string(),
            p.shed_429.to_string(),
            p.expired_503.to_string(),
            format!("{:.1}", p.throughput_rps),
            format!("{:.1}", p.p50_ms),
            format!("{:.1}", p.p95_ms),
            format!("{:.1}", p.p99_ms),
        ]
    };
    print_markdown_table(
        &[
            "phase", "offered", "200", "429", "503", "rps", "p50 ms", "p95 ms", "p99 ms",
        ],
        &[
            fmt_phase("steady", &steady),
            fmt_phase("overload", &overload),
        ],
    );
    println!(
        "\ngates: sheds_load={} p99_bounded={} (p99 {:.1} ms <= bound {:.1} ms) pass={}",
        gates.sheds_load, gates.p99_bounded, overload.p99_ms, gates.p99_bound_ms, gates.pass
    );

    let output = Output {
        queue_capacity,
        workers,
        steady_requests,
        steady_clients,
        overload_burst,
        tables_per_task: tables,
        num_gpus: gpus,
        seed,
        steady,
        overload,
        gates,
    };
    maybe_write_json(&args, &output);
}
