//! Figure 3 (right): actual multi-table cost vs. the sum of single-table
//! costs.
//!
//! Samples subsets of tables (paper: 50 subsets of 10 tables), measures the
//! fused multi-table kernel cost and the sum of per-table costs, and
//! reports the scatter plus the non-linearity diagnostics behind
//! Observation 2.
//!
//! Usage: `fig3_multitable [--subsets 50] [--per-subset 10] [--seed 1]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use nshard_bench::{maybe_write_json, pearson, print_markdown_table, Args};
use nshard_data::TablePool;
use nshard_sim::{KernelParams, NoiseModel, TableProfile};

#[derive(Serialize)]
struct Output {
    sum_single_ms: Vec<f64>,
    multi_table_ms: Vec<f64>,
    mean_fused_to_sum_ratio: f64,
    linear_fit_r: f64,
    observation2_holds: bool,
}

fn main() {
    let args = Args::from_env();
    let subsets: usize = args.get("subsets", 50);
    let per_subset: usize = args.get("per-subset", 10);
    let seed: u64 = args.get("seed", 1);

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let kernel = KernelParams::rtx_2080_ti();
    let noise = NoiseModel::new(seed, 0.02);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut sums = Vec::with_capacity(subsets);
    let mut multis = Vec::with_capacity(subsets);
    for _ in 0..subsets {
        let tables: Vec<TableProfile> = pool
            .sample_tables(per_subset, &mut rng)
            .iter()
            .map(|t| t.profile(65_536))
            .collect();
        let multi = kernel.measure_multi_cost_ms(&tables, 65_536, &noise, 21);
        let sum: f64 = tables
            .iter()
            .map(|t| kernel.measure_multi_cost_ms(std::slice::from_ref(t), 65_536, &noise, 21))
            .sum();
        sums.push(sum);
        multis.push(multi);
    }

    let ratio: f64 =
        multis.iter().zip(&sums).map(|(m, s)| m / s).sum::<f64>() / subsets.max(1) as f64;
    let r = pearson(&sums, &multis);
    // Observation 2: fused cost sits strictly below the sum (non-trivially),
    // i.e. the y = x line overestimates every subset.
    let obs2 = multis.iter().zip(&sums).all(|(m, s)| m < s);

    println!("# Figure 3 (right) — multi-table cost vs. sum of single-table costs\n");
    let rows: Vec<Vec<String>> = sums
        .iter()
        .zip(&multis)
        .take(15)
        .map(|(s, m)| {
            vec![
                format!("{s:.2}"),
                format!("{m:.2}"),
                format!("{:.3}", m / s),
            ]
        })
        .collect();
    print_markdown_table(
        &["sum of singles (ms)", "fused multi-table (ms)", "ratio"],
        &rows,
    );
    println!("\n(first 15 of {subsets} subsets shown)");
    println!(
        "mean fused/sum ratio: {ratio:.3} (fusion saves {:.1}%)",
        (1.0 - ratio) * 100.0
    );
    println!("Pearson r of the scatter: {r:.3} (correlated but not the identity line)");
    println!(
        "Observation 2 (fused < sum for every subset): {}",
        if obs2 { "HOLDS" } else { "VIOLATED" }
    );

    maybe_write_json(
        &args,
        &Output {
            sum_single_ms: sums,
            multi_table_ms: multis,
            mean_fused_to_sum_ratio: ratio,
            linear_fit_r: r,
            observation2_holds: obs2,
        },
    );
}
