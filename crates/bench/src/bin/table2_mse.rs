//! Table 2: held-out test MSE of the three neural cost models, for the
//! DLRM setting (4 and 8 GPUs) and the production setting (128 GPUs).
//!
//! Usage:
//! `table2_mse [--compute-samples 8000] [--comm-samples 6000] [--epochs 30]
//!  [--seed 4] [--skip-production] [--out t2.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_cost::{BundleReport, CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::TablePool;
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct Output {
    settings: Vec<(String, BundleReport)>,
}

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 4);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 6000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let mut settings: Vec<(String, BundleReport)> = Vec::new();

    for d in [4usize, 8] {
        eprintln!("pre-training DLRM bundle for {d} GPUs...");
        let bundle = CostModelBundle::pretrain(&pool, d, &collect, &train, seed);
        settings.push((format!("DLRM ({d} GPUs)"), *bundle.report()));
    }

    if !args.has("skip-production") {
        eprintln!("pre-training production bundle (128 GPUs)...");
        let prod_pool = TablePool::synthetic_production(1000, seed ^ 0xAB);
        let prod_collect = CollectConfig {
            // The production model places ~1000 tables on 128 GPUs: ~8 per
            // device on average, with wider placements for coverage.
            placement_tables: Some((512, 1200)),
            ..collect.clone()
        };
        let bundle = CostModelBundle::pretrain_with_spec(
            &prod_pool,
            128,
            &GpuSpec::datacenter(),
            &prod_collect,
            &train,
            seed ^ 0xCD,
        );
        settings.push(("Production (128 GPUs)".to_string(), *bundle.report()));
    }

    println!("# Table 2 — testing MSE of the neural cost models (ms^2)\n");
    let rows: Vec<Vec<String>> = vec![
        std::iter::once("Computation".to_string())
            .chain(
                settings
                    .iter()
                    .map(|(_, r)| format!("{:.3}", r.compute_test_mse)),
            )
            .collect(),
        std::iter::once("Forward Communication".to_string())
            .chain(
                settings
                    .iter()
                    .map(|(_, r)| format!("{:.3}", r.fwd_comm_test_mse)),
            )
            .collect(),
        std::iter::once("Backward Communication".to_string())
            .chain(
                settings
                    .iter()
                    .map(|(_, r)| format!("{:.3}", r.bwd_comm_test_mse)),
            )
            .collect(),
    ];
    let headers: Vec<String> = std::iter::once("model".to_string())
        .chain(settings.iter().map(|(n, _)| n.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_markdown_table(&header_refs, &rows);
    println!(
        "\n(Paper values: computation 0.21/0.21/0.26, fwd comm 0.02/0.05/0.05, \
         bwd comm 0.02/0.04/0.15 — small MSEs of the same order are the target.)"
    );

    maybe_write_json(&args, &Output { settings });
}
