//! Figure 3 (left) + Figure 10: computation cost vs. table dimension.
//!
//! Picks random tables from the pool and sweeps the dimension over
//! {128, 64, 32, 16, 8, 4}, printing the fused-kernel (forward+backward)
//! cost. Observation 1 is checked explicitly: each half-dimension cost
//! exceeds half of the full-dimension cost.
//!
//! Usage: `fig3_dimension [--tables 4] [--seed 0] [--out fig3_left.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_data::TablePool;
use nshard_sim::{KernelParams, NoiseModel};

#[derive(Serialize)]
struct Output {
    dims: Vec<u32>,
    /// `costs[t][d]` = cost in ms of table `t` at dimension `dims[d]`.
    costs: Vec<Vec<f64>>,
    observation1_holds: bool,
}

fn main() {
    let args = Args::from_env();
    let num_tables: usize = args.get("tables", 4);
    let seed: u64 = args.get("seed", 0);

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let kernel = KernelParams::rtx_2080_ti();
    let noise = NoiseModel::new(seed, 0.02);
    let dims = [128u32, 64, 32, 16, 8, 4];

    let mut rows = Vec::new();
    let mut costs = Vec::new();
    let mut obs1 = true;
    for t in 0..num_tables {
        // Deterministic table choice.
        let table = pool.tables()[(seed as usize + t * 131) % pool.len()];
        let mut row = vec![format!("table#{}", table.id().0)];
        let mut series = Vec::new();
        for &dim in &dims {
            let profile = table.with_dim(dim).profile(65_536);
            let cost = kernel.measure_multi_cost_ms(&[profile], 65_536, &noise, 21);
            row.push(format!("{cost:.3}"));
            series.push(cost);
        }
        // Observation 1: cost(d/2) > cost(d)/2 for every adjacent pair.
        for w in series.windows(2) {
            if w[1] <= w[0] / 2.0 {
                obs1 = false;
            }
        }
        costs.push(series);
        rows.push(row);
    }

    println!("# Figure 3 (left) / Figure 10 — computation cost (ms) vs. dimension\n");
    let headers: Vec<String> = std::iter::once("table".to_string())
        .chain(dims.iter().map(|d| format!("dim {d}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_markdown_table(&header_refs, &rows);
    println!(
        "\nObservation 1 (half-dim shard costs more than half of the full table): {}",
        if obs1 { "HOLDS" } else { "VIOLATED" }
    );

    maybe_write_json(
        &args,
        &Output {
            dims: dims.to_vec(),
            costs,
            observation1_holds: obs1,
        },
    );
}
