//! Table 3 + Table 7: component ablations on the hardest cell (max dim
//! 128) for 4 and 8 GPUs — removing beam search, greedy grid search, or
//! the prediction cache.
//!
//! Reports, per variant: mean embedding cost over the *successful* tasks,
//! success rate, mean sharding time, and cache hit rate — the exact columns
//! of the paper's ablation tables.
//!
//! Usage:
//! `table3_ablation [--tasks 10] [--gpus 0(=both)|4|8] [--epochs 30]
//!  [--compute-samples 8000] [--seed 7] [--out t3.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_core::{evaluate_plan, NeuroShard, NeuroShardConfig, SearchPhaseStats};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct VariantRow {
    name: String,
    cost_ms: Option<f64>,
    success_rate: f64,
    sharding_time_s: f64,
    cache_hit_rate: f64,
    /// Hit rate of the candidate-ranking phase (beam expansion +
    /// single-table costs), aggregated over all tasks.
    candidate_hit_rate: f64,
    /// Hit rate of the inner greedy-grid phase, aggregated over all tasks.
    inner_hit_rate: f64,
}

#[derive(Serialize)]
struct Output {
    settings: Vec<(usize, Vec<VariantRow>)>,
}

fn run_variant(
    name: &str,
    config: NeuroShardConfig,
    bundle: &CostModelBundle,
    tasks: &[ShardingTask],
    spec: &GpuSpec,
    seed: u64,
) -> VariantRow {
    // Fresh sharder per variant so cache statistics are attributable.
    let sharder = NeuroShard::new(bundle.clone(), config);
    let mut costs = Vec::new();
    let mut successes = 0usize;
    let mut time = 0.0;
    let mut hits = 0.0;
    let mut phases = SearchPhaseStats::default();
    for (i, task) in tasks.iter().enumerate() {
        match sharder.shard_with_stats(task) {
            Ok(outcome) => {
                time += outcome.sharding_time_s;
                hits += outcome.cache_hit_rate;
                phases.candidate.absorb(&outcome.phase_stats.candidate);
                phases.inner.absorb(&outcome.phase_stats.inner);
                if let Ok(real) = evaluate_plan(task, &outcome.plan, spec, seed ^ i as u64) {
                    successes += 1;
                    costs.push(real.max_total_ms());
                }
            }
            Err(_) => {
                // Failed searches still spent time; attribute nothing.
            }
        }
    }
    VariantRow {
        name: name.to_string(),
        cost_ms: if costs.is_empty() {
            None
        } else {
            Some(costs.iter().sum::<f64>() / costs.len() as f64)
        },
        success_rate: successes as f64 / tasks.len().max(1) as f64,
        sharding_time_s: time / tasks.len().max(1) as f64,
        cache_hit_rate: hits / tasks.len().max(1) as f64,
        candidate_hit_rate: phases.candidate.hit_rate(),
        inner_hit_rate: phases.inner.hit_rate(),
    }
}

fn main() {
    let args = Args::from_env();
    let tasks_n: usize = args.get("tasks", 10);
    let gpus_filter: usize = args.get("gpus", 0);
    let seed: u64 = args.get("seed", 7);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 6000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    let mut output = Output {
        settings: Vec::new(),
    };

    for d in [4usize, 8] {
        if gpus_filter != 0 && gpus_filter != d {
            continue;
        }
        eprintln!("pre-training for {d} GPUs...");
        let bundle = CostModelBundle::pretrain(&pool, d, &collect, &train, seed);
        let (t_min, t_max) = if d == 4 { (10, 60) } else { (20, 120) };
        let tasks: Vec<ShardingTask> = (0..tasks_n)
            .map(|i| {
                ShardingTask::sample(
                    &pool,
                    d,
                    t_min..=t_max,
                    128,
                    seed ^ (d as u64) << 40 ^ i as u64,
                )
            })
            .collect();

        let full = NeuroShardConfig::default();
        let variants = vec![
            (
                "w/o beam search",
                NeuroShardConfig {
                    use_beam: false,
                    ..full
                },
            ),
            (
                "w/o greedy grid search",
                NeuroShardConfig {
                    use_grid: false,
                    ..full
                },
            ),
            (
                "w/o caching",
                NeuroShardConfig {
                    use_cache: false,
                    ..full
                },
            ),
            ("Full NeuroShard", full),
        ];

        let rows: Vec<VariantRow> = variants
            .into_iter()
            .map(|(name, cfg)| run_variant(name, cfg, &bundle, &tasks, &spec, seed))
            .collect();

        println!(
            "\n# Table {} — ablation, max dim 128, {d} GPUs ({tasks_n} tasks)\n",
            if d == 4 { "3" } else { "7" }
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.cost_ms.map_or("-".into(), |c| format!("{c:.2}")),
                    format!("{:.1}%", r.success_rate * 100.0),
                    format!("{:.2}", r.sharding_time_s),
                    format!("{:.1}%", r.cache_hit_rate * 100.0),
                    format!("{:.1}%", r.candidate_hit_rate * 100.0),
                    format!("{:.1}%", r.inner_hit_rate * 100.0),
                ]
            })
            .collect();
        print_markdown_table(
            &[
                "variant",
                "cost (ms)",
                "success rate",
                "sharding time (s)",
                "cache hit rate",
                "candidate hits",
                "inner hits",
            ],
            &table,
        );
        output.settings.push((d, rows));
    }

    maybe_write_json(&args, &output);
}
