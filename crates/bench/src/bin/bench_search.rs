//! Parallel-search benchmark: runs table1-scale NeuroShard searches at 1,
//! 2, 4 and 8 worker threads plus an unbatched (row-at-a-time inference)
//! baseline, verifying that every configuration returns bit-identical
//! plans, and writes the timings to `BENCH_search.json`.
//!
//! Thread scaling is bounded by the host: the JSON records
//! `hardware_threads` so flat curves on small containers are explainable.
//! The batched-vs-unbatched speedup is hardware-independent and is the
//! headline number on single-CPU hosts.
//!
//! Usage:
//! `bench_search [--tasks 6] [--tables-min 10] [--tables-max 60]
//!  [--epochs 6] [--seed 3] [--out BENCH_search.json]`

use std::time::Instant;

use serde::Serialize;

use nshard_bench::{print_markdown_table, Args};
use nshard_core::{NeuroShard, NeuroShardConfig, ShardOutcome};
use nshard_cost::{CollectConfig, CostModelBundle, CostSimulator, TrainSettings};
use nshard_data::{ShardingTask, TablePool};

/// Conformance band for the int8 engine: the f32-evaluated cost of every
/// int8-found plan must stay within this factor of the f32 plan's cost.
const INT8_COST_BAND: f64 = 1.10;

#[derive(Serialize)]
struct ThreadRow {
    threads: usize,
    wall_clock_s: f64,
    evaluated_plans: usize,
    plans_per_s: f64,
    cache_hit_rate: f64,
    speedup_vs_1_thread: f64,
}

#[derive(Serialize)]
struct Output {
    /// Logical CPUs visible to this process — thread scaling is bounded
    /// above by this number.
    hardware_threads: usize,
    tasks: usize,
    num_gpus: usize,
    search: NeuroShardConfig,
    rows: Vec<ThreadRow>,
    /// Same workload with `use_batch: false` (one single-row MLP forward
    /// per prediction) at 1 thread — the pre-batching engine.
    unbatched: ThreadRow,
    /// Wall-clock of the unbatched engine over the batched engine at
    /// 1 thread. Hardware-independent. With the cache on, most queries
    /// never reach the model, so this is near 1.
    batched_speedup_vs_unbatched: f64,
    /// Batched engine with the prediction cache disabled — every query
    /// reaches the model, isolating the inference cost.
    nocache_batched: ThreadRow,
    /// Unbatched engine with the cache disabled.
    nocache_unbatched: ThreadRow,
    /// Wall-clock of the uncached unbatched engine over the uncached
    /// batched engine — the batching speedup on model-bound search.
    batched_speedup_vs_unbatched_nocache: f64,
    /// Same workload with `use_int8: true` (quantized cost-model
    /// inference) at 1 thread. Approximate by design, so it is *not* part
    /// of the plan-identity checks; instead its plans must be
    /// memory-feasible and within [`INT8_COST_BAND`] of the f32 plans
    /// when re-evaluated under the exact f32 simulator.
    int8: ThreadRow,
    /// Worst f32-evaluated cost ratio (int8 plan / f32 plan) over tasks.
    int8_max_cost_ratio_vs_f32: f64,
    /// The conformance band the ratio is checked against.
    int8_cost_band: f64,
    /// True iff every thread count and the unbatched engine returned the
    /// same plan and bit-identical cost for every task (at the default
    /// cached configuration).
    plans_identical: bool,
    /// True iff the two uncached engines agree with each other. They are
    /// *not* compared against the cached runs: the cache canonicalizes
    /// costs (the first computed value is reused for every permutation of
    /// a table set), while uncached recomputation sum-pools in per-call
    /// order — an ablation, not a determinism bug.
    plans_identical_nocache: bool,
}

fn run(
    bundle: &CostModelBundle,
    config: NeuroShardConfig,
    tasks: &[ShardingTask],
) -> (f64, Vec<ShardOutcome>) {
    let sharder = NeuroShard::new(bundle.clone(), config);
    let t0 = Instant::now();
    let outcomes: Vec<ShardOutcome> = tasks
        .iter()
        .map(|t| sharder.shard_with_stats(t).expect("task is feasible"))
        .collect();
    (t0.elapsed().as_secs_f64(), outcomes)
}

fn row(threads: usize, wall: f64, outcomes: &[ShardOutcome], base_wall: f64) -> ThreadRow {
    let evaluated: usize = outcomes.iter().map(|o| o.evaluated_plans).sum();
    let hit_rate =
        outcomes.iter().map(|o| o.cache_hit_rate).sum::<f64>() / outcomes.len().max(1) as f64;
    ThreadRow {
        threads,
        wall_clock_s: wall,
        evaluated_plans: evaluated,
        plans_per_s: evaluated as f64 / wall.max(1e-9),
        cache_hit_rate: hit_rate,
        speedup_vs_1_thread: base_wall / wall.max(1e-9),
    }
}

fn same_plans(a: &[ShardOutcome], b: &[ShardOutcome]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.plan == y.plan
                && x.estimated_cost_ms.to_bits() == y.estimated_cost_ms.to_bits()
                && x.evaluated_plans == y.evaluated_plans
        })
}

fn main() {
    let args = Args::from_env();
    let tasks_n: usize = args.get("tasks", 6);
    let t_min: usize = args.get("tables-min", 10);
    let t_max: usize = args.get("tables-max", 60);
    let seed: u64 = args.get("seed", 3);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 1200),
        comm_samples: args.get("comm-samples", 900),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 6),
        ..TrainSettings::default()
    };
    let out_path = args
        .get_opt("out")
        .unwrap_or_else(|| "BENCH_search.json".to_string());

    let num_gpus = 4usize;
    let pool = TablePool::synthetic_dlrm(856, 2023);
    eprintln!("pre-training cost models for {num_gpus} GPUs...");
    let bundle = CostModelBundle::pretrain(&pool, num_gpus, &collect, &train, seed);
    let tasks: Vec<ShardingTask> = (0..tasks_n)
        .map(|i| ShardingTask::sample(&pool, num_gpus, t_min..=t_max, 128, seed ^ i as u64))
        .collect();

    let search = NeuroShardConfig::default();
    let mut rows = Vec::new();
    let mut base_wall = 0.0;
    let mut base_outcomes: Vec<ShardOutcome> = Vec::new();
    let mut identical = true;

    for threads in [1usize, 2, 4, 8] {
        eprintln!("searching {tasks_n} tasks at {threads} thread(s)...");
        let (wall, outcomes) = run(&bundle, NeuroShardConfig { threads, ..search }, &tasks);
        if threads == 1 {
            base_wall = wall;
            base_outcomes = outcomes.clone();
        } else {
            identical &= same_plans(&base_outcomes, &outcomes);
        }
        rows.push(row(threads, wall, &outcomes, base_wall));
    }

    eprintln!("searching {tasks_n} tasks with batching disabled...");
    let (wall, outcomes) = run(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            use_batch: false,
            ..search
        },
        &tasks,
    );
    identical &= same_plans(&base_outcomes, &outcomes);
    let unbatched = row(1, wall, &outcomes, base_wall);
    let batched_speedup = unbatched.wall_clock_s / base_wall.max(1e-9);

    eprintln!("searching {tasks_n} tasks with the cache disabled (batched)...");
    let (nocache_b_wall, outcomes) = run(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            use_cache: false,
            ..search
        },
        &tasks,
    );
    let nocache_b_outcomes = outcomes;
    let nocache_batched = row(1, nocache_b_wall, &nocache_b_outcomes, base_wall);

    eprintln!("searching {tasks_n} tasks with the cache disabled (unbatched)...");
    let (nocache_u_wall, outcomes) = run(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            use_cache: false,
            use_batch: false,
            ..search
        },
        &tasks,
    );
    let identical_nocache = same_plans(&nocache_b_outcomes, &outcomes);
    let nocache_unbatched = row(1, nocache_u_wall, &outcomes, base_wall);
    let nocache_batched_speedup = nocache_u_wall / nocache_b_wall.max(1e-9);

    eprintln!("searching {tasks_n} tasks with int8 inference...");
    let (int8_wall, int8_outcomes) = run(
        &bundle,
        NeuroShardConfig {
            threads: 1,
            use_int8: true,
            ..search
        },
        &tasks,
    );
    let int8 = row(1, int8_wall, &int8_outcomes, base_wall);
    // Conformance: every int8 plan must be memory-feasible and, when
    // re-evaluated under the exact f32 simulator, within the band of the
    // f32 engine's plan for the same task.
    let eval_sim = CostSimulator::new(bundle.clone());
    let mut int8_max_ratio: f64 = 0.0;
    for ((task, f32_o), int8_o) in tasks.iter().zip(&base_outcomes).zip(&int8_outcomes) {
        int8_o
            .plan
            .validate(task)
            .expect("int8 plan must be memory-feasible");
        let f32_cost = eval_sim
            .estimate_plan(&f32_o.plan.device_profiles(task.batch_size()))
            .total_ms();
        let int8_cost = eval_sim
            .estimate_plan(&int8_o.plan.device_profiles(task.batch_size()))
            .total_ms();
        int8_max_ratio = int8_max_ratio.max(int8_cost / f32_cost.max(1e-9));
    }

    let output = Output {
        hardware_threads: std::thread::available_parallelism().map_or(1, usize::from),
        tasks: tasks_n,
        num_gpus,
        search,
        rows,
        unbatched,
        batched_speedup_vs_unbatched: batched_speedup,
        nocache_batched,
        nocache_unbatched,
        batched_speedup_vs_unbatched_nocache: nocache_batched_speedup,
        int8,
        int8_max_cost_ratio_vs_f32: int8_max_ratio,
        int8_cost_band: INT8_COST_BAND,
        plans_identical: identical,
        plans_identical_nocache: identical_nocache,
    };

    println!(
        "\n# Parallel search, {} tasks, {} GPUs, {} hardware thread(s)\n",
        tasks_n, num_gpus, output.hardware_threads
    );
    let mut table: Vec<Vec<String>> = output
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("batched, {} thread(s)", r.threads),
                format!("{:.2}", r.wall_clock_s),
                format!("{:.0}", r.plans_per_s),
                format!("{:.1}%", r.cache_hit_rate * 100.0),
                format!("{:.2}x", r.speedup_vs_1_thread),
            ]
        })
        .collect();
    for (name, r) in [
        ("unbatched, 1 thread", &output.unbatched),
        ("batched, no cache", &output.nocache_batched),
        ("unbatched, no cache", &output.nocache_unbatched),
        ("int8, 1 thread", &output.int8),
    ] {
        table.push(vec![
            name.into(),
            format!("{:.2}", r.wall_clock_s),
            format!("{:.0}", r.plans_per_s),
            format!("{:.1}%", r.cache_hit_rate * 100.0),
            format!("{:.2}x", r.speedup_vs_1_thread),
        ]);
    }
    print_markdown_table(
        &["engine", "wall clock (s)", "plans/s", "hit rate", "speedup"],
        &table,
    );
    println!(
        "\nbatched vs unbatched speedup: {batched_speedup:.2}x cached, \
         {nocache_batched_speedup:.2}x uncached; plans identical: {identical} \
         (uncached pair: {identical_nocache})"
    );
    println!(
        "int8 engine: worst f32-evaluated cost ratio {int8_max_ratio:.4} \
         (band {INT8_COST_BAND})"
    );
    assert!(identical, "plans must not depend on threads or batching");
    assert!(
        identical_nocache,
        "uncached plans must not depend on batching"
    );
    assert!(
        int8_max_ratio <= INT8_COST_BAND,
        "int8 plan cost ratio {int8_max_ratio} exceeds the band {INT8_COST_BAND}"
    );

    let json = serde_json::to_string_pretty(&output).expect("results are serializable");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
