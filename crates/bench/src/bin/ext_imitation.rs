//! Extension experiment (paper Appendix H): **self-imitation learning**
//! from sharding logs.
//!
//! Builds a "system log" by running NeuroShard on training tasks, distills
//! the log into a one-pass policy ([`ImitationSharder`]), and compares it
//! against full NeuroShard and the best heuristic on held-out tasks: plan
//! quality (real embedding cost) vs. sharding speed.
//!
//! Usage: `ext_imitation [--train-tasks 20] [--test-tasks 10] [--epochs 30]
//!         [--seed 13] [--out ext_imitation.json]`
//!
//! [`ImitationSharder`]: nshard_baselines::ImitationSharder

use serde::Serialize;

use nshard_baselines::{ImitationSharder, LookupGreedy, ShardingAlgorithm, SystemLog};
use nshard_bench::{evaluate_method, maybe_write_json, print_markdown_table, Args, MethodRow};
use nshard_core::{NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct Output {
    rows: Vec<MethodRow>,
    speedup_vs_neuroshard: Option<f64>,
}

fn main() {
    let args = Args::from_env();
    let train_tasks_n: usize = args.get("train-tasks", 20);
    let test_tasks_n: usize = args.get("test-tasks", 10);
    let seed: u64 = args.get("seed", 13);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 6000),
        comm_samples: args.get("comm-samples", 4000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    eprintln!("pre-training cost models...");
    let bundle = CostModelBundle::pretrain(&pool, 4, &collect, &train, seed);
    let neuroshard = NeuroShard::new(bundle, NeuroShardConfig::default());

    // Build the system log from NeuroShard runs on the training tasks.
    eprintln!("building the system log from {train_tasks_n} NeuroShard runs...");
    let mut log = SystemLog::new();
    for i in 0..train_tasks_n {
        let task = ShardingTask::sample(&pool, 4, 10..=60, 64, seed ^ 0xAA00 ^ i as u64);
        if let Ok(plan) = neuroshard.shard(&task) {
            log.record(&task, &plan);
        }
    }
    eprintln!("log holds {} plans; distilling the policy...", log.len());
    let imitation = ImitationSharder::fit(&log, 40, seed);

    // Held-out evaluation.
    let test_tasks: Vec<ShardingTask> = (0..test_tasks_n)
        .map(|i| ShardingTask::sample(&pool, 4, 10..=60, 64, seed ^ 0xBB00 ^ i as u64))
        .collect();
    let rows = vec![
        evaluate_method(&LookupGreedy, &test_tasks, &spec, seed),
        evaluate_method(&imitation, &test_tasks, &spec, seed),
        evaluate_method(&neuroshard, &test_tasks, &spec, seed),
    ];

    let speedup = match (&rows[1], &rows[2]) {
        (imi, ns) if imi.mean_time_s > 0.0 => Some(ns.mean_time_s / imi.mean_time_s),
        _ => None,
    };

    println!("\n# Extension — self-imitation learning (Appendix H), 4 GPUs, max dim 64\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.cost_display(),
                format!("{}/{}", r.successes, r.total),
                format!("{:.4}s", r.mean_time_s),
            ]
        })
        .collect();
    print_markdown_table(&["method", "cost (ms)", "success", "time/task"], &table);
    if let Some(s) = speedup {
        println!("\nimitation policy shards {s:.0}x faster than the full search");
    }
    println!(
        "(Expected: imitation lands between the heuristic and full NeuroShard on \
         cost, at near-heuristic speed — the Appendix H trade.)"
    );

    maybe_write_json(
        &args,
        &Output {
            rows,
            speedup_vs_neuroshard: speedup,
        },
    );
}
