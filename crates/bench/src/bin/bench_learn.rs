//! Continual-learning benchmark: drives the same drift trace twice —
//! once with the pre-trained cost models **frozen** and once with the
//! [`nshard_learn::ContinualLearner`] fine-tuning them from served
//! ground truth — and records whether closing the training loop
//! actually plans better.
//!
//! The incumbent is pre-trained *weakly* on purpose (a small sample
//! budget), standing in for a model whose pre-training distribution the
//! production workload has drifted away from. The frozen run keeps
//! planning with it; the continual run buffers every epoch's
//! `(predicted, observed)` pair, fine-tunes when the drift detector
//! fires, shadow-evaluates each candidate, and hot-swaps the planner's
//! models only on promotion.
//!
//! Acceptance gates, checked and recorded in the output JSON:
//! * the continual run's final ground-truth max-device cost is at most
//!   **0.97×** the frozen run's (full mode; smoke records the ratio);
//! * at least one fine-tuned candidate was **promoted**, and the
//!   promoted candidate's probe plan was memory-feasible with its
//!   estimate inside the **1.5×** train→search conformance band;
//! * a fine-tune on **poisoned observations** (labels scaled far off the
//!   oracle) is rejected by the shadow evaluation and the active
//!   checkpoint stays **byte-identical** — the rollback guarantee.
//!
//! Usage:
//! `bench_learn [--smoke] [--epochs 28] [--seed 9] [--drift-seed 33]
//!  [--tables-min 25] [--tables-max 35] [--out BENCH_learn.json]`

use std::time::Instant;

use serde::Serialize;

use nshard_bench::{print_markdown_table, Args};
use nshard_cost::{table_features, CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TableConfig, TablePool};
use nshard_learn::{ContinualConfig, ContinualLearner, FineTuneSettings};
use nshard_online::{OnlineConfig, OnlineController, ReplanStrategy, WorkloadDrift};
use nshard_serve::ObservationWire;

#[derive(Serialize)]
struct RunRow {
    mode: String,
    /// Wall clock of the whole controller loop, seconds.
    wall_clock_s: f64,
    /// Drift-triggered replans across the trace.
    replans: usize,
    /// Fine-tune proposals evaluated (0 for the frozen run).
    proposals: usize,
    /// Proposals promoted (0 for the frozen run).
    promotions: usize,
    /// Ground-truth max-device cost at the last epoch, ms.
    final_ground_truth_ms: Option<f64>,
    /// Mean ground-truth max-device cost over feasible epochs, ms.
    mean_ground_truth_ms: f64,
    /// Worst ground-truth max-device cost over feasible epochs, ms.
    worst_ground_truth_ms: Option<f64>,
}

#[derive(Serialize)]
struct PromotionRow {
    proposal: u64,
    version: u64,
    promoted: bool,
    reason: String,
    conformance_ratio: f64,
    feasible: bool,
}

#[derive(Serialize)]
struct Output {
    smoke: bool,
    epochs: u64,
    num_gpus: usize,
    tables: usize,
    batch_size: u32,
    drift_seed: u64,
    controller_seed: u64,
    /// Pre-training sample budget — deliberately small, see module docs.
    pretrain_compute_samples: usize,
    pretrain_comm_samples: usize,
    rows: Vec<RunRow>,
    /// Every shadow-evaluation decision of the continual run, in order.
    promotion_log: Vec<PromotionRow>,
    /// Continual final max-device cost over the frozen run's.
    continual_final_cost_over_frozen: f64,
    /// Continual mean max-device cost over the frozen run's.
    continual_mean_cost_over_frozen: f64,
    /// Probe-plan conformance of the last promoted candidate.
    promoted_conformance_ratio: f64,
    /// Acceptance: continual final cost ≤ 0.97× frozen final cost.
    accept_finetuned_beats_frozen: bool,
    /// Acceptance: ≥ 1 fine-tuned candidate was promoted.
    accept_promotion_happened: bool,
    /// Acceptance: the promoted candidate's probe plan was
    /// memory-feasible.
    accept_promoted_feasible: bool,
    /// Acceptance: the promoted candidate's estimate agreed with the
    /// exact oracle within the 1.5× train→search conformance band.
    accept_promoted_within_band: bool,
    /// Acceptance: the poisoned candidate was rejected.
    accept_poison_rejected: bool,
    /// Acceptance: rejection left the active checkpoint byte-identical.
    accept_rollback_byte_identical: bool,
}

/// Self-removing scratch directory for the versioned checkpoint stores.
struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("nshard_bench_learn_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_row(
    mode: &str,
    wall: f64,
    history: &nshard_online::ReplanHistory,
    learner: Option<&ContinualLearner>,
) -> RunRow {
    RunRow {
        mode: mode.to_string(),
        wall_clock_s: wall,
        replans: history.replans(),
        proposals: learner.map_or(0, |l| l.lifecycle().proposals() as usize),
        promotions: learner.map_or(0, |l| l.records().iter().filter(|r| r.promoted).count()),
        final_ground_truth_ms: history.epochs.last().and_then(|e| e.ground_truth_ms),
        mean_ground_truth_ms: history.mean_ground_truth_ms(),
        worst_ground_truth_ms: history.worst_ground_truth_ms(),
    }
}

/// Fine-tunes on poisoned observations (labels 25× the model's own
/// predictions) and checks the lifecycle rejects the candidate with the
/// active checkpoint byte-identical. Returns
/// `(poison_rejected, rollback_byte_identical)`.
fn poison_rollback(
    bundle: &CostModelBundle,
    pool: &TablePool,
    probe: &ShardingTask,
) -> (bool, bool) {
    let dir = TempDir::new("poison");
    // Aggressive tuning settings: the point is to *move* the model onto
    // the poisoned labels so the shadow evaluation has something real to
    // reject — a nudge too small to break conformance would vacuously
    // pass.
    let config = ContinualConfig {
        settings: FineTuneSettings {
            epochs: 40,
            learning_rate: 1e-2,
            min_samples: 8,
            ..FineTuneSettings::default()
        },
        ..ContinualConfig::smoke()
    };
    let mut learner =
        ContinualLearner::new(bundle.clone(), dir.path(), config).expect("store opens");
    let batch = bundle.batch_size();
    let wires: Vec<ObservationWire> = pool
        .tables()
        .iter()
        .take(64)
        .map(|t| {
            let features = vec![table_features(&t.profile(batch), batch)];
            let predicted = bundle.compute_model().predict(&features);
            ObservationWire {
                kind: "compute".to_string(),
                features,
                predicted_ms: predicted,
                observed_ms: predicted * 25.0,
            }
        })
        .collect();
    learner.ingest_wire(&wires);
    let before = std::fs::read(learner.lifecycle().active_path()).expect("active checkpoint");
    let installed = learner.fine_tune_now(0, probe);
    let after = std::fs::read(learner.lifecycle().active_path()).expect("active checkpoint");
    let rejected = installed.is_none()
        && learner.records().iter().all(|r| !r.promoted)
        && !learner.records().is_empty();
    (rejected, before == after)
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let epochs: u64 = args.get("epochs", if smoke { 14 } else { 28 });
    let seed: u64 = args.get("seed", 9);
    let drift_seed: u64 = args.get("drift-seed", 33);
    let t_min: usize = args.get("tables-min", 25);
    let t_max: usize = args.get("tables-max", 35);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 400),
        comm_samples: args.get("comm-samples", 400),
        ..CollectConfig::default()
    };
    let out_path = args
        .get_opt("out")
        .unwrap_or_else(|| "BENCH_learn.json".to_string());

    let num_gpus = 4usize;
    let stale_pooling: f64 = args.get("stale-pooling", 0.35);
    let pool = TablePool::synthetic_dlrm(856, 2023);
    // The incumbent pre-trains on a *stale* snapshot of the workload:
    // the same tables with their pooling factors scaled down, standing in
    // for a model trained months before the traffic it now prices. At
    // serve time every feature vector sits outside the pre-training
    // distribution, so the frozen model extrapolates — the gap the
    // continual loop exists to close.
    let stale_tables: Vec<TableConfig> = pool
        .tables()
        .iter()
        .map(|t| t.with_pooling_factor((t.pooling_factor() * stale_pooling).max(1.0)))
        .collect();
    let stale_pool = TablePool::from_tables(stale_tables);
    eprintln!(
        "pre-training cost models on the stale workload ({} compute / {} comm samples, \
         pooling x{stale_pooling})...",
        collect.compute_samples, collect.comm_samples
    );
    let bundle =
        CostModelBundle::pretrain(&stale_pool, num_gpus, &collect, &TrainSettings::smoke(), 42);

    let base = ShardingTask::sample(&pool, num_gpus, t_min..=t_max, 64, seed);
    let tables = base.num_tables();
    let batch_size = base.batch_size();
    let drift = WorkloadDrift::standard(base.clone(), drift_seed);
    let config = OnlineConfig {
        epochs,
        strategy: ReplanStrategy::Full,
        seed,
        ..OnlineConfig::default()
    };

    eprintln!("running the frozen baseline over {epochs} epochs...");
    let mut frozen_ctl = OnlineController::new(bundle.clone(), drift.clone(), config);
    let t0 = Instant::now();
    let frozen_history = frozen_ctl.run().expect("the deployment is feasible");
    let frozen_wall = t0.elapsed().as_secs_f64();

    eprintln!("running the continual-learning loop over {epochs} epochs...");
    let learn_dir = TempDir::new("loop");
    let learn_config = ContinualConfig {
        settings: FineTuneSettings {
            epochs: 30,
            learning_rate: 1e-3,
            min_samples: 12,
            ..FineTuneSettings::default()
        },
        min_observations: 24,
        cooldown_epochs: 3,
        seed,
        ..ContinualConfig::default()
    };
    let mut learner =
        ContinualLearner::new(bundle.clone(), learn_dir.path(), learn_config).expect("store opens");
    let mut continual_ctl = OnlineController::new(bundle.clone(), drift.clone(), config);
    let t1 = Instant::now();
    let continual_history = continual_ctl
        .run_hooked(&mut learner)
        .expect("the deployment is feasible");
    let continual_wall = t1.elapsed().as_secs_f64();

    let rows = vec![
        run_row("frozen", frozen_wall, &frozen_history, None),
        run_row(
            "continual",
            continual_wall,
            &continual_history,
            Some(&learner),
        ),
    ];

    let cost_ratio = match (rows[1].final_ground_truth_ms, rows[0].final_ground_truth_ms) {
        (Some(c), Some(f)) if f > 0.0 => c / f,
        _ => f64::INFINITY,
    };
    let mean_ratio = if rows[0].mean_ground_truth_ms > 0.0 {
        rows[1].mean_ground_truth_ms / rows[0].mean_ground_truth_ms
    } else {
        f64::INFINITY
    };

    let promoted = learner.records().iter().rfind(|r| r.promoted);
    let promoted_feasible = promoted.is_some_and(|r| r.feasible);
    let promoted_ratio = promoted.map_or(f64::NAN, |r| r.conformance_ratio);
    let promoted_within_band = promoted.is_some_and(|r| r.conformance_ratio <= 1.5);

    eprintln!("injecting poisoned observations and checking rollback...");
    let probe = drift.task_at(epochs.saturating_sub(1));
    let (poison_rejected, rollback_identical) = poison_rollback(&bundle, &pool, &probe);

    let output = Output {
        smoke,
        epochs,
        num_gpus,
        tables,
        batch_size,
        drift_seed,
        controller_seed: seed,
        pretrain_compute_samples: collect.compute_samples,
        pretrain_comm_samples: collect.comm_samples,
        promotion_log: learner
            .records()
            .iter()
            .map(|r| PromotionRow {
                proposal: r.proposal,
                version: r.version,
                promoted: r.promoted,
                reason: r.reason.clone(),
                conformance_ratio: r.conformance_ratio,
                feasible: r.feasible,
            })
            .collect(),
        continual_final_cost_over_frozen: cost_ratio,
        continual_mean_cost_over_frozen: mean_ratio,
        promoted_conformance_ratio: promoted_ratio,
        accept_finetuned_beats_frozen: cost_ratio <= 0.97,
        accept_promotion_happened: promoted.is_some(),
        accept_promoted_feasible: promoted_feasible,
        accept_promoted_within_band: promoted_within_band,
        accept_poison_rejected: poison_rejected,
        accept_rollback_byte_identical: rollback_identical,
        rows,
    };

    println!("\n# Continual learning, {epochs} epochs, {num_gpus} GPUs, {tables} tables\n");
    let table: Vec<Vec<String>> = output
        .rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.2}", r.wall_clock_s),
                format!("{}", r.replans),
                format!("{}", r.proposals),
                format!("{}", r.promotions),
                r.final_ground_truth_ms
                    .map_or_else(|| "-".into(), |c| format!("{c:.2}")),
                format!("{:.2}", r.mean_ground_truth_ms),
            ]
        })
        .collect();
    print_markdown_table(
        &[
            "mode",
            "wall (s)",
            "replans",
            "proposals",
            "promotions",
            "final cost (ms)",
            "mean cost (ms)",
        ],
        &table,
    );
    println!(
        "\ncontinual vs frozen: {:.3}x final cost, {:.3}x mean cost; \
         promoted conformance {:.3} (accept: beat {} | promote {} | feasible {} | \
         band {} | poison-reject {} | rollback {})",
        cost_ratio,
        mean_ratio,
        promoted_ratio,
        output.accept_finetuned_beats_frozen,
        output.accept_promotion_happened,
        output.accept_promoted_feasible,
        output.accept_promoted_within_band,
        output.accept_poison_rejected,
        output.accept_rollback_byte_identical,
    );

    assert!(
        output.accept_promotion_happened,
        "the continual run must promote at least one fine-tuned candidate"
    );
    assert!(
        output.accept_promoted_feasible,
        "the promoted candidate's probe plan must be memory-feasible"
    );
    assert!(
        output.accept_promoted_within_band,
        "the promoted candidate must stay within the 1.5x conformance band"
    );
    assert!(
        output.accept_poison_rejected,
        "the poisoned candidate must be rejected by the shadow evaluation"
    );
    assert!(
        output.accept_rollback_byte_identical,
        "rollback must leave the active checkpoint byte-identical"
    );
    if !smoke {
        assert!(
            output.accept_finetuned_beats_frozen,
            "the continual run must land at most 0.97x the frozen final cost, got {cost_ratio:.3}"
        );
    }

    let json = serde_json::to_string_pretty(&output).expect("results are serializable");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
