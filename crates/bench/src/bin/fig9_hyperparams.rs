//! Figure 9: impact of the search hyperparameters N (candidates), K (beam
//! width), L (levels), and M (grid granularity) on embedding cost and
//! sharding time, at max dim 128 on 4 GPUs.
//!
//! Usage:
//! `fig9_hyperparams [--tasks 6] [--epochs 30] [--seed 8] [--out fig9.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_core::{evaluate_plan, NeuroShard, NeuroShardConfig};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

#[derive(Serialize)]
struct SweepPoint {
    value: usize,
    mean_cost_ms: Option<f64>,
    mean_time_s: f64,
}

#[derive(Serialize)]
struct Output {
    sweeps: Vec<(String, Vec<SweepPoint>)>,
}

fn run(
    config: NeuroShardConfig,
    bundle: &CostModelBundle,
    tasks: &[ShardingTask],
    spec: &GpuSpec,
    seed: u64,
) -> (Option<f64>, f64) {
    let sharder = NeuroShard::new(bundle.clone(), config);
    let mut costs = Vec::new();
    let mut time = 0.0;
    for (i, task) in tasks.iter().enumerate() {
        if let Ok(outcome) = sharder.shard_with_stats(task) {
            time += outcome.sharding_time_s;
            if let Ok(real) = evaluate_plan(task, &outcome.plan, spec, seed ^ i as u64) {
                costs.push(real.max_total_ms());
            }
        }
    }
    let mean = if costs.is_empty() {
        None
    } else {
        Some(costs.iter().sum::<f64>() / costs.len() as f64)
    };
    (mean, time / tasks.len().max(1) as f64)
}

fn main() {
    let args = Args::from_env();
    let tasks_n: usize = args.get("tasks", 6);
    let seed: u64 = args.get("seed", 8);
    let collect = CollectConfig {
        compute_samples: args.get("compute-samples", 8000),
        comm_samples: args.get("comm-samples", 6000),
        ..CollectConfig::default()
    };
    let train = TrainSettings {
        epochs: args.get("epochs", 30),
        ..TrainSettings::default()
    };

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    eprintln!("pre-training for 4 GPUs...");
    let bundle = CostModelBundle::pretrain(&pool, 4, &collect, &train, seed);
    let tasks: Vec<ShardingTask> = (0..tasks_n)
        .map(|i| ShardingTask::sample(&pool, 4, 10..=60, 128, seed ^ 0xF19 ^ i as u64))
        .collect();

    let base = NeuroShardConfig::default();
    type MakeConfig = Box<dyn Fn(usize) -> NeuroShardConfig>;
    let sweeps: Vec<(&str, Vec<usize>, MakeConfig)> = vec![
        (
            "N",
            vec![1, 3, 5, 10, 15],
            Box::new(move |v| NeuroShardConfig { n: v, ..base }),
        ),
        (
            "K",
            vec![1, 2, 3, 5],
            Box::new(move |v| NeuroShardConfig { k: v, ..base }),
        ),
        (
            "L",
            vec![0, 2, 5, 10, 15],
            Box::new(move |v| NeuroShardConfig { l: v, ..base }),
        ),
        (
            "M",
            vec![1, 3, 6, 11, 16],
            Box::new(move |v| NeuroShardConfig { m: v, ..base }),
        ),
    ];

    let mut output = Output { sweeps: Vec::new() };
    for (name, values, make) in sweeps {
        println!("\n# Figure 9 — sweep of {name} (max dim 128, 4 GPUs, {tasks_n} tasks)\n");
        let mut points = Vec::new();
        for v in values {
            let (cost, time) = run(make(v), &bundle, &tasks, &spec, seed);
            points.push(SweepPoint {
                value: v,
                mean_cost_ms: cost,
                mean_time_s: time,
            });
        }
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.value.to_string(),
                    p.mean_cost_ms.map_or("-".into(), |c| format!("{c:.2}")),
                    format!("{:.2}", p.mean_time_s),
                ]
            })
            .collect();
        print_markdown_table(&[name, "cost (ms)", "time (s)"], &rows);
        output.sweeps.push((name.to_string(), points));
    }
    println!("\n(Expected shape: cost improves, time grows, as each hyperparameter increases.)");

    maybe_write_json(&args, &output);
}
