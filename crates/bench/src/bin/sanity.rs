//! Quick end-to-end smoke check: pre-train a small bundle, shard a handful
//! of tasks at two max dimensions with every heuristic baseline and
//! NeuroShard, and print ground-truth costs. Useful as a fast health check
//! of the whole pipeline (~1 minute) before launching the full Table 1 run.
//!
//! Usage: `sanity`

use nshard_baselines::*;
use nshard_core::{evaluate_plan, NeuroShard, NeuroShardConfig, ShardingAlgorithm};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{ShardingTask, TablePool};
use nshard_sim::GpuSpec;

fn main() {
    let pool = TablePool::synthetic_dlrm(856, 2023);
    let spec = GpuSpec::rtx_2080_ti();
    eprintln!("pretraining bundle...");
    let t0 = std::time::Instant::now();
    let bundle = CostModelBundle::pretrain(
        &pool,
        4,
        &CollectConfig {
            compute_samples: 3000,
            comm_samples: 2000,
            ..Default::default()
        },
        &TrainSettings {
            epochs: 20,
            ..Default::default()
        },
        42,
    );
    eprintln!(
        "pretrained in {:.1}s; report {:?}",
        t0.elapsed().as_secs_f64(),
        bundle.report()
    );
    let ns = NeuroShard::new(bundle, NeuroShardConfig::default());

    let algos: Vec<Box<dyn ShardingAlgorithm>> = vec![
        Box::new(RandomSharding::new(1)),
        Box::new(SizeGreedy),
        Box::new(DimGreedy),
        Box::new(LookupGreedy),
        Box::new(SizeLookupGreedy),
        Box::new(TorchRecLikePlanner::default()),
    ];
    for max_dim in [32u32, 128] {
        println!("== max_dim {max_dim} ==");
        let tasks: Vec<ShardingTask> = (0..5)
            .map(|i| ShardingTask::sample(&pool, 4, 10..=60, max_dim, 100 + i))
            .collect();
        for algo in algos.iter() {
            let mut costs = vec![];
            let mut fails = 0;
            for (i, task) in tasks.iter().enumerate() {
                match algo
                    .shard(task)
                    .ok()
                    .and_then(|p| evaluate_plan(task, &p, &spec, i as u64).ok())
                {
                    Some(c) => costs.push(c.max_total_ms()),
                    None => fails += 1,
                }
            }
            let mean = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
            println!("{:20} mean {:8.2} ms  fails {}/5", algo.name(), mean, fails);
        }
        let mut costs = vec![];
        let mut fails = 0;
        let mut time = 0.0;
        for (i, task) in tasks.iter().enumerate() {
            let t0 = std::time::Instant::now();
            match ns
                .shard(task)
                .ok()
                .and_then(|p| evaluate_plan(task, &p, &spec, i as u64).ok())
            {
                Some(c) => costs.push(c.max_total_ms()),
                None => fails += 1,
            }
            time += t0.elapsed().as_secs_f64();
        }
        let mean = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
        println!(
            "{:20} mean {:8.2} ms  fails {}/5  ({:.2}s/task)",
            "neuroshard",
            mean,
            fails,
            time / 5.0
        );
    }
}
