//! Table 5 + Table 6: the benchmark task grid and the dataset statistics.
//!
//! Table 5 lists the 12 sharding-task cells; Table 6 compares the synthetic
//! DLRM pool's statistics against small public datasets (Criteo, Avazu,
//! KDD), whose published numbers are reproduced verbatim for context.
//!
//! Usage: `table5_dataset [--seed 10] [--out t56.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, print_markdown_table, Args};
use nshard_data::{PoolStats, TablePool, TaskGrid};

#[derive(Serialize)]
struct Output {
    grid: Vec<(usize, usize, usize, u32)>,
    dlrm_stats: PoolStats,
    production_stats: PoolStats,
}

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 10);

    println!("# Table 5 — sharding tasks generated in the experiments\n");
    let grid = TaskGrid::paper();
    let rows: Vec<Vec<String>> = grid
        .cells()
        .iter()
        .map(|c| {
            let dims: Vec<String> = (2..=c.max_dim.ilog2())
                .map(|j| (1u32 << j).to_string())
                .collect();
            vec![
                c.num_devices.to_string(),
                format!("{}-{}", c.t_min, c.t_max),
                dims.join(", "),
            ]
        })
        .collect();
    print_markdown_table(&["GPUs", "tables per task", "table dimensions"], &rows);
    println!("\n(All cells use a 4 GB per-GPU embedding memory budget.)");

    let pool = TablePool::synthetic_dlrm(856, 2023);
    let stats = pool.stats();
    let prod = TablePool::synthetic_production(1000, seed).stats();

    println!("\n# Table 6 — dataset statistics\n");
    let rows = vec![
        vec![
            "Criteo (public)".into(),
            "26".into(),
            "17,839".into(),
            "1".into(),
        ],
        vec![
            "Avazu (public)".into(),
            "23".into(),
            "67,152".into(),
            "1".into(),
        ],
        vec![
            "KDD (public)".into(),
            "10".into(),
            "601,908".into(),
            "1".into(),
        ],
        vec![
            "synthetic DLRM (this repo)".into(),
            stats.num_tables.to_string(),
            format!("{:.0}", stats.avg_hash_size),
            format!("{:.1}", stats.avg_pooling_factor),
        ],
        vec![
            "synthetic production (this repo)".into(),
            prod.num_tables.to_string(),
            format!("{:.0}", prod.avg_hash_size),
            format!("{:.1}", prod.avg_pooling_factor),
        ],
    ];
    print_markdown_table(
        &["dataset", "# tables", "avg hash size", "avg pooling factor"],
        &rows,
    );
    println!(
        "\nSynthetic DLRM pool: max hash size {} rows, total {:.1} GB at native dims.",
        stats.max_hash_size,
        stats.total_bytes as f64 / 1e9
    );
    println!(
        "Synthetic production pool: total {:.2} TB at native dims (Table 4's multi-terabyte model).",
        prod.total_bytes as f64 / 1e12
    );
    println!(
        "\nNote: the public dataset rows quote the paper's published statistics; the\n\
         synthetic pool rescales row counts against the 4 GB benchmark budget (see\n\
         DESIGN.md) while keeping the heavy-tailed shape and pooling factors."
    );

    maybe_write_json(
        &args,
        &Output {
            grid: grid
                .cells()
                .iter()
                .map(|c| (c.num_devices, c.t_min, c.t_max, c.max_dim))
                .collect(),
            dlrm_stats: stats,
            production_stats: prod,
        },
    );
}
