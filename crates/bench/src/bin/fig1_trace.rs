//! Figure 1 (right): GPU traces in fully synchronous training.
//!
//! Renders ASCII timelines of one steady-state training iteration for a
//! balanced and an imbalanced sharding plan, reproducing the paper's
//! analysis: the slow GPU's embedding backward delays its next forward,
//! the delay accumulates, and the *other* GPUs idle at the collectives.
//!
//! Usage: `fig1_trace [--gpus 3] [--seed 14] [--out fig1.json]`

use serde::Serialize;

use nshard_bench::{maybe_write_json, Args};
use nshard_data::TablePool;
use nshard_sim::{Cluster, GpuSpec, NoiseModel, Phase, TableProfile, TraceSimulator, TraceSummary};

#[derive(Serialize)]
struct Output {
    balanced: TraceSummary,
    imbalanced: TraceSummary,
}

fn main() {
    let args = Args::from_env();
    let d: usize = args.get("gpus", 3);
    let seed: u64 = args.get("seed", 14);

    let pool = TablePool::synthetic_dlrm(120, seed);
    let profiles: Vec<TableProfile> = pool
        .iter()
        .take(4 * d)
        .map(|t| t.with_dim(64).profile(65_536))
        .collect();

    // Balanced: round-robin. Imbalanced: GPU 0 hoards half the tables.
    let mut balanced: Vec<Vec<TableProfile>> = vec![Vec::new(); d];
    for (i, p) in profiles.iter().enumerate() {
        balanced[i % d].push(*p);
    }
    let mut imbalanced: Vec<Vec<TableProfile>> = vec![Vec::new(); d];
    for (i, p) in profiles.iter().enumerate() {
        let g = if i < profiles.len() / 2 {
            0
        } else {
            1 + i % (d - 1)
        };
        imbalanced[g].push(*p);
    }

    let cluster =
        Cluster::new(GpuSpec::rtx_2080_ti(), d, 65_536).with_noise(NoiseModel::disabled());
    let sim = TraceSimulator::new(cluster, 8.0);
    let b = sim.simulate(&balanced, 30).expect("balanced plan fits");
    let s = sim.simulate(&imbalanced, 30).expect("imbalanced plan fits");

    println!("# Figure 1 (right) — synchronous training traces, {d} GPUs\n");
    println!(
        "## Balanced placement (iteration {:.2} ms, max idle {:.2} ms)\n",
        b.iteration_ms, b.max_idle_ms
    );
    render(&b);
    println!(
        "\n## Imbalanced placement (iteration {:.2} ms, max idle {:.2} ms)\n",
        s.iteration_ms, s.max_idle_ms
    );
    render(&s);
    println!(
        "\nlegend: F embedding-forward, f forward all-to-all, D dense fwd+bwd, \
         b backward all-to-all, B embedding-backward, . idle/wait"
    );
    println!(
        "\nthroughput: balanced {:.0} samples/s vs imbalanced {:.0} samples/s ({:.1}% loss)",
        b.throughput_samples_per_sec,
        s.throughput_samples_per_sec,
        (1.0 - s.throughput_samples_per_sec / b.throughput_samples_per_sec) * 100.0
    );

    maybe_write_json(
        &args,
        &Output {
            balanced: b,
            imbalanced: s,
        },
    );
}

/// Renders the last iteration's spans as an 80-column ASCII Gantt chart.
fn render(summary: &TraceSummary) {
    const WIDTH: usize = 78;
    let spans = &summary.last_iteration.spans;
    let t0 = spans
        .iter()
        .filter_map(|s| s.first())
        .map(|s| s.start_ms)
        .fold(f64::INFINITY, f64::min);
    let t1 = spans
        .iter()
        .filter_map(|s| s.last())
        .map(|s| s.end_ms)
        .fold(0.0f64, f64::max);
    let scale = WIDTH as f64 / (t1 - t0).max(1e-9);
    for (g, gpu_spans) in spans.iter().enumerate() {
        let mut line = vec!['.'; WIDTH];
        for span in gpu_spans {
            let c = match span.phase {
                Phase::EmbeddingForward => 'F',
                Phase::ForwardComm => 'f',
                Phase::DenseCompute => 'D',
                Phase::BackwardComm => 'b',
                Phase::EmbeddingBackward => 'B',
            };
            let lo = ((span.start_ms - t0) * scale) as usize;
            let hi = (((span.end_ms - t0) * scale) as usize).min(WIDTH);
            for cell in line.iter_mut().take(hi).skip(lo) {
                *cell = c;
            }
        }
        println!("GPU {g} |{}|", line.into_iter().collect::<String>());
    }
}
