//! Heterogeneous-placement benchmark: the committed Zipf-skew scenario on
//! a two-tier fleet, column-wise-only search vs. the full shard-shape
//! search (row-wise splits + replicated hot tables), compared at the
//! ground-truth simulator.
//!
//! Every run — including `--smoke` in CI — asserts the gates in-binary:
//!
//! 1. every plan is memory-feasible under the *per-device* budgets,
//! 2. on the Zipf-skew heterogeneous scenario the full search's
//!    ground-truth max-device cost is ≤ [`HETERO_GATE`] × the
//!    column-wise-only plan's,
//! 3. plans are bit-identical across worker-thread counts {1, 2, 8},
//! 4. a uniform [`DevicePool`] is bit-identical to the scalar-budget path.
//!
//! Usage: `bench_hetero [--smoke] [--seed 9] [--out BENCH_hetero.json]`

use serde::Serialize;

use nshard_bench::{print_markdown_table, Args};
use nshard_core::{evaluate_plan_exact, NeuroShard, NeuroShardConfig, ShardOutcome};
use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
use nshard_data::{DevicePool, ShardingTask, TableConfig, TableId, TablePool};
use nshard_sim::GpuSpec;

/// Gate 2: the full shard-shape search must beat column-wise-only by at
/// least 10% ground-truth max-device cost on the skewed hetero scenario.
const HETERO_GATE: f64 = 0.90;

const DEVICES: usize = 4;
const THREADS: [usize; 3] = [1, 2, 8];

/// The committed Zipf-skew scenario: ten 32 MB tables plus one tall
/// 128 MB table, with lookup traffic concentrated on a dominant hot table
/// (pooling factor 384, Zipf exponent 1.6) and a secondary warm one.
/// Mirrors `tests/hetero_scenarios.rs`.
fn tables() -> Vec<TableConfig> {
    let mut ts: Vec<TableConfig> = (0..10)
        .map(|i| TableConfig::new(TableId(i), 32, 1 << 18, 8.0, 1.0))
        .collect();
    ts.push(TableConfig::new(TableId(10), 8, 1 << 22, 4.0, 0.8));
    ts[0] = ts[0].with_pooling_factor(384.0).with_zipf_alpha(1.6);
    ts[1] = ts[1].with_pooling_factor(48.0).with_zipf_alpha(1.4);
    ts
}

/// Two fast/large devices and two slow/small ones across two nodes, with
/// a 4× intra/inter bandwidth gap.
fn two_tier() -> DevicePool {
    DevicePool::two_tier(2, 192 << 20, 2, 96 << 20, 1.5, 0.25)
}

fn uniform_task() -> ShardingTask {
    ShardingTask::new(tables(), DEVICES, 192 << 20, 4096)
}

fn hetero_task() -> ShardingTask {
    uniform_task().with_devices(two_tier())
}

fn config(full_shapes: bool, threads: usize) -> NeuroShardConfig {
    NeuroShardConfig {
        n: 4,
        k: 2,
        l: 3,
        m: 5,
        use_row_wise: full_shapes,
        use_replication: full_shapes,
        threads,
        ..NeuroShardConfig::default()
    }
}

#[derive(Serialize)]
struct Row {
    fleet: &'static str,
    shapes: &'static str,
    estimated_cost_ms: f64,
    ground_truth_max_ms: f64,
    column_splits: usize,
    row_splits: usize,
    replications: usize,
}

#[derive(Serialize)]
struct Output {
    smoke: bool,
    devices: usize,
    rows: Vec<Row>,
    /// Ground-truth max-device-cost ratio full/column on the
    /// heterogeneous Zipf-skew scenario (gate: ≤ `hetero_gate`).
    hetero_cost_ratio: f64,
    hetero_gate: f64,
    /// True iff the full-shape hetero search is bit-identical at worker
    /// thread counts {1, 2, 8}.
    plans_identical_across_threads: bool,
    /// True iff a uniform `DevicePool` reproduces the scalar-budget path
    /// bit for bit.
    uniform_pool_parity: bool,
}

fn shard(bundle: &CostModelBundle, task: &ShardingTask, cfg: NeuroShardConfig) -> ShardOutcome {
    NeuroShard::new(bundle.clone(), cfg)
        .shard_with_stats(task)
        .expect("scenario is feasible")
}

fn row(
    bundle: &CostModelBundle,
    task: &ShardingTask,
    fleet: &'static str,
    full_shapes: bool,
) -> (Row, ShardOutcome) {
    let outcome = shard(bundle, task, config(full_shapes, 1));
    // Gate 1: memory-feasible under per-device budgets.
    outcome
        .plan
        .validate(task)
        .unwrap_or_else(|e| panic!("{fleet} plan is infeasible: {e}"));
    for (d, bytes) in outcome.plan.device_bytes().into_iter().enumerate() {
        assert!(
            bytes <= task.budget_of(d),
            "{fleet}: device {d} holds {bytes} bytes over its budget"
        );
    }
    let gt = evaluate_plan_exact(task, &outcome.plan, &GpuSpec::rtx_2080_ti())
        .expect("feasible plan evaluates");
    let r = Row {
        fleet,
        shapes: if full_shapes {
            "column+row+replicate"
        } else {
            "column-only"
        },
        estimated_cost_ms: outcome.estimated_cost_ms,
        ground_truth_max_ms: gt.max_total_ms(),
        column_splits: outcome.plan.num_column_splits(),
        row_splits: outcome.plan.num_row_splits(),
        replications: outcome.plan.num_replications(),
    };
    (r, outcome)
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has("smoke");
    let seed: u64 = args.get("seed", 9);
    let out_path = args
        .get_opt("out")
        .unwrap_or_else(|| "BENCH_hetero.json".to_string());

    let pool = TablePool::synthetic_dlrm(80, 0xE7E90);
    eprintln!("pre-training cost models for {DEVICES} GPUs...");
    let (collect, train) = if smoke {
        (CollectConfig::smoke(), TrainSettings::smoke())
    } else {
        (CollectConfig::default(), TrainSettings::default())
    };
    let bundle = CostModelBundle::pretrain(&pool, DEVICES, &collect, &train, seed);

    let uniform = uniform_task();
    let hetero = hetero_task();

    eprintln!("searching the scenario matrix...");
    let (u_col, _) = row(&bundle, &uniform, "uniform", false);
    let (u_full, _) = row(&bundle, &uniform, "uniform", true);
    let (h_col, _) = row(&bundle, &hetero, "two-tier", false);
    let (h_full, h_outcome) = row(&bundle, &hetero, "two-tier", true);

    // Gate 2: the richer shapes pay off on the skewed hetero scenario.
    let ratio = h_full.ground_truth_max_ms / h_col.ground_truth_max_ms;
    assert!(
        ratio <= HETERO_GATE,
        "full-shape search reached only {ratio:.3}× the column-only \
         ground-truth cost (gate {HETERO_GATE})"
    );
    assert!(
        h_full.row_splits + h_full.replications > 0,
        "the winning hetero plan uses neither row splits nor replication"
    );

    // Gate 3: thread-count determinism on the hardest cell.
    eprintln!("checking thread determinism...");
    let mut identical = true;
    for threads in THREADS {
        let o = shard(&bundle, &hetero, config(true, threads));
        identical &= o.plan == h_outcome.plan
            && o.estimated_cost_ms.to_bits() == h_outcome.estimated_cost_ms.to_bits();
    }
    assert!(identical, "plans must not depend on the thread count");

    // Gate 4: a uniform pool is the scalar path, bit for bit.
    let pooled_uniform = uniform
        .clone()
        .with_devices(DevicePool::uniform(DEVICES, uniform.mem_budget_bytes()));
    let scalar = shard(&bundle, &uniform, config(true, 1));
    let pooled = shard(&bundle, &pooled_uniform, config(true, 1));
    let parity = scalar.plan == pooled.plan
        && scalar.estimated_cost_ms.to_bits() == pooled.estimated_cost_ms.to_bits();
    assert!(parity, "uniform DevicePool must match the scalar path");

    let rows = vec![u_col, u_full, h_col, h_full];
    print_markdown_table(
        &[
            "fleet",
            "shapes",
            "est (ms)",
            "GT max (ms)",
            "col",
            "row",
            "rep",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.fleet.to_string(),
                    r.shapes.to_string(),
                    format!("{:.4}", r.estimated_cost_ms),
                    format!("{:.4}", r.ground_truth_max_ms),
                    r.column_splits.to_string(),
                    r.row_splits.to_string(),
                    r.replications.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("hetero GT cost ratio (full/column): {ratio:.4} (gate {HETERO_GATE})");

    let output = Output {
        smoke,
        devices: DEVICES,
        rows,
        hetero_cost_ratio: ratio,
        hetero_gate: HETERO_GATE,
        plans_identical_across_threads: identical,
        uniform_pool_parity: parity,
    };
    let json = serde_json::to_string_pretty(&output).expect("results are serializable");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
