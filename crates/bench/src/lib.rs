//! # nshard-bench — experiment harness for every table and figure
//!
//! One binary per experiment of the paper (see `src/bin/`), plus Criterion
//! micro-benchmarks (see `benches/`). This library holds the shared
//! plumbing: evaluating a sharding method over a task set under the paper's
//! protocol, formatting result tables, and a tiny CLI-argument helper.
//!
//! ## Experiment binaries
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_dimension` | Figure 3 (left) + Figure 10: cost vs. dimension |
//! | `fig3_multitable` | Figure 3 (right): multi-table vs. sum of singles |
//! | `fig4_comm` | Figure 4: max comm cost vs. max device dimension |
//! | `table1_main` | Table 1: the main method comparison grid |
//! | `table2_mse` | Table 2: cost-model test MSEs |
//! | `fig8_scatter` | Figure 8 (left): simulated vs. real plan costs |
//! | `fig8_samples` | Figure 8 (middle/right): sample-efficiency sweeps |
//! | `table3_ablation` | Table 3 + Table 7: component ablations |
//! | `fig9_hyperparams` | Figure 9: N/K/L/M hyperparameter sweeps |
//! | `table4_production` | Table 4: 128-GPU production-scale sharding |
//! | `table5_dataset` | Table 5 + Table 6: task grid and dataset stats |
//!
//! Every binary accepts `--key value` overrides and writes machine-readable
//! JSON when `--out <path>` is given.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use serde::{Deserialize, Serialize};

use nshard_core::{evaluate_plan, ShardingAlgorithm};
use nshard_data::ShardingTask;
use nshard_sim::GpuSpec;

/// Outcome of running one sharding method over a task set under the
/// paper's evaluation protocol (§4): per-task plans are evaluated on the
/// ground-truth cluster; the mean max-device cost is reported only when
/// *every* task succeeds, otherwise the method "cannot scale" ("-").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// Method name.
    pub name: String,
    /// Mean embedding cost in ms across tasks — `None` when any task
    /// failed (the "-" cells of Table 1).
    pub mean_cost_ms: Option<f64>,
    /// Mean cost over the tasks that did succeed (reported by the ablation
    /// tables even when the success rate is below 100%).
    pub mean_cost_valid_ms: Option<f64>,
    /// Number of tasks that produced a valid plan.
    pub successes: usize,
    /// Number of tasks attempted.
    pub total: usize,
    /// Mean wall-clock sharding time per task, seconds.
    pub mean_time_s: f64,
}

impl MethodRow {
    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.successes as f64 / self.total as f64
        }
    }

    /// Formats the cost for display: `"-"` when the method cannot scale.
    pub fn cost_display(&self) -> String {
        match self.mean_cost_ms {
            Some(c) => format!("{c:.2}"),
            None => "-".to_string(),
        }
    }
}

/// Runs `algo` on every task, evaluating successful plans on the
/// ground-truth cluster, and aggregates per the paper's protocol.
pub fn evaluate_method(
    algo: &dyn ShardingAlgorithm,
    tasks: &[ShardingTask],
    spec: &GpuSpec,
    eval_seed: u64,
) -> MethodRow {
    let mut costs = Vec::with_capacity(tasks.len());
    let mut successes = 0usize;
    let mut total_time = 0.0f64;
    for (i, task) in tasks.iter().enumerate() {
        let start = Instant::now();
        let plan = algo.shard(task);
        total_time += start.elapsed().as_secs_f64();
        let cost = plan
            .ok()
            .and_then(|p| evaluate_plan(task, &p, spec, eval_seed ^ (i as u64)).ok())
            .map(|c| c.max_total_ms());
        if let Some(c) = cost {
            successes += 1;
            costs.push(c);
        }
    }
    let mean_valid = if costs.is_empty() {
        None
    } else {
        Some(costs.iter().sum::<f64>() / costs.len() as f64)
    };
    MethodRow {
        name: algo.name().to_string(),
        mean_cost_ms: if successes == tasks.len() {
            mean_valid
        } else {
            None
        },
        mean_cost_valid_ms: mean_valid,
        successes,
        total: tasks.len(),
        mean_time_s: if tasks.is_empty() {
            0.0
        } else {
            total_time / tasks.len() as f64
        },
    }
}

/// Prints a GitHub-flavoured markdown table.
pub fn print_markdown_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Minimal `--key value` CLI parser shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Returns the value after `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let flag = format!("--{name}");
        for w in self.raw.windows(2) {
            if w[0] == flag {
                return w[1]
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid value for {flag}: {e}"));
            }
        }
        default
    }

    /// Whether a bare `--name` flag is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }

    /// Optional string value.
    pub fn get_opt(&self, name: &str) -> Option<String> {
        let flag = format!("--{name}");
        self.raw
            .windows(2)
            .find(|w| w[0] == flag)
            .map(|w| w[1].clone())
    }
}

/// Writes a serializable result document to `--out <path>` if requested.
pub fn maybe_write_json<T: Serialize>(args: &Args, value: &T) {
    if let Some(path) = args.get_opt("out") {
        let json = serde_json::to_string_pretty(value).expect("results are serializable");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal lengths");
    assert!(!xs.is_empty(), "series must be non-empty");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nshard_baselines::DimGreedy;
    use nshard_data::TablePool;

    #[test]
    fn evaluate_method_counts_successes() {
        let pool = TablePool::synthetic_dlrm(40, 1);
        let tasks: Vec<ShardingTask> = (0..3)
            .map(|i| ShardingTask::sample(&pool, 2, 4..=8, 16, i))
            .collect();
        let row = evaluate_method(&DimGreedy, &tasks, &GpuSpec::rtx_2080_ti(), 0);
        assert_eq!(row.total, 3);
        assert_eq!(row.successes, 3);
        assert!(row.mean_cost_ms.is_some());
        assert_eq!(row.success_rate(), 1.0);
    }

    #[test]
    fn failed_tasks_clear_the_mean() {
        let pool = TablePool::synthetic_dlrm(40, 1);
        let mut tasks: Vec<ShardingTask> = (0..2)
            .map(|i| ShardingTask::sample(&pool, 2, 4..=8, 16, i))
            .collect();
        // An impossible task: tiny budget.
        tasks.push(ShardingTask::sample(&pool, 2, 4..=8, 16, 9).with_mem_budget(1));
        let row = evaluate_method(&DimGreedy, &tasks, &GpuSpec::rtx_2080_ti(), 0);
        assert_eq!(row.successes, 2);
        assert!(row.mean_cost_ms.is_none());
        assert!(row.mean_cost_valid_ms.is_some());
        assert_eq!(row.cost_display(), "-");
    }

    #[test]
    fn args_parse_values_and_flags() {
        let args = Args::from_vec(vec!["--tasks".into(), "25".into(), "--fast".into()]);
        assert_eq!(args.get("tasks", 10usize), 25);
        assert_eq!(args.get("missing", 7u32), 7);
        assert!(args.has("fast"));
        assert!(!args.has("slow"));
        assert_eq!(args.get_opt("tasks").as_deref(), Some("25"));
    }

    #[test]
    fn pearson_of_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }
}
