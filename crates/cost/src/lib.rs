//! # nshard-cost — pre-trained neural cost models
//!
//! The "pre-train" half of the paper's *pre-train, and search* paradigm.
//! This crate turns the simulator (the reproduction's GPU stand-in) into
//! training data and learns three neural cost models (§3.2, Figure 5):
//!
//! * a **computation cost model** — a DeepSets-style network: a shared MLP
//!   (128-32) encodes each table's features, the encodings are element-wise
//!   summed into a fixed-size combination representation, and a head MLP
//!   (32-64) regresses the fused-kernel forward+backward cost;
//! * a **forward communication cost model** and a **backward communication
//!   cost model** — MLPs (128-64-32-16) regressing the max all-to-all
//!   latency from per-GPU start timestamps and transferred data sizes.
//!
//! Once trained, a [`CostSimulator`] estimates the embedding cost of *any*
//! sharding plan for *any* task without touching the ground-truth oracle —
//! exactly how NeuroShard avoids real GPU execution during search. A
//! life-long [`PredictionCache`] memoizes computation-cost queries; the
//! paper reports > 95% hit rates during search (Table 3).
//!
//! ## Example
//!
//! ```no_run
//! use nshard_cost::{CollectConfig, CostModelBundle, TrainSettings};
//! use nshard_data::TablePool;
//!
//! let pool = TablePool::synthetic_dlrm(856, 2023);
//! let bundle = CostModelBundle::pretrain(
//!     &pool,
//!     4,                        // GPUs
//!     &CollectConfig::default(),
//!     &TrainSettings::default(),
//!     42,
//! );
//! println!("compute test MSE: {}", bundle.report().compute_test_mse);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod collect;
pub mod comm_model;
pub mod compute;
pub mod features;
pub mod simulator;

pub use cache::{table_set_key, CacheStats, PredictionCache, TableSetKey};
pub use collect::{
    collect_comm_data, collect_compute_data, CollectConfig, CommDataset, ComputeDataset,
    ComputeSample,
};
pub use comm_model::CommCostModel;
pub use compute::{ComputeCostModel, ComputeTrainReport};
pub use features::{
    comm_feature_dim, comm_features, comm_features_into, table_features, TABLE_FEATURE_DIM,
};
pub use simulator::{
    BundleReport, CostModelBundle, CostSimulator, DeviceScales, EstimatedCost, InferenceMode,
    TrainSettings, FWD_FRACTION,
};
