//! Feature extraction for the neural cost models.
//!
//! The paper represents each table by its cost-relevant factors (§2.1):
//! dimension, hash size, pooling factor and indices-distribution statistics.
//! The communication models see per-GPU start timestamps and transferred
//! data sizes (§3.2). All features are normalized to roughly unit scale so
//! the tiny MLPs train well with default Adam settings.

use nshard_sim::TableProfile;

/// Number of features per table fed to the computation cost model.
pub const TABLE_FEATURE_DIM: usize = 8;

/// Extracts the computation-model feature vector of one table.
///
/// Features (all ~unit scale):
/// 1. dimension / 128
/// 2. log2(hash size) / 32
/// 3. pooling factor / 64
/// 4. unique-index fraction
/// 5. Zipf exponent / 2
/// 6. dimension × pooling factor / 8192 (lookup-bytes interaction)
/// 7. log2(table bytes) / 40 (memory footprint)
/// 8. pooling factor × log2(hash) / 2048 (cache-pressure interaction)
///
/// ```
/// use nshard_cost::{table_features, TABLE_FEATURE_DIM};
/// use nshard_sim::TableProfile;
///
/// let f = table_features(&TableProfile::new(64, 1 << 20, 15.0, 0.3, 1.1), 65_536);
/// assert_eq!(f.len(), TABLE_FEATURE_DIM);
/// assert!((f[0] - 0.5).abs() < 1e-6); // 64 / 128
/// ```
pub fn table_features(table: &TableProfile, batch_size: u32) -> Vec<f32> {
    let dim = f64::from(table.dim());
    let hash_log = (table.hash_size() as f64).log2();
    let pf = table.pooling_factor();
    let bytes_log = (table.memory_bytes() as f64).log2();
    // Batch size only rescales lookups uniformly; include it via the
    // interaction term so one model covers multiple batch sizes.
    let lookups = f64::from(batch_size) * pf;
    vec![
        (dim / 128.0) as f32,
        (hash_log / 32.0) as f32,
        (pf / 64.0) as f32,
        table.unique_frac() as f32,
        (table.zipf_alpha() / 2.0) as f32,
        ((dim * pf) / 8192.0) as f32,
        (bytes_log / 40.0) as f32,
        ((lookups.log2() * hash_log) / 2048.0) as f32,
    ]
}

/// Input dimension of the communication cost model for a cluster of
/// `num_devices` GPUs: per-GPU `(data size, start timestamp)` pairs plus
/// three summary features.
pub fn comm_feature_dim(num_devices: usize) -> usize {
    2 * num_devices + 3
}

/// Extracts the communication-model feature vector of one placement.
///
/// Per-GPU features are sorted by descending device dimension so the model
/// is invariant to GPU relabeling; three summaries (max and mean normalized
/// device dimension, start-timestamp spread) are appended.
///
/// # Panics
///
/// Panics if `device_dims` and `start_ts_ms` have different lengths.
///
/// ```
/// use nshard_cost::{comm_feature_dim, comm_features};
///
/// let f = comm_features(&[320.0, 128.0, 256.0, 64.0], &[0.0, 5.0, 2.0, 1.0], 65_536);
/// assert_eq!(f.len(), comm_feature_dim(4));
/// ```
pub fn comm_features(device_dims: &[f64], start_ts_ms: &[f64], batch_size: u32) -> Vec<f32> {
    let mut features = vec![0.0f32; comm_feature_dim(device_dims.len())];
    comm_features_into(device_dims, start_ts_ms, batch_size, &mut features);
    features
}

/// [`comm_features`] into a caller-provided slice (e.g. a batch-matrix row),
/// writing the exact same values without allocating the output.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with
/// [`comm_feature_dim`]`(device_dims.len())`.
pub fn comm_features_into(
    device_dims: &[f64],
    start_ts_ms: &[f64],
    batch_size: u32,
    out: &mut [f32],
) {
    assert_eq!(
        device_dims.len(),
        start_ts_ms.len(),
        "device_dims and start_ts_ms must have the same length"
    );
    let d = device_dims.len();
    assert_eq!(
        out.len(),
        comm_feature_dim(d),
        "output slice has the wrong feature width"
    );
    let mut pairs: Vec<(f64, f64)> = device_dims
        .iter()
        .copied()
        .zip(start_ts_ms.iter().copied())
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite dims"));

    // Normalize data sizes by a nominal 1024-dim device at this batch size.
    let dim_scale = 1024.0;
    let batch_scale = f64::from(batch_size) / 65_536.0;
    for (slot, &(dim, start)) in out.chunks_exact_mut(2).zip(&pairs) {
        slot[0] = (dim * batch_scale / dim_scale) as f32;
        slot[1] = (start / 20.0) as f32;
    }
    let max_dim = pairs.first().map_or(0.0, |p| p.0);
    let mean_dim = device_dims.iter().sum::<f64>() / d.max(1) as f64;
    let start_spread = start_ts_ms.iter().cloned().fold(f64::MIN, f64::max)
        - start_ts_ms.iter().cloned().fold(f64::MAX, f64::min);
    out[2 * d] = (max_dim * batch_scale / dim_scale) as f32;
    out[2 * d + 1] = (mean_dim * batch_scale / dim_scale) as f32;
    out[2 * d + 2] = (start_spread.max(0.0) / 20.0) as f32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_features_have_fixed_dim() {
        let t = TableProfile::new(4, 1000, 1.0, 1.0, 0.0);
        assert_eq!(table_features(&t, 65_536).len(), TABLE_FEATURE_DIM);
    }

    #[test]
    fn table_features_distinguish_dims() {
        let a = table_features(&TableProfile::new(4, 1 << 20, 15.0, 0.3, 1.0), 65_536);
        let b = table_features(&TableProfile::new(128, 1 << 20, 15.0, 0.3, 1.0), 65_536);
        assert!(b[0] > a[0]);
        assert!(b[5] > a[5]);
    }

    #[test]
    fn comm_features_are_permutation_invariant() {
        let a = comm_features(&[100.0, 300.0, 200.0], &[1.0, 2.0, 3.0], 65_536);
        let b = comm_features(&[300.0, 200.0, 100.0], &[2.0, 3.0, 1.0], 65_536);
        assert_eq!(a, b);
    }

    #[test]
    fn comm_features_track_imbalance() {
        let balanced = comm_features(&[200.0, 200.0], &[0.0, 0.0], 65_536);
        let skewed = comm_features(&[390.0, 10.0], &[0.0, 0.0], 65_536);
        // Max-dim summary is the third-from-last entry.
        let max_idx = balanced.len() - 3;
        assert!(skewed[max_idx] > balanced[max_idx]);
    }

    #[test]
    fn comm_feature_dim_formula() {
        assert_eq!(comm_feature_dim(4), 11);
        assert_eq!(comm_feature_dim(8), 19);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = comm_features(&[1.0], &[0.0, 0.0], 65_536);
    }

    proptest! {
        #[test]
        fn table_features_are_finite(
            dim_pow in 2u32..9,
            rows_pow in 8u32..30,
            pf in 0.5f64..200.0,
            uf in 0.001f64..1.0,
            za in 0.0f64..2.0,
        ) {
            let t = TableProfile::new(1 << dim_pow, 1u64 << rows_pow, pf, uf, za);
            for f in table_features(&t, 65_536) {
                prop_assert!(f.is_finite());
            }
        }

        #[test]
        fn comm_features_are_finite(
            dims in proptest::collection::vec(0.0f64..4096.0, 2..16),
        ) {
            let starts = vec![0.0; dims.len()];
            for f in comm_features(&dims, &starts, 65_536) {
                prop_assert!(f.is_finite());
            }
        }
    }
}
