//! The communication cost models (Figure 5, right).
//!
//! One MLP per direction (forward / backward all-to-all) regresses the max
//! per-GPU collective latency from the per-GPU start timestamps and
//! transferred data sizes. The paper trains separate forward and backward
//! models (§3.2); both share this type.

use std::cell::RefCell;
use std::sync::OnceLock;

use nshard_nn::{
    Dataset, Matrix, Mlp, MlpScratch, QuantizedMlp, TrainConfig, TrainReport, Trainer,
};

use crate::features::{comm_feature_dim, comm_features_into};
use crate::simulator::{InferenceMode, TrainSettings};

/// The paper's communication model architecture: input → 128-64-32-16 → 1.
const COMM_HIDDEN: [usize; 4] = [128, 64, 32, 16];

/// A pre-trained communication cost model for a fixed device count.
///
/// # Example
///
/// ```
/// use nshard_cost::CommCostModel;
///
/// let model = CommCostModel::new(4, 0);
/// let cost = model.predict(&[320.0, 300.0, 310.0, 290.0], &[0.0; 4], 65_536);
/// assert!(cost.is_finite());
/// ```
#[derive(Debug)]
pub struct CommCostModel {
    num_devices: usize,
    mlp: Mlp,
    /// Lazily built int8 snapshot for [`InferenceMode::Int8`]; derived
    /// state, invalidated on retrain, never serialized or compared.
    quant: OnceLock<QuantizedMlp>,
}

/// Reusable per-thread buffers for `predict`/`predict_batch`.
#[derive(Debug, Default)]
struct CommScratch {
    x: Matrix,
    mlp: MlpScratch,
}

thread_local! {
    static COMM_SCRATCH: RefCell<CommScratch> = RefCell::new(CommScratch::default());
}

impl Clone for CommCostModel {
    fn clone(&self) -> Self {
        Self {
            num_devices: self.num_devices,
            mlp: self.mlp.clone(),
            quant: self
                .quant
                .get()
                .cloned()
                .map(OnceLock::from)
                .unwrap_or_default(),
        }
    }
}

impl PartialEq for CommCostModel {
    fn eq(&self, other: &Self) -> bool {
        self.num_devices == other.num_devices && self.mlp == other.mlp
    }
}

// Mirrors the historical derive on `{ num_devices, mlp }` so committed
// model fixtures stay byte-compatible; the quantized cache is derived.
impl serde::Serialize for CommCostModel {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            (
                String::from("num_devices"),
                serde::Serialize::to_value(&self.num_devices),
            ),
            (String::from("mlp"), serde::Serialize::to_value(&self.mlp)),
        ])
    }
}

impl serde::Deserialize for CommCostModel {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let map = v.as_map().ok_or_else(|| {
            serde::de::Error::custom(format!(
                "expected object for struct CommCostModel, found {}",
                v.kind()
            ))
        })?;
        Ok(CommCostModel {
            num_devices: serde::__field(map, "num_devices")?,
            mlp: serde::__field(map, "mlp")?,
            quant: OnceLock::new(),
        })
    }
}

impl CommCostModel {
    /// A freshly initialized (untrained) model for `num_devices` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`.
    pub fn new(num_devices: usize, seed: u64) -> Self {
        assert!(num_devices > 0, "need at least one device");
        Self {
            num_devices,
            mlp: Mlp::new(comm_feature_dim(num_devices), &COMM_HIDDEN, 1, seed),
            quant: OnceLock::new(),
        }
    }

    /// The device count this model was built for.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// The lazily built int8 snapshot of the current weights.
    fn quantized(&self) -> &QuantizedMlp {
        self.quant.get_or_init(|| QuantizedMlp::from_mlp(&self.mlp))
    }

    /// Worst-case per-weight absolute quantization error of the int8
    /// snapshot (half an int8 step at the layer's scale, maxed over layers).
    pub fn quantization_error_bound(&self) -> f32 {
        self.quantized().error_bound()
    }

    /// Predicts the max collective latency (ms) for a placement described by
    /// per-GPU device dimensions and start timestamps.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the model's device count.
    pub fn predict(&self, device_dims: &[f64], start_ts_ms: &[f64], batch_size: u32) -> f64 {
        self.predict_with_mode(device_dims, start_ts_ms, batch_size, InferenceMode::F32)
    }

    /// [`CommCostModel::predict`] with an explicit [`InferenceMode`].
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the model's device count.
    pub fn predict_with_mode(
        &self,
        device_dims: &[f64],
        start_ts_ms: &[f64],
        batch_size: u32,
        mode: InferenceMode,
    ) -> f64 {
        self.predict_batch_with_mode(&[(device_dims, start_ts_ms)], batch_size, mode)[0]
    }

    /// Predicts many placements with a single multi-row forward pass.
    /// `Mlp::forward` is row-independent, so each result is bit-identical
    /// to calling [`CommCostModel::predict`] on that placement alone.
    ///
    /// # Panics
    ///
    /// Panics if any placement does not match the model's device count.
    pub fn predict_batch(&self, placements: &[(&[f64], &[f64])], batch_size: u32) -> Vec<f64> {
        self.predict_batch_with_mode(placements, batch_size, InferenceMode::F32)
    }

    /// [`CommCostModel::predict_batch`] with an explicit [`InferenceMode`].
    /// Feature rows are written directly into a reusable per-thread batch
    /// matrix, so steady-state prediction does not allocate.
    ///
    /// # Panics
    ///
    /// Panics if any placement does not match the model's device count.
    pub fn predict_batch_with_mode(
        &self,
        placements: &[(&[f64], &[f64])],
        batch_size: u32,
        mode: InferenceMode,
    ) -> Vec<f64> {
        if placements.is_empty() {
            return Vec::new();
        }
        COMM_SCRATCH.with(|scratch| {
            let s = &mut *scratch.borrow_mut();
            s.x.reset(placements.len(), comm_feature_dim(self.num_devices));
            for (i, (dims, starts)) in placements.iter().enumerate() {
                assert_eq!(
                    dims.len(),
                    self.num_devices,
                    "placement has the wrong number of devices for this model"
                );
                comm_features_into(dims, starts, batch_size, s.x.row_mut(i));
            }
            let y = match mode {
                InferenceMode::F32 => self.mlp.forward_scratch(&s.x, &mut s.mlp),
                InferenceMode::Int8 => self.quantized().forward_scratch(&s.x, &mut s.mlp),
            };
            (0..placements.len())
                .map(|i| f64::from(y.get(i, 0)))
                .collect()
        })
    }

    /// Trains on a collected dataset (80/10/10 split from `seed`), keeping
    /// the best-on-validation checkpoint, and returns the report.
    ///
    /// Training runs the data-parallel [`Trainer`] with
    /// [`TrainSettings::threads`] workers; the trained model is
    /// bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature width does not match this model.
    pub fn train(&mut self, data: &Dataset, settings: &TrainSettings, seed: u64) -> TrainReport {
        assert_eq!(
            data.x().cols(),
            comm_feature_dim(self.num_devices),
            "dataset feature width does not match the model's device count"
        );
        let mut trainer = Trainer::new(TrainConfig {
            epochs: settings.epochs,
            batch_size: settings.batch_size,
            learning_rate: settings.learning_rate,
            threads: settings.threads,
        });
        let report = trainer.fit(self.mlp.clone(), data, seed);
        self.mlp = trainer.into_best_model().expect("fit always sets a model");
        self.quant = OnceLock::new();
        report
    }

    /// Fine-tunes on explicit train/valid partitions (no internal split),
    /// keeping the best-on-validation checkpoint. `frozen_layers` indices
    /// are left bitwise untouched (their gradients are zeroed before every
    /// optimizer step — see [`nshard_nn::Gradients::zero_layers`]). The
    /// reported `test_mse` is the selected checkpoint's MSE on `valid`.
    ///
    /// Same determinism contract as [`CommCostModel::train`]: weights are
    /// bit-identical at any [`TrainSettings::threads`] setting.
    ///
    /// # Panics
    ///
    /// Panics if either partition's feature width does not match this model.
    pub fn fine_tune(
        &mut self,
        train: &Dataset,
        valid: &Dataset,
        settings: &TrainSettings,
        frozen_layers: &[usize],
        seed: u64,
    ) -> TrainReport {
        let width = comm_feature_dim(self.num_devices);
        assert_eq!(
            train.x().cols(),
            width,
            "dataset feature width does not match the model's device count"
        );
        assert_eq!(
            valid.x().cols(),
            width,
            "dataset feature width does not match the model's device count"
        );
        let split = nshard_nn::Split {
            train: train.clone(),
            valid: valid.clone(),
            test: valid.clone(),
        };
        let mut trainer = Trainer::new(TrainConfig {
            epochs: settings.epochs,
            batch_size: settings.batch_size,
            learning_rate: settings.learning_rate,
            threads: settings.threads,
        })
        .with_frozen_layers(frozen_layers.to_vec());
        let report = trainer.fit_split(self.mlp.clone(), &split, seed);
        self.mlp = trainer.into_best_model().expect("fit always sets a model");
        self.quant = OnceLock::new();
        report
    }

    /// MSE over an arbitrary dataset (e.g. a held-out split).
    pub fn evaluate_mse(&self, data: &Dataset) -> f32 {
        nshard_nn::mse(&self.mlp.forward(data.x()), data.y())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_comm_data, CollectConfig};
    use nshard_data::TablePool;
    use nshard_sim::CommParams;

    fn dataset(n: usize, d: usize) -> crate::collect::CommDataset {
        let pool = TablePool::synthetic_dlrm(60, 3);
        let cfg = CollectConfig {
            comm_samples: n,
            ..CollectConfig::smoke()
        };
        collect_comm_data(&pool, &CommParams::pcie_server(), d, &cfg, 1)
    }

    #[test]
    fn training_reduces_mse() {
        let data = dataset(500, 4);
        let mut model = CommCostModel::new(4, 0);
        let before = model.evaluate_mse(&data.forward);
        model.train(
            &data.forward,
            &TrainSettings {
                epochs: 40,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            5,
        );
        let after = model.evaluate_mse(&data.forward);
        assert!(after < before / 2.0, "MSE {before} -> {after}");
    }

    #[test]
    fn trained_model_tracks_imbalance() {
        let data = dataset(800, 4);
        let mut model = CommCostModel::new(4, 1);
        model.train(
            &data.forward,
            &TrainSettings {
                epochs: 60,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            2,
        );
        let balanced = model.predict(&[250.0; 4], &[0.0; 4], 65_536);
        let skewed = model.predict(&[700.0, 100.0, 100.0, 100.0], &[0.0; 4], 65_536);
        assert!(
            skewed > balanced,
            "skewed {skewed} should exceed balanced {balanced}"
        );
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_single() {
        let model = CommCostModel::new(4, 3);
        let placements: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![250.0; 4], vec![0.0; 4]),
            (vec![700.0, 100.0, 100.0, 100.0], vec![1.0, 0.5, 0.0, 2.0]),
            (vec![10.0, 20.0, 30.0, 40.0], vec![0.0; 4]),
        ];
        let refs: Vec<(&[f64], &[f64])> = placements
            .iter()
            .map(|(d, s)| (d.as_slice(), s.as_slice()))
            .collect();
        let batch = model.predict_batch(&refs, 65_536);
        for ((dims, starts), &b) in placements.iter().zip(&batch) {
            let single = model.predict(dims, starts, 65_536);
            assert_eq!(single.to_bits(), b.to_bits());
        }
        assert!(model.predict_batch(&[], 65_536).is_empty());
    }

    #[test]
    fn int8_predictions_stay_close_to_f32() {
        let data = dataset(500, 4);
        let mut model = CommCostModel::new(4, 7);
        model.train(
            &data.forward,
            &TrainSettings {
                epochs: 30,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            3,
        );
        assert!(model.quantization_error_bound() > 0.0);
        let dims = [700.0, 100.0, 100.0, 100.0];
        let starts = [1.0, 0.5, 0.0, 2.0];
        let f32_cost = model.predict(&dims, &starts, 65_536);
        let int8_cost = model.predict_with_mode(&dims, &starts, 65_536, InferenceMode::Int8);
        assert!(int8_cost.is_finite());
        let denom = f32_cost.abs().max(1e-3);
        assert!(
            ((f32_cost - int8_cost).abs() / denom) < 0.25,
            "int8 {int8_cost} drifted too far from f32 {f32_cost}"
        );
    }

    #[test]
    fn fine_tune_adapts_and_respects_frozen_layers() {
        let data = dataset(400, 4);
        let settings = TrainSettings {
            epochs: 20,
            batch_size: 64,
            learning_rate: 1e-3,
            ..TrainSettings::default()
        };
        let mut model = CommCostModel::new(4, 5);
        model.train(&data.forward, &settings, 5);
        let before = model.clone();
        let split = data.forward.split(9);
        let ft = TrainSettings {
            epochs: 8,
            batch_size: 32,
            learning_rate: 2e-4,
            ..TrainSettings::default()
        };
        // Freeze the first two layers: they must stay bitwise identical.
        let report = model.fine_tune(&split.train, &split.valid, &ft, &[0, 1], 7);
        assert!(report.valid_mse.is_finite());
        assert_eq!(before.mlp.layers()[0], model.mlp.layers()[0]);
        assert_eq!(before.mlp.layers()[1], model.mlp.layers()[1]);
        // Determinism: a second identical fine-tune matches bitwise.
        let mut again = before.clone();
        again.fine_tune(&split.train, &split.valid, &ft, &[0, 1], 7);
        assert_eq!(model, again);
    }

    #[test]
    #[should_panic(expected = "wrong number of devices")]
    fn wrong_device_count_panics() {
        let model = CommCostModel::new(4, 0);
        let _ = model.predict(&[1.0, 2.0], &[0.0, 0.0], 65_536);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_dataset_width_panics() {
        let data = dataset(20, 4);
        let mut model = CommCostModel::new(8, 0);
        let _ = model.train(
            &data.forward,
            &TrainSettings {
                epochs: 1,
                batch_size: 8,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            0,
        );
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let model = CommCostModel::new(4, 9);
        let json = serde_json::to_string(&model).unwrap();
        let back: CommCostModel = serde_json::from_str(&json).unwrap();
        let dims = [100.0, 200.0, 300.0, 400.0];
        assert_eq!(
            model.predict(&dims, &[0.0; 4], 65_536),
            back.predict(&dims, &[0.0; 4], 65_536)
        );
    }
}
