//! The communication cost models (Figure 5, right).
//!
//! One MLP per direction (forward / backward all-to-all) regresses the max
//! per-GPU collective latency from the per-GPU start timestamps and
//! transferred data sizes. The paper trains separate forward and backward
//! models (§3.2); both share this type.

use serde::{Deserialize, Serialize};

use nshard_nn::{Dataset, Matrix, Mlp, TrainConfig, TrainReport, Trainer};

use crate::features::{comm_feature_dim, comm_features};
use crate::simulator::TrainSettings;

/// The paper's communication model architecture: input → 128-64-32-16 → 1.
const COMM_HIDDEN: [usize; 4] = [128, 64, 32, 16];

/// A pre-trained communication cost model for a fixed device count.
///
/// # Example
///
/// ```
/// use nshard_cost::CommCostModel;
///
/// let model = CommCostModel::new(4, 0);
/// let cost = model.predict(&[320.0, 300.0, 310.0, 290.0], &[0.0; 4], 65_536);
/// assert!(cost.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommCostModel {
    num_devices: usize,
    mlp: Mlp,
}

impl CommCostModel {
    /// A freshly initialized (untrained) model for `num_devices` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`.
    pub fn new(num_devices: usize, seed: u64) -> Self {
        assert!(num_devices > 0, "need at least one device");
        Self {
            num_devices,
            mlp: Mlp::new(comm_feature_dim(num_devices), &COMM_HIDDEN, 1, seed),
        }
    }

    /// The device count this model was built for.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Predicts the max collective latency (ms) for a placement described by
    /// per-GPU device dimensions and start timestamps.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the model's device count.
    pub fn predict(&self, device_dims: &[f64], start_ts_ms: &[f64], batch_size: u32) -> f64 {
        assert_eq!(
            device_dims.len(),
            self.num_devices,
            "placement has the wrong number of devices for this model"
        );
        let features = comm_features(device_dims, start_ts_ms, batch_size);
        let x = Matrix::from_rows([features]);
        f64::from(self.mlp.forward(&x).get(0, 0))
    }

    /// Predicts many placements with a single multi-row forward pass.
    /// `Mlp::forward` is row-independent, so each result is bit-identical
    /// to calling [`CommCostModel::predict`] on that placement alone.
    ///
    /// # Panics
    ///
    /// Panics if any placement does not match the model's device count.
    pub fn predict_batch(&self, placements: &[(&[f64], &[f64])], batch_size: u32) -> Vec<f64> {
        if placements.is_empty() {
            return Vec::new();
        }
        let rows: Vec<Vec<f32>> = placements
            .iter()
            .map(|(dims, starts)| {
                assert_eq!(
                    dims.len(),
                    self.num_devices,
                    "placement has the wrong number of devices for this model"
                );
                comm_features(dims, starts, batch_size)
            })
            .collect();
        let y = self.mlp.forward(&Matrix::from_rows(&rows));
        (0..placements.len())
            .map(|i| f64::from(y.get(i, 0)))
            .collect()
    }

    /// Trains on a collected dataset (80/10/10 split from `seed`), keeping
    /// the best-on-validation checkpoint, and returns the report.
    ///
    /// Training runs the data-parallel [`Trainer`] with
    /// [`TrainSettings::threads`] workers; the trained model is
    /// bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature width does not match this model.
    pub fn train(&mut self, data: &Dataset, settings: &TrainSettings, seed: u64) -> TrainReport {
        assert_eq!(
            data.x().cols(),
            comm_feature_dim(self.num_devices),
            "dataset feature width does not match the model's device count"
        );
        let mut trainer = Trainer::new(TrainConfig {
            epochs: settings.epochs,
            batch_size: settings.batch_size,
            learning_rate: settings.learning_rate,
            threads: settings.threads,
        });
        let report = trainer.fit(self.mlp.clone(), data, seed);
        self.mlp = trainer.into_best_model().expect("fit always sets a model");
        report
    }

    /// MSE over an arbitrary dataset (e.g. a held-out split).
    pub fn evaluate_mse(&self, data: &Dataset) -> f32 {
        nshard_nn::mse(&self.mlp.forward(data.x()), data.y())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_comm_data, CollectConfig};
    use nshard_data::TablePool;
    use nshard_sim::CommParams;

    fn dataset(n: usize, d: usize) -> crate::collect::CommDataset {
        let pool = TablePool::synthetic_dlrm(60, 3);
        let cfg = CollectConfig {
            comm_samples: n,
            ..CollectConfig::smoke()
        };
        collect_comm_data(&pool, &CommParams::pcie_server(), d, &cfg, 1)
    }

    #[test]
    fn training_reduces_mse() {
        let data = dataset(500, 4);
        let mut model = CommCostModel::new(4, 0);
        let before = model.evaluate_mse(&data.forward);
        model.train(
            &data.forward,
            &TrainSettings {
                epochs: 40,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            5,
        );
        let after = model.evaluate_mse(&data.forward);
        assert!(after < before / 2.0, "MSE {before} -> {after}");
    }

    #[test]
    fn trained_model_tracks_imbalance() {
        let data = dataset(800, 4);
        let mut model = CommCostModel::new(4, 1);
        model.train(
            &data.forward,
            &TrainSettings {
                epochs: 60,
                batch_size: 64,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            2,
        );
        let balanced = model.predict(&[250.0; 4], &[0.0; 4], 65_536);
        let skewed = model.predict(&[700.0, 100.0, 100.0, 100.0], &[0.0; 4], 65_536);
        assert!(
            skewed > balanced,
            "skewed {skewed} should exceed balanced {balanced}"
        );
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_single() {
        let model = CommCostModel::new(4, 3);
        let placements: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![250.0; 4], vec![0.0; 4]),
            (vec![700.0, 100.0, 100.0, 100.0], vec![1.0, 0.5, 0.0, 2.0]),
            (vec![10.0, 20.0, 30.0, 40.0], vec![0.0; 4]),
        ];
        let refs: Vec<(&[f64], &[f64])> = placements
            .iter()
            .map(|(d, s)| (d.as_slice(), s.as_slice()))
            .collect();
        let batch = model.predict_batch(&refs, 65_536);
        for ((dims, starts), &b) in placements.iter().zip(&batch) {
            let single = model.predict(dims, starts, 65_536);
            assert_eq!(single.to_bits(), b.to_bits());
        }
        assert!(model.predict_batch(&[], 65_536).is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong number of devices")]
    fn wrong_device_count_panics() {
        let model = CommCostModel::new(4, 0);
        let _ = model.predict(&[1.0, 2.0], &[0.0, 0.0], 65_536);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_dataset_width_panics() {
        let data = dataset(20, 4);
        let mut model = CommCostModel::new(8, 0);
        let _ = model.train(
            &data.forward,
            &TrainSettings {
                epochs: 1,
                batch_size: 8,
                learning_rate: 1e-3,
                ..TrainSettings::default()
            },
            0,
        );
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let model = CommCostModel::new(4, 9);
        let json = serde_json::to_string(&model).unwrap();
        let back: CommCostModel = serde_json::from_str(&json).unwrap();
        let dims = [100.0, 200.0, 300.0, 400.0];
        assert_eq!(
            model.predict(&dims, &[0.0; 4], 65_536),
            back.predict(&dims, &[0.0; 4], 65_536)
        );
    }
}
